#include "ml/autograd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "ml/kernels.hpp"

namespace mpidetect::ml {

Matrix& VarNode::ensure_grad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    grad = Matrix(value.rows(), value.cols());
  }
  return grad;
}

Var make_param(Matrix value) {
  auto v = std::make_shared<VarNode>(std::move(value));
  v->requires_grad = true;
  return v;
}

Var make_input(Matrix value) {
  return std::make_shared<VarNode>(std::move(value));
}

namespace {

thread_local bool t_grad_enabled = true;

/// A result node inherits requires_grad from any parent that has it;
/// under NoGradGuard the tape is not recorded at all.
Var make_result(Matrix value, std::vector<Var> parents,
                std::function<void(VarNode&)> backward_fn) {
  auto v = std::make_shared<VarNode>(std::move(value));
  if (!t_grad_enabled) return v;
  for (const Var& p : parents) v->requires_grad |= p->requires_grad;
  if (v->requires_grad) {
    v->parents = std::move(parents);
    v->backward_fn = std::move(backward_fn);
  }
  return v;
}

void topo_visit(VarNode* node, std::unordered_set<VarNode*>& seen,
                std::vector<VarNode*>& order) {
  if (!node->requires_grad) return;
  if (!seen.insert(node).second) return;
  for (const Var& p : node->parents) topo_visit(p.get(), seen, order);
  order.push_back(node);
}

/// Accumulates a freshly computed contribution into `node`'s gradient.
/// The first contribution adopts the buffer by move — most tape nodes
/// have exactly one consumer, making their whole accumulation free —
/// and later ones add element-wise. 0 + x equals x (up to the sign of
/// zero), so gradient magnitudes are unchanged. Baseline mode
/// (kernels::naive_matmul) keeps the seed's zero-then-add form so the
/// perf harness times the true pre-optimization path.
void accumulate_grad(VarNode& node, Matrix&& m) {
  if (!kernels::naive_matmul() && node.grad.size() == 0 &&
      node.value.same_shape(m)) {
    node.grad = std::move(m);
  } else {
    node.ensure_grad().add_in_place(m);
  }
}

/// Copy-accumulate variant for contributions the op does not own
/// (typically the node's own output gradient, shared across parents).
void accumulate_grad(VarNode& node, const Matrix& m) {
  if (!kernels::naive_matmul() && node.grad.size() == 0 &&
      node.value.same_shape(m)) {
    node.grad = m;
  } else {
    node.ensure_grad().add_in_place(m);
  }
}

/// dst[idx[e], :] += src[e, :]. Rows of dst may repeat in idx, so the
/// parallel split is over column ranges: each worker owns a disjoint
/// column slice and walks all entries in order — race-free and
/// bit-identical to the serial loop.
void scatter_add_into(Matrix& dst, const Matrix& src,
                      const std::vector<std::uint32_t>& idx) {
  const std::size_t cols = dst.cols();
  const bool parallel = idx.size() * cols >= kernels::kParallelMinElems;
  const kernels::KernelFns& fns = kernels::fns();
  kernels::parallel_ranges(cols, parallel, [&](std::size_t c0,
                                               std::size_t c1) {
    for (std::size_t e = 0; e < idx.size(); ++e) {
      double* d = dst.row(idx[e]);
      const double* s = src.row(e);
      fns.add1(d + c0, s + c0, c1 - c0);
    }
  });
}

/// dst[e, :] += src[idx[e], :]. Output rows are distinct, so the
/// parallel split is over entry ranges.
void gather_add_into(Matrix& dst, const Matrix& src,
                     const std::vector<std::uint32_t>& idx) {
  const std::size_t cols = dst.cols();
  const bool parallel = idx.size() * cols >= kernels::kParallelMinElems;
  const kernels::KernelFns& fns = kernels::fns();
  kernels::parallel_ranges(idx.size(), parallel, [&](std::size_t e0,
                                                     std::size_t e1) {
    for (std::size_t e = e0; e < e1; ++e) {
      fns.add1(dst.row(e), src.row(idx[e]), cols);
    }
  });
}

}  // namespace

bool grad_enabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(t_grad_enabled) { t_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { t_grad_enabled = prev_; }

void backward(const Var& root) {
  MPIDETECT_EXPECTS(root->value.rows() == 1 && root->value.cols() == 1);
  std::unordered_set<VarNode*> seen;
  std::vector<VarNode*> order;
  topo_visit(root.get(), seen, order);
  root->ensure_grad().at(0, 0) = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn(**it);
  }
}

Var matmul(const Var& a, const Var& b) {
  Matrix out = a->value.matmul(b->value);
  return make_result(std::move(out), {a, b}, [a, b](VarNode& self) {
    if (a->requires_grad) {
      accumulate_grad(*a, self.grad.matmul_nt(b->value));
    }
    if (b->requires_grad) {
      accumulate_grad(*b, a->value.matmul_tn(self.grad));
    }
  });
}

Var transpose(const Var& a) {
  return make_result(a->value.transpose(), {a}, [a](VarNode& self) {
    if (a->requires_grad) {
      accumulate_grad(*a, self.grad.transpose());
    }
  });
}

Var add(const Var& a, const Var& b) {
  MPIDETECT_EXPECTS(a->value.same_shape(b->value));
  Matrix out = a->value;
  out.add_in_place(b->value);
  return make_result(std::move(out), {a, b}, [a, b](VarNode& self) {
    if (a->requires_grad) accumulate_grad(*a, self.grad);
    if (b->requires_grad) accumulate_grad(*b, self.grad);
  });
}

Var add_row_broadcast(const Var& a, const Var& bias) {
  MPIDETECT_EXPECTS(bias->value.rows() == 1);
  MPIDETECT_EXPECTS(bias->value.cols() == a->value.cols());
  Matrix out = a->value;
  out.add_row_in_place(bias->value);
  return make_result(std::move(out), {a, bias}, [a, bias](VarNode& self) {
    if (a->requires_grad) accumulate_grad(*a, self.grad);
    if (bias->requires_grad) {
      Matrix& g = bias->ensure_grad();
      double* grow = g.row(0);
      for (std::size_t i = 0; i < self.grad.rows(); ++i) {
        const double* src = self.grad.row(i);
        for (std::size_t j = 0; j < self.grad.cols(); ++j) grow[j] += src[j];
      }
    }
  });
}

Var add_n(std::vector<Var> terms) {
  MPIDETECT_EXPECTS(!terms.empty());
  if (terms.size() == 1) return terms[0];
  Matrix out = terms[0]->value;
  for (std::size_t t = 1; t < terms.size(); ++t) {
    MPIDETECT_EXPECTS(out.same_shape(terms[t]->value));
    out.add_in_place(terms[t]->value);
  }
  std::vector<Var> parents = terms;
  return make_result(
      std::move(out), std::move(parents),
      [terms = std::move(terms)](VarNode& self) {
        for (const Var& t : terms) {
          if (t->requires_grad) accumulate_grad(*t, self.grad);
        }
      });
}

Var scale(const Var& a, double s) {
  Matrix out = a->value;
  for (double& x : out.data()) x *= s;
  return make_result(std::move(out), {a}, [a, s](VarNode& self) {
    if (a->requires_grad) a->ensure_grad().axpy_in_place(s, self.grad);
  });
}

Var leaky_relu(const Var& a, double slope) {
  Matrix out = a->value;
  for (double& x : out.data()) x = x > 0 ? x : slope * x;
  return make_result(std::move(out), {a}, [a, slope](VarNode& self) {
    if (!a->requires_grad) return;
    Matrix& g = a->ensure_grad();
    for (std::size_t i = 0; i < g.size(); ++i) {
      g.data()[i] +=
          self.grad.data()[i] * (a->value.data()[i] > 0 ? 1.0 : slope);
    }
  });
}

Var elu(const Var& a) {
  Matrix out = a->value;
  for (double& x : out.data()) x = x > 0 ? x : std::expm1(x);
  return make_result(std::move(out), {a}, [a](VarNode& self) {
    if (!a->requires_grad) return;
    Matrix& g = a->ensure_grad();
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double x = a->value.data()[i];
      g.data()[i] += self.grad.data()[i] * (x > 0 ? 1.0 : std::exp(x));
    }
  });
}

Var relu(const Var& a) { return leaky_relu(a, 0.0); }

Var bias_elu(const Var& a, const Var& bias) {
  MPIDETECT_EXPECTS(bias->value.rows() == 1);
  MPIDETECT_EXPECTS(bias->value.cols() == a->value.cols());
  const std::size_t rows = a->value.rows();
  const std::size_t cols = a->value.cols();
  const double* b = bias->value.row(0);
  Matrix out(rows, cols);
  {
    kernels::OpTimer timer(kernels::Op::BiasElu, 2 * rows * cols);
    const kernels::KernelFns& fns = kernels::fns();
    for (std::size_t i = 0; i < rows; ++i) {
      fns.bias_elu_row(out.row(i), a->value.row(i), b, cols);
    }
  }
  return make_result(
      std::move(out), {a, bias}, [a, bias](VarNode& self) {
        const std::size_t rows = a->value.rows();
        const std::size_t cols = a->value.cols();
        Matrix* ga = a->requires_grad ? &a->ensure_grad() : nullptr;
        Matrix* gb = bias->requires_grad ? &bias->ensure_grad() : nullptr;
        double* gbrow = gb != nullptr ? gb->row(0) : nullptr;
        for (std::size_t i = 0; i < rows; ++i) {
          // elu'(t) = exp(t) = expm1(t) + 1 on the negative branch, and
          // the forward already stored expm1(t) as the output — reusing
          // it avoids one exp per element (within 1 ulp of exp(t)).
          const double* outrow = self.value.row(i);
          const double* grow = self.grad.row(i);
          double* garow = ga != nullptr ? ga->row(i) : nullptr;
          for (std::size_t j = 0; j < cols; ++j) {
            const double o = outrow[j];
            const double d = grow[j] * (o > 0 ? 1.0 : o + 1.0);
            if (garow != nullptr) garow[j] += d;
            if (gbrow != nullptr) gbrow[j] += d;
          }
        }
      });
}

Var gather_rows(const Var& a, std::vector<std::uint32_t> idx) {
  const std::size_t cols = a->value.cols();
  for (const std::uint32_t i : idx) MPIDETECT_EXPECTS(i < a->value.rows());
  Matrix out(idx.size(), cols);
  kernels::OpTimer timer(kernels::Op::GatherRows, 0);
  const bool parallel = idx.size() * cols >= kernels::kParallelMinElems;
  kernels::parallel_ranges(idx.size(), parallel, [&](std::size_t e0,
                                                     std::size_t e1) {
    for (std::size_t e = e0; e < e1; ++e) {
      const double* src = a->value.row(idx[e]);
      std::copy(src, src + cols, out.row(e));
    }
  });
  return make_result(
      std::move(out), {a}, [a, idx = std::move(idx)](VarNode& self) {
        if (!a->requires_grad) return;
        scatter_add_into(a->ensure_grad(), self.grad, idx);
      });
}

Var scatter_add_rows(const Var& a, std::vector<std::uint32_t> idx,
                     std::size_t n_rows) {
  MPIDETECT_EXPECTS(idx.size() == a->value.rows());
  for (const std::uint32_t i : idx) MPIDETECT_EXPECTS(i < n_rows);
  Matrix out(n_rows, a->value.cols());
  scatter_add_into(out, a->value, idx);
  return make_result(
      std::move(out), {a}, [a, idx = std::move(idx)](VarNode& self) {
        if (!a->requires_grad) return;
        gather_add_into(a->ensure_grad(), self.grad, idx);
      });
}

Var segment_softmax(const Var& scores, std::vector<std::uint32_t> seg,
                    std::size_t n_segments) {
  MPIDETECT_EXPECTS(scores->value.cols() == 1);
  MPIDETECT_EXPECTS(seg.size() == scores->value.rows());
  const std::size_t n = seg.size();
  kernels::OpTimer timer(kernels::Op::SegmentSoftmax, 3 * n);
  // Numerically stable per-segment softmax.
  std::vector<double> seg_max(n_segments,
                              -std::numeric_limits<double>::infinity());
  for (std::size_t e = 0; e < n; ++e) {
    seg_max[seg[e]] = std::max(seg_max[seg[e]], scores->value.at(e, 0));
  }
  Matrix out(n, 1);
  std::vector<double> seg_sum(n_segments, 0.0);
  for (std::size_t e = 0; e < n; ++e) {
    out.at(e, 0) = std::exp(scores->value.at(e, 0) - seg_max[seg[e]]);
    seg_sum[seg[e]] += out.at(e, 0);
  }
  for (std::size_t e = 0; e < n; ++e) out.at(e, 0) /= seg_sum[seg[e]];
  return make_result(
      std::move(out), {scores},
      [scores, seg = std::move(seg), n_segments](VarNode& self) {
        if (!scores->requires_grad) return;
        // ds_e = y_e * (g_e - sum_{e' in seg(e)} g_e' y_e')
        std::vector<double> seg_dot(n_segments, 0.0);
        const std::size_t n = seg.size();
        for (std::size_t e = 0; e < n; ++e) {
          seg_dot[seg[e]] += self.grad.at(e, 0) * self.value.at(e, 0);
        }
        Matrix& g = scores->ensure_grad();
        for (std::size_t e = 0; e < n; ++e) {
          g.at(e, 0) += self.value.at(e, 0) *
                        (self.grad.at(e, 0) - seg_dot[seg[e]]);
        }
      });
}

Var mul_rowwise(const Var& alpha, const Var& h) {
  MPIDETECT_EXPECTS(alpha->value.cols() == 1);
  MPIDETECT_EXPECTS(alpha->value.rows() == h->value.rows());
  Matrix out = h->value;
  out.scale_rows_in_place(alpha->value);
  return make_result(std::move(out), {alpha, h}, [alpha, h](VarNode& self) {
    const std::size_t rows = self.value.rows();
    const std::size_t cols = self.value.cols();
    if (alpha->requires_grad) {
      Matrix& g = alpha->ensure_grad();
      for (std::size_t e = 0; e < rows; ++e) {
        double dot = 0.0;
        const double* gr = self.grad.row(e);
        const double* hr = h->value.row(e);
        for (std::size_t j = 0; j < cols; ++j) dot += gr[j] * hr[j];
        g.at(e, 0) += dot;
      }
    }
    if (h->requires_grad) {
      Matrix& g = h->ensure_grad();
      for (std::size_t e = 0; e < rows; ++e) {
        const double a = alpha->value.at(e, 0);
        const double* gr = self.grad.row(e);
        double* dst = g.row(e);
        for (std::size_t j = 0; j < cols; ++j) dst[j] += a * gr[j];
      }
    }
  });
}

namespace {

/// Row-index policies for the fused GATv2 ops: the plain variants read
/// entry e of an (E,d) operand, the gathered variants read through an
/// edge-index vector. One shared implementation per op keeps the
/// forward/backward math in exactly one place.
struct DirectIx {
  std::size_t operator()(std::size_t e) const { return e; }
};
struct GatherIx {
  const std::uint32_t* idx;
  std::size_t operator()(std::size_t e) const { return idx[e]; }
};

template <typename LeftIx, typename RightIx>
Matrix gatv2_scores_value(const Var& hl, LeftIx li, const Var& hr, RightIx ri,
                          const Var& attn, double negative_slope,
                          std::size_t e_rows) {
  const std::size_t d = hl->value.cols();
  const double* av = attn->value.data().data();
  Matrix out(e_rows, 1);
  kernels::OpTimer timer(kernels::Op::Gatv2Scores, 4 * e_rows * d);
  const bool parallel = e_rows * d >= kernels::kParallelMinElems;
  const kernels::KernelFns& fns = kernels::fns();
  kernels::parallel_ranges(e_rows, parallel, [&](std::size_t e0,
                                                 std::size_t e1) {
    std::size_t e = e0;
    // Four edges per pass: each SIMD lane is one edge's k-ascending
    // score accumulation (bit-identical to the per-edge loop below).
    for (; e + 4 <= e1; e += 4) {
      const double* l[4] = {hl->value.row(li(e)), hl->value.row(li(e + 1)),
                            hl->value.row(li(e + 2)),
                            hl->value.row(li(e + 3))};
      const double* r[4] = {hr->value.row(ri(e)), hr->value.row(ri(e + 1)),
                            hr->value.row(ri(e + 2)),
                            hr->value.row(ri(e + 3))};
      fns.gatv2_scores4(l, r, av, negative_slope, d, &out.at(e, 0));
    }
    for (; e < e1; ++e) {
      const double* l = hl->value.row(li(e));
      const double* r = hr->value.row(ri(e));
      double acc = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        const double t = l[k] + r[k];
        const double act = t > 0 ? t : negative_slope * t;
        acc += act * av[k];
      }
      out.at(e, 0) = acc;
    }
  });
  return out;
}

template <typename LeftIx, typename RightIx>
void gatv2_scores_backward(VarNode& self, const Var& hl, LeftIx li,
                           const Var& hr, RightIx ri, const Var& attn,
                           double negative_slope, std::size_t e_rows) {
  const std::size_t d = hl->value.cols();
  const double* av = attn->value.data().data();
  const bool need_lr = hl->requires_grad || hr->requires_grad;
  Matrix* gl = hl->requires_grad ? &hl->ensure_grad() : nullptr;
  Matrix* gr = hr->requires_grad ? &hr->ensure_grad() : nullptr;
  Matrix* ga = attn->requires_grad ? &attn->ensure_grad() : nullptr;
  for (std::size_t e = 0; e < e_rows; ++e) {
    const double ge = self.grad.at(e, 0);
    const double* l = hl->value.row(li(e));
    const double* r = hr->value.row(ri(e));
    double* glr = gl != nullptr ? gl->row(li(e)) : nullptr;
    double* grr = gr != nullptr ? gr->row(ri(e)) : nullptr;
    for (std::size_t k = 0; k < d; ++k) {
      const double t = l[k] + r[k];  // recomputed pre-activation
      if (need_lr) {
        const double dt = ge * av[k] * (t > 0 ? 1.0 : negative_slope);
        if (glr != nullptr) glr[k] += dt;
        if (grr != nullptr) grr[k] += dt;
      }
      if (ga != nullptr) {
        const double act = t > 0 ? t : negative_slope * t;
        ga->at(k, 0) += act * ge;
      }
    }
  }
}

template <typename SrcIx>
Matrix scatter_add_scaled_value(const Var& alpha, const Var& h, SrcIx si,
                                const std::vector<std::uint32_t>& dst,
                                std::size_t n_rows) {
  const std::size_t cols = h->value.cols();
  Matrix out(n_rows, cols);
  kernels::OpTimer timer(kernels::Op::ScatterAddScaled,
                         2 * dst.size() * cols);
  const bool parallel = dst.size() * cols >= kernels::kParallelMinElems;
  const kernels::KernelFns& fns = kernels::fns();
  kernels::parallel_ranges(cols, parallel, [&](std::size_t c0,
                                               std::size_t c1) {
    for (std::size_t e = 0; e < dst.size(); ++e) {
      const double a = alpha->value.at(e, 0);
      const double* s = h->value.row(si(e));
      double* o = out.row(dst[e]);
      fns.axpy1(o + c0, s + c0, a, c1 - c0);
    }
  });
  return out;
}

template <typename SrcIx>
void scatter_add_scaled_backward(VarNode& self, const Var& alpha, const Var& h,
                                 SrcIx si,
                                 const std::vector<std::uint32_t>& dst) {
  const std::size_t cols = h->value.cols();
  Matrix* ga = alpha->requires_grad ? &alpha->ensure_grad() : nullptr;
  Matrix* gh = h->requires_grad ? &h->ensure_grad() : nullptr;
  for (std::size_t e = 0; e < dst.size(); ++e) {
    const double* gout = self.grad.row(dst[e]);
    if (ga != nullptr) {
      const double* s = h->value.row(si(e));
      double dot = 0.0;
      for (std::size_t j = 0; j < cols; ++j) dot += gout[j] * s[j];
      ga->at(e, 0) += dot;
    }
    if (gh != nullptr) {
      const double a = alpha->value.at(e, 0);
      double* g = gh->row(si(e));
      for (std::size_t j = 0; j < cols; ++j) g[j] += a * gout[j];
    }
  }
}

}  // namespace

Var gatv2_scores(const Var& hl, const Var& hr, const Var& attn,
                 double negative_slope) {
  MPIDETECT_EXPECTS(hl->value.same_shape(hr->value));
  MPIDETECT_EXPECTS(attn->value.rows() == hl->value.cols());
  MPIDETECT_EXPECTS(attn->value.cols() == 1);
  const std::size_t e_rows = hl->value.rows();
  Matrix out = gatv2_scores_value(hl, DirectIx{}, hr, DirectIx{}, attn,
                                  negative_slope, e_rows);
  return make_result(
      std::move(out), {hl, hr, attn},
      [hl, hr, attn, negative_slope, e_rows](VarNode& self) {
        gatv2_scores_backward(self, hl, DirectIx{}, hr, DirectIx{}, attn,
                              negative_slope, e_rows);
      });
}

Var scatter_add_scaled(const Var& alpha, const Var& h,
                       std::vector<std::uint32_t> idx, std::size_t n_rows) {
  MPIDETECT_EXPECTS(alpha->value.cols() == 1);
  MPIDETECT_EXPECTS(alpha->value.rows() == h->value.rows());
  MPIDETECT_EXPECTS(idx.size() == h->value.rows());
  for (const std::uint32_t i : idx) MPIDETECT_EXPECTS(i < n_rows);
  Matrix out = scatter_add_scaled_value(alpha, h, DirectIx{}, idx, n_rows);
  return make_result(
      std::move(out), {alpha, h},
      [alpha, h, idx = std::move(idx)](VarNode& self) {
        scatter_add_scaled_backward(self, alpha, h, DirectIx{}, idx);
      });
}

Var gatv2_scores_gathered(const Var& hl, std::vector<std::uint32_t> dst,
                          const Var& hr, std::vector<std::uint32_t> src,
                          const Var& attn, double negative_slope) {
  MPIDETECT_EXPECTS(hl->value.cols() == hr->value.cols());
  MPIDETECT_EXPECTS(dst.size() == src.size());
  MPIDETECT_EXPECTS(attn->value.rows() == hl->value.cols());
  MPIDETECT_EXPECTS(attn->value.cols() == 1);
  for (const std::uint32_t i : dst) MPIDETECT_EXPECTS(i < hl->value.rows());
  for (const std::uint32_t i : src) MPIDETECT_EXPECTS(i < hr->value.rows());
  const std::size_t e_rows = dst.size();
  Matrix out = gatv2_scores_value(hl, GatherIx{dst.data()}, hr,
                                  GatherIx{src.data()}, attn, negative_slope,
                                  e_rows);
  return make_result(
      std::move(out), {hl, hr, attn},
      [hl, hr, attn, negative_slope, dst = std::move(dst),
       src = std::move(src)](VarNode& self) {
        gatv2_scores_backward(self, hl, GatherIx{dst.data()}, hr,
                              GatherIx{src.data()}, attn, negative_slope,
                              dst.size());
      });
}

Var scatter_add_scaled_gathered(const Var& alpha, const Var& h,
                                std::vector<std::uint32_t> src,
                                std::vector<std::uint32_t> dst,
                                std::size_t n_rows) {
  MPIDETECT_EXPECTS(alpha->value.cols() == 1);
  MPIDETECT_EXPECTS(alpha->value.rows() == src.size());
  MPIDETECT_EXPECTS(src.size() == dst.size());
  for (const std::uint32_t i : src) MPIDETECT_EXPECTS(i < h->value.rows());
  for (const std::uint32_t i : dst) MPIDETECT_EXPECTS(i < n_rows);
  Matrix out =
      scatter_add_scaled_value(alpha, h, GatherIx{src.data()}, dst, n_rows);
  return make_result(
      std::move(out), {alpha, h},
      [alpha, h, src = std::move(src), dst = std::move(dst)](VarNode& self) {
        scatter_add_scaled_backward(self, alpha, h, GatherIx{src.data()}, dst);
      });
}

Var max_pool_rows(const Var& a) {
  MPIDETECT_EXPECTS(a->value.rows() >= 1);
  const std::size_t cols = a->value.cols();
  Matrix out(1, cols);
  auto argmax = std::make_shared<std::vector<std::size_t>>(cols, 0);
  for (std::size_t j = 0; j < cols; ++j) {
    double best = a->value.at(0, j);
    for (std::size_t i = 1; i < a->value.rows(); ++i) {
      if (a->value.at(i, j) > best) {
        best = a->value.at(i, j);
        (*argmax)[j] = i;
      }
    }
    out.at(0, j) = best;
  }
  return make_result(std::move(out), {a}, [a, argmax](VarNode& self) {
    if (!a->requires_grad) return;
    Matrix& g = a->ensure_grad();
    for (std::size_t j = 0; j < g.cols(); ++j) {
      g.at((*argmax)[j], j) += self.grad.at(0, j);
    }
  });
}

Var segment_max_pool_rows(const Var& a, std::vector<std::uint32_t> seg,
                          std::size_t n_segments) {
  MPIDETECT_EXPECTS(seg.size() == a->value.rows());
  MPIDETECT_EXPECTS(n_segments >= 1);
  const std::size_t cols = a->value.cols();
  Matrix out(n_segments, cols);
  // argmax[s * cols + j] = the first row of segment s that attains the
  // column maximum (strict >, matching max_pool_rows tie-breaking).
  auto argmax = std::make_shared<std::vector<std::uint32_t>>(
      n_segments * cols, std::uint32_t{0});
  std::vector<bool> seen(n_segments, false);
  for (std::size_t e = 0; e < seg.size(); ++e) {
    const std::uint32_t s = seg[e];
    MPIDETECT_EXPECTS(s < n_segments);
    const double* src = a->value.row(e);
    double* dst = out.row(s);
    std::uint32_t* am = argmax->data() + s * cols;
    if (!seen[s]) {
      seen[s] = true;
      std::copy(src, src + cols, dst);
      std::fill(am, am + cols, static_cast<std::uint32_t>(e));
      continue;
    }
    for (std::size_t j = 0; j < cols; ++j) {
      if (src[j] > dst[j]) {
        dst[j] = src[j];
        am[j] = static_cast<std::uint32_t>(e);
      }
    }
  }
  for (std::size_t s = 0; s < n_segments; ++s) {
    MPIDETECT_EXPECTS(seen[s]);  // every segment needs at least one row
  }
  return make_result(
      std::move(out), {a}, [a, argmax, n_segments](VarNode& self) {
        if (!a->requires_grad) return;
        Matrix& g = a->ensure_grad();
        const std::size_t cols = g.cols();
        for (std::size_t s = 0; s < n_segments; ++s) {
          const std::uint32_t* am = argmax->data() + s * cols;
          const double* grow = self.grad.row(s);
          for (std::size_t j = 0; j < cols; ++j) {
            g.row(am[j])[j] += grow[j];
          }
        }
      });
}

Var segment_mean_pool_rows(const Var& a, std::vector<std::uint32_t> seg,
                           std::size_t n_segments) {
  MPIDETECT_EXPECTS(seg.size() == a->value.rows());
  MPIDETECT_EXPECTS(n_segments >= 1);
  const std::size_t cols = a->value.cols();
  Matrix out(n_segments, cols);
  auto counts = std::make_shared<std::vector<double>>(n_segments, 0.0);
  for (std::size_t e = 0; e < seg.size(); ++e) {
    const std::uint32_t s = seg[e];
    MPIDETECT_EXPECTS(s < n_segments);
    ++(*counts)[s];
    const double* src = a->value.row(e);
    double* dst = out.row(s);
    for (std::size_t j = 0; j < cols; ++j) dst[j] += src[j];
  }
  for (std::size_t s = 0; s < n_segments; ++s) {
    MPIDETECT_EXPECTS((*counts)[s] > 0);  // no empty segments
    double* dst = out.row(s);
    for (std::size_t j = 0; j < cols; ++j) dst[j] /= (*counts)[s];
  }
  return make_result(
      std::move(out), {a},
      [a, counts, seg = std::move(seg)](VarNode& self) {
        if (!a->requires_grad) return;
        Matrix& g = a->ensure_grad();
        const std::size_t cols = g.cols();
        for (std::size_t e = 0; e < seg.size(); ++e) {
          const double inv = 1.0 / (*counts)[seg[e]];
          const double* grow = self.grad.row(seg[e]);
          double* dst = g.row(e);
          for (std::size_t j = 0; j < cols; ++j) dst[j] += inv * grow[j];
        }
      });
}

std::vector<double> softmax_row(const Matrix& logits) {
  MPIDETECT_EXPECTS(logits.rows() == 1);
  std::vector<double> p(logits.cols());
  double mx = logits.at(0, 0);
  for (std::size_t j = 1; j < logits.cols(); ++j) {
    mx = std::max(mx, logits.at(0, j));
  }
  double sum = 0.0;
  for (std::size_t j = 0; j < logits.cols(); ++j) {
    p[j] = std::exp(logits.at(0, j) - mx);
    sum += p[j];
  }
  for (double& x : p) x /= sum;
  return p;
}

std::vector<std::vector<double>> softmax_rows(const Matrix& logits) {
  std::vector<std::vector<double>> out;
  out.reserve(logits.rows());
  const std::size_t cols = logits.cols();
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double* row = logits.row(i);
    std::vector<double> p(cols);
    double mx = row[0];
    for (std::size_t j = 1; j < cols; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      p[j] = std::exp(row[j] - mx);
      sum += p[j];
    }
    for (double& x : p) x /= sum;
    out.push_back(std::move(p));
  }
  return out;
}

Var cross_entropy(const Var& logits, std::size_t label) {
  MPIDETECT_EXPECTS(logits->value.rows() == 1);
  MPIDETECT_EXPECTS(label < logits->value.cols());
  const std::vector<double> p = softmax_row(logits->value);
  Matrix out(1, 1);
  out.at(0, 0) = -std::log(std::max(p[label], 1e-300));
  return make_result(std::move(out), {logits}, [logits, p,
                                                label](VarNode& self) {
    if (!logits->requires_grad) return;
    Matrix& g = logits->ensure_grad();
    const double d = self.grad.at(0, 0);
    for (std::size_t j = 0; j < p.size(); ++j) {
      g.at(0, j) += d * (p[j] - (j == label ? 1.0 : 0.0));
    }
  });
}

Var cross_entropy_rows(const Var& logits, std::vector<std::size_t> labels) {
  const std::size_t b = logits->value.rows();
  MPIDETECT_EXPECTS(b >= 1);
  MPIDETECT_EXPECTS(labels.size() == b);
  for (const std::size_t l : labels) {
    MPIDETECT_EXPECTS(l < logits->value.cols());
  }
  const auto probs =
      std::make_shared<std::vector<std::vector<double>>>(
          softmax_rows(logits->value));
  Matrix out(1, 1);
  double loss = 0.0;
  for (std::size_t i = 0; i < b; ++i) {
    loss += -std::log(std::max((*probs)[i][labels[i]], 1e-300));
  }
  out.at(0, 0) = loss / static_cast<double>(b);
  return make_result(
      std::move(out), {logits},
      [logits, probs, labels = std::move(labels)](VarNode& self) {
        if (!logits->requires_grad) return;
        Matrix& g = logits->ensure_grad();
        const double d =
            self.grad.at(0, 0) / static_cast<double>(labels.size());
        for (std::size_t i = 0; i < labels.size(); ++i) {
          const std::vector<double>& p = (*probs)[i];
          double* grow = g.row(i);
          for (std::size_t j = 0; j < p.size(); ++j) {
            grow[j] += d * (p[j] - (j == labels[i] ? 1.0 : 0.0));
          }
        }
      });
}

}  // namespace mpidetect::ml
