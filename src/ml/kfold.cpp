#include "ml/kfold.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace mpidetect::ml {

std::vector<std::vector<std::size_t>> stratified_kfold(
    const std::vector<std::size_t>& labels, std::size_t k,
    std::uint64_t seed) {
  MPIDETECT_EXPECTS(k >= 2);
  MPIDETECT_EXPECTS(labels.size() >= k);
  Rng rng(seed);

  std::map<std::size_t, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }

  std::vector<std::vector<std::size_t>> folds(k);
  std::size_t deal = 0;
  for (auto& [label, members] : by_class) {
    (void)label;
    rng.shuffle(members);
    for (const std::size_t idx : members) {
      folds[deal % k].push_back(idx);
      ++deal;
    }
  }
  for (auto& f : folds) std::sort(f.begin(), f.end());
  return folds;
}

std::vector<std::size_t> fold_complement(const std::vector<std::size_t>& fold,
                                         std::size_t n) {
  std::vector<bool> in_fold(n, false);
  for (const std::size_t i : fold) {
    MPIDETECT_EXPECTS(i < n);
    in_fold[i] = true;
  }
  std::vector<std::size_t> out;
  out.reserve(n - fold.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_fold[i]) out.push_back(i);
  }
  return out;
}

}  // namespace mpidetect::ml
