// Minimal dense row-major matrix — the numeric substrate of the GNN.
// Double precision throughout so finite-difference gradient checks in
// the test suite are meaningful.
#pragma once

#include <cstddef>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace mpidetect::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix zeros(std::size_t r, std::size_t c) { return Matrix(r, c); }

  /// Glorot/Xavier-uniform initialisation (PyTorch Geometric's default
  /// for GATv2 weights).
  static Matrix glorot(std::size_t r, std::size_t c, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// this += other (same shape).
  void add_in_place(const Matrix& o);
  /// this += s * other.
  void axpy_in_place(double s, const Matrix& o);

  Matrix matmul(const Matrix& o) const;
  Matrix transpose() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mpidetect::ml
