// Minimal dense row-major matrix — the numeric substrate of the GNN.
// Double precision throughout so finite-difference gradient checks in
// the test suite are meaningful.
//
// matmul runs a cache-blocked, k-unrolled kernel that parallelizes over
// row stripes on the shared kernel pool above a size threshold
// (ml/kernels.hpp); it is bit-identical to the reference triple loop
// (matmul_naive), which is kept for tests and the perf-bench baseline.
// The _nt/_tn variants fuse the transposes the autograd backward needs
// so no transposed temporary is ever materialized.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace mpidetect::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix zeros(std::size_t r, std::size_t c) { return Matrix(r, c); }

  /// Glorot/Xavier-uniform initialisation (PyTorch Geometric's default
  /// for GATv2 weights).
  static Matrix glorot(std::size_t r, std::size_t c, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// this += other (same shape).
  void add_in_place(const Matrix& o);
  /// this += s * other (fused scale-and-accumulate; same shape).
  void axpy_in_place(double s, const Matrix& o);
  /// this[i,:] += bias[0,:] for every row (fused bias broadcast);
  /// `bias` is (1 x cols).
  void add_row_in_place(const Matrix& bias);
  /// this[i,:] *= alpha[i,0] for every row (fused row scaling);
  /// `alpha` is (rows x 1).
  void scale_rows_in_place(const Matrix& alpha);

  /// \brief this (m x k) times `o` (k x n) -> (m x n).
  ///
  /// Cache-blocked (kernels::kKPanel), k-unrolled (kernels::kUnroll) and
  /// parallelized over row stripes above kernels::kParallelMinFlops.
  /// Per-element accumulation order is k-ascending exactly like
  /// matmul_naive, so the result is bit-identical to the reference
  /// kernel on finite inputs at any thread count.
  Matrix matmul(const Matrix& o) const;

  /// Reference triple-loop kernel (the seed implementation): the
  /// ground truth matmul is tested against, and the baseline the perf
  /// harness times (kernels::ScopedNaiveMatmul routes matmul here).
  Matrix matmul_naive(const Matrix& o) const;

  /// this (m x k) times `o`^T (n x k) -> (m x n). Small right-hand
  /// sides (the weight matrices of the autograd backward) are packed
  /// transposed once and streamed through the blocked kernel; large
  /// ones take a transpose-free dot kernel. Bit-identical to
  /// matmul_naive(o.transpose()).
  Matrix matmul_nt(const Matrix& o) const;

  /// this^T (k x m) times `o` (m x n) -> (k x n). Packs the left
  /// operand transposed (one O(m*k) copy) so the reduction dimension is
  /// contiguous for the blocked kernel. Bit-identical to
  /// transpose().matmul_naive(o).
  Matrix matmul_tn(const Matrix& o) const;

  Matrix transpose() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mpidetect::ml
