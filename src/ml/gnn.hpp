// The paper's GNN pipeline (§IV-B): ProGraML graphs -> three GATv2
// layers of sizes 128/64/32 wrapped in a HeteroConv (one GATv2 per edge
// relation, outputs summed) -> adaptive max pooling over nodes -> two
// fully connected layers -> class logits. Trained with cross-entropy
// and Adam (lr 4e-4) for 10 epochs.
//
// Hetero treatment: node types share one feature space (the type is part
// of the token embedding) while each of the three edge relations gets
// its own GATv2 weights — the relation-specific convolution HeteroConv
// provides. A relation-independent self transform plays the role of
// PyG's add_self_loops (nodes with no in-edges keep a signal path).
//
// Batched compute: every entry point also comes in a mini-batch form
// over programl::GraphBatch (a disjoint union of graphs with per-graph
// segment ids). Because batch members are disconnected, message passing
// over the union computes exactly the per-graph passes, and the
// segment-aware pooling keeps per-graph read-outs apart — batched
// inference produces the same logits as graph-at-a-time inference (see
// tests/batched_gnn_test.cpp), it just amortizes the per-op cost over
// the whole batch.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/adam.hpp"
#include "ml/autograd.hpp"
#include "programl/graph.hpp"

namespace mpidetect::ml {

struct GnnConfig {
  std::size_t vocab = programl::kVocabSize;
  std::size_t embed_dim = 32;                 // token embedding width
  std::vector<std::size_t> layers = {128, 64, 32};  // paper's GATv2 sizes
  std::size_t fc_hidden = 32;
  std::size_t classes = 2;
  double lr = 4e-4;     // paper
  int epochs = 10;      // paper
  std::uint64_t seed = 7;
  /// Training mini-batch: graphs packed per optimisation step. 1 is the
  /// paper's per-graph protocol (and bit-identical to the pre-batching
  /// implementation); larger values take one Adam step per batch on the
  /// mean cross-entropy — fewer, larger steps over the same epochs.
  std::size_t batch_size = 1;
  /// Inference micro-batch for the span entry points (predict /
  /// predict_proba over many graphs). A pure throughput knob: logits do
  /// not depend on it (bench/perf_gnn sweeps it; small batches keep the
  /// per-op working set cache-resident).
  std::size_t infer_batch = 8;
};

/// Random-access provider of training graphs for the out-of-core fit
/// overload: the model asks for exactly the graphs of the next
/// optimisation step, so an implementation backed by an on-disk corpus
/// (core::GnnDetector::fit_stream) holds at most one mini-batch of
/// graphs in memory instead of the whole training set. Implementations
/// re-derive graphs deterministically (fetch(i) must always yield the
/// same graph); they are called from one thread.
class GraphSource {
 public:
  virtual ~GraphSource() = default;

  virtual std::size_t size() const = 0;

  /// Replaces `out` with the graphs at positions `idx` (same order).
  virtual void fetch(std::span<const std::size_t> idx,
                     std::vector<programl::ProgramGraph>& out) = 0;
};

class GnnModel final {
 public:
  explicit GnnModel(const GnnConfig& cfg);

  /// Logits (1 x classes) with gradient tracking.
  Var forward(const programl::ProgramGraph& g);

  /// Logits (B x classes) for a graph mini-batch, row b for member b.
  Var forward(const programl::GraphBatch& batch);

  /// One optimisation step on a single graph; returns the loss.
  double train_step(const programl::ProgramGraph& g, std::size_t label);

  /// One optimisation step on a mini-batch (labels parallel to the
  /// batch members); returns the mean cross-entropy loss.
  double train_step(const programl::GraphBatch& batch,
                    std::span<const std::size_t> labels);

  /// Full training run: `epochs` shuffled passes over the set,
  /// cfg.batch_size graphs per optimisation step.
  void fit(std::span<const programl::ProgramGraph> graphs,
           std::span<const std::size_t> labels);

  /// Out-of-core training run: identical epoch/shuffle/step structure
  /// (and, for a source yielding the same graphs, bit-identical
  /// parameters — the RNG draw sequence is the same), but graphs are
  /// fetched per optimisation step from `src` instead of resident
  /// spans. Peak graph memory is one mini-batch.
  void fit(GraphSource& src, std::span<const std::size_t> labels);

  std::size_t predict(const programl::ProgramGraph& g);
  std::vector<double> predict_proba(const programl::ProgramGraph& g);

  /// Batched inference over many graphs (chunked by cfg.infer_batch,
  /// tape-free): element i is softmax probabilities for graphs[i].
  /// Same values as calling predict_proba per graph.
  std::vector<std::vector<double>> predict_proba(
      std::span<const programl::ProgramGraph> graphs);

  /// Batched argmax predictions (see the batched predict_proba).
  std::vector<std::size_t> predict(
      std::span<const programl::ProgramGraph> graphs);

  const GnnConfig& config() const { return cfg_; }
  std::size_t parameter_count() const;

  /// The trainable tensors in their fixed construction order (token
  /// embedding, then per layer the three relations' W_l/W_r/attention
  /// plus self/bias, then the two FC layers) — the payload of the model
  /// serialization format (io/model_io.hpp).
  std::vector<const Matrix*> parameters() const;

  /// Overwrites every parameter from `values` (same order and shapes as
  /// parameters(); checked), consuming them. Optimizer state is NOT
  /// restored: a loaded model predicts bit-identically but further
  /// fit() calls start Adam from fresh moments.
  void set_parameters(std::vector<Matrix> values);

 private:
  struct RelationWeights {
    Var w_left;   // target-side transform
    Var w_right;  // source-side transform (message content)
    Var attn;     // attention vector (d_out x 1)
  };
  struct Layer {
    std::vector<RelationWeights> rel;  // one per edge type
    Var w_self;
    Var bias;
  };

  /// Message passing over merged node tokens + edge lists, then
  /// per-segment max pooling and the FC head: logits
  /// (n_segments x classes). `segments` maps node -> output row;
  /// nullptr means one segment covering every node (the single-graph
  /// case, which keeps the seed's dedicated max_pool_rows read-out).
  Var forward_impl(
      std::span<const std::uint32_t> tokens,
      const std::array<std::vector<programl::Edge>,
                       programl::kNumEdgeTypes>& edges,
      const std::vector<std::uint32_t>* segments, std::size_t n_segments);

  GnnConfig cfg_;
  Rng rng_;
  Var embedding_;  // vocab x embed_dim
  std::vector<Layer> layers_;
  Var fc1_w_, fc1_b_, fc2_w_, fc2_b_;
  std::vector<Var> params_;
  Adam optimizer_;
};

}  // namespace mpidetect::ml
