// The paper's GNN pipeline (§IV-B): ProGraML graphs -> three GATv2
// layers of sizes 128/64/32 wrapped in a HeteroConv (one GATv2 per edge
// relation, outputs summed) -> adaptive max pooling over nodes -> two
// fully connected layers -> class logits. Trained with cross-entropy
// and Adam (lr 4e-4) for 10 epochs.
//
// Hetero treatment: node types share one feature space (the type is part
// of the token embedding) while each of the three edge relations gets
// its own GATv2 weights — the relation-specific convolution HeteroConv
// provides. A relation-independent self transform plays the role of
// PyG's add_self_loops (nodes with no in-edges keep a signal path).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/adam.hpp"
#include "ml/autograd.hpp"
#include "programl/graph.hpp"

namespace mpidetect::ml {

struct GnnConfig {
  std::size_t vocab = programl::kVocabSize;
  std::size_t embed_dim = 32;                 // token embedding width
  std::vector<std::size_t> layers = {128, 64, 32};  // paper's GATv2 sizes
  std::size_t fc_hidden = 32;
  std::size_t classes = 2;
  double lr = 4e-4;     // paper
  int epochs = 10;      // paper
  std::uint64_t seed = 7;
};

class GnnModel final {
 public:
  explicit GnnModel(const GnnConfig& cfg);

  /// Logits (1 x classes) with gradient tracking.
  Var forward(const programl::ProgramGraph& g);

  /// One optimisation step on a single graph; returns the loss.
  double train_step(const programl::ProgramGraph& g, std::size_t label);

  /// Full training run: `epochs` shuffled passes over the set.
  void fit(std::span<const programl::ProgramGraph> graphs,
           std::span<const std::size_t> labels);

  std::size_t predict(const programl::ProgramGraph& g);
  std::vector<double> predict_proba(const programl::ProgramGraph& g);

  const GnnConfig& config() const { return cfg_; }
  std::size_t parameter_count() const;

  /// The trainable tensors in their fixed construction order (token
  /// embedding, then per layer the three relations' W_l/W_r/attention
  /// plus self/bias, then the two FC layers) — the payload of the model
  /// serialization format (io/model_io.hpp).
  std::vector<const Matrix*> parameters() const;

  /// Overwrites every parameter from `values` (same order and shapes as
  /// parameters(); checked), consuming them. Optimizer state is NOT
  /// restored: a loaded model predicts bit-identically but further
  /// fit() calls start Adam from fresh moments.
  void set_parameters(std::vector<Matrix> values);

 private:
  struct RelationWeights {
    Var w_left;   // target-side transform
    Var w_right;  // source-side transform (message content)
    Var attn;     // attention vector (d_out x 1)
  };
  struct Layer {
    std::vector<RelationWeights> rel;  // one per edge type
    Var w_self;
    Var bias;
  };

  GnnConfig cfg_;
  Rng rng_;
  Var embedding_;  // vocab x embed_dim
  std::vector<Layer> layers_;
  Var fc1_w_, fc1_b_, fc2_w_, fc2_b_;
  std::vector<Var> params_;
  Adam optimizer_;
};

}  // namespace mpidetect::ml
