// The evaluation metrics of Table I. "Errors" groups the outcomes on
// which a tool could not produce a diagnostic (compilation error,
// timeout, runtime error); Total counts classified codes only, and
// Total + Errors is the full test population — matching MBI's
// definitions, which the paper adopts.
#pragma once

#include <cstddef>
#include <string>

namespace mpidetect::ml {

struct Confusion {
  std::size_t tp = 0;  // error correctly detected
  std::size_t tn = 0;  // correct code reported correct
  std::size_t fp = 0;  // correct code reported faulty
  std::size_t fn = 0;  // error missed
  std::size_t ce = 0;  // compilation errors (tool could not ingest)
  std::size_t to = 0;  // timeouts
  std::size_t re = 0;  // runtime errors of the tool

  std::size_t total() const { return tp + tn + fp + fn; }
  std::size_t errors() const { return ce + to + re; }
  std::size_t population() const { return total() + errors(); }

  /// Ability to find existing errors: TP / (TP + FN).
  double recall() const;
  /// Confidence of error reports: TP / (TP + FP).
  double precision() const;
  /// Harmonic mean of precision and recall.
  double f1() const;
  /// (TP + TN) / Total — over classified codes only.
  double accuracy() const;
  /// 1 - CE / (Total + Errors): ability to ingest codes.
  double coverage() const;
  /// 1 - Errors / (Total + Errors): ability to reach a diagnostic.
  double conclusiveness() const;
  /// TN / (TN + FP): ability to keep quiet on correct codes.
  double specificity() const;
  /// (TP + TN) / (Total + Errors): accuracy over the full population.
  double overall_accuracy() const;

  /// Adds an outcome for one classified code.
  void add(bool actually_incorrect, bool predicted_incorrect);

  Confusion& operator+=(const Confusion& o);

  std::string to_string() const;
};

}  // namespace mpidetect::ml
