#include "ml/matrix.hpp"

#include <cmath>

#include "ml/kernels.hpp"

namespace mpidetect::ml {

Matrix Matrix::glorot(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  const double bound = std::sqrt(6.0 / static_cast<double>(r + c));
  for (double& x : m.data_) x = rng.uniform(-bound, bound);
  return m;
}

void Matrix::add_in_place(const Matrix& o) {
  MPIDETECT_EXPECTS(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
}

void Matrix::axpy_in_place(double s, const Matrix& o) {
  MPIDETECT_EXPECTS(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * o.data_[i];
}

void Matrix::add_row_in_place(const Matrix& bias) {
  MPIDETECT_EXPECTS(bias.rows_ == 1 && bias.cols_ == cols_);
  const double* b = bias.data_.data();
  for (std::size_t i = 0; i < rows_; ++i) {
    double* r = row(i);
    for (std::size_t j = 0; j < cols_; ++j) r[j] += b[j];
  }
}

void Matrix::scale_rows_in_place(const Matrix& alpha) {
  MPIDETECT_EXPECTS(alpha.rows_ == rows_ && alpha.cols_ == 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double a = alpha.data_[i];
    double* r = row(i);
    for (std::size_t j = 0; j < cols_; ++j) r[j] *= a;
  }
}

Matrix Matrix::matmul_naive(const Matrix& o) const {
  MPIDETECT_EXPECTS(cols_ == o.rows_);
  Matrix out(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) continue;
      const double* brow = o.row(k);
      double* orow = out.row(i);
      for (std::size_t j = 0; j < o.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::matmul(const Matrix& o) const {
  MPIDETECT_EXPECTS(cols_ == o.rows_);
  kernels::OpTimer timer(kernels::Op::Matmul,
                         2 * rows_ * cols_ * o.cols_);
  if (kernels::naive_matmul()) return matmul_naive(o);
  // Tiny products (the 1-row FC matmuls): the reference loop is already
  // optimal and bit-identical.
  if (rows_ * cols_ * o.cols_ < kernels::kSmallFlops) return matmul_naive(o);
  Matrix out(rows_, o.cols_);
  const std::size_t K = cols_;
  const std::size_t N = o.cols_;
  const bool parallel = rows_ * K * N >= kernels::kParallelMinFlops;
  const kernels::KernelFns& fns = kernels::fns();
  if (N == 1) {
    // Matrix-vector product (the GATv2 attention scores): one register
    // accumulator per output element, k-ascending — bit-identical to the
    // reference loop but without its per-k load/store of the output.
    const double* bcol = o.data().data();
    kernels::parallel_ranges(rows_, parallel, [&](std::size_t i0,
                                                  std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* arow = row(i);
        double acc = 0.0;
        for (std::size_t k = 0; k < K; ++k) {
          if (arow[k] == 0.0) continue;  // naive's zero skip, same bits
          acc += arow[k] * bcol[k];
        }
        out.at(i, 0) = acc;
      }
    });
    return out;
  }
  kernels::parallel_ranges(rows_, parallel, [&](std::size_t i0,
                                                std::size_t i1) {
    // One k-panel of the RHS is streamed over the whole row stripe
    // before moving to the next, keeping the panel hot in cache. Rows
    // advance in PAIRS through the axpy4x2 kernel so each b element
    // loaded from the panel feeds two output rows — the kernels are
    // bound by load traffic, and pairing cuts it by ~20%. Each
    // out[i][j] still accumulates in k-ascending order (bit-identical
    // to matmul_naive); a k-block enters a row's chain only when that
    // row has a nonzero coefficient in it, same as the single-row path.
    for (std::size_t kk = 0; kk < K; kk += kernels::kKPanel) {
      const std::size_t kend = std::min(K, kk + kernels::kKPanel);
      std::size_t i = i0;
      for (; i + 2 <= i1; i += 2) {
        const double* arow0 = row(i);
        const double* arow1 = row(i + 1);
        double* orow0 = out.row(i);
        double* orow1 = out.row(i + 1);
        std::size_t k = kk;
        for (; k + kernels::kUnroll <= kend; k += kernels::kUnroll) {
          const bool z0 = arow0[k] == 0.0 && arow0[k + 1] == 0.0 &&
                          arow0[k + 2] == 0.0 && arow0[k + 3] == 0.0;
          const bool z1 = arow1[k] == 0.0 && arow1[k + 1] == 0.0 &&
                          arow1[k + 2] == 0.0 && arow1[k + 3] == 0.0;
          if (z0 && z1) continue;
          const double* b[4] = {o.row(k), o.row(k + 1), o.row(k + 2),
                                o.row(k + 3)};
          if (!z0 && !z1) {
            fns.axpy4x2(orow0, orow1, b, arow0 + k, arow1 + k, N);
          } else if (!z0) {
            fns.axpy4(orow0, b, arow0 + k, N);
          } else {
            fns.axpy4(orow1, b, arow1 + k, N);
          }
        }
        for (; k < kend; ++k) {
          if (arow0[k] != 0.0) fns.axpy1(orow0, o.row(k), arow0[k], N);
          if (arow1[k] != 0.0) fns.axpy1(orow1, o.row(k), arow1[k], N);
        }
      }
      for (; i < i1; ++i) {
        const double* arow = row(i);
        double* orow = out.row(i);
        std::size_t k = kk;
        for (; k + 2 * kernels::kUnroll <= kend; k += 2 * kernels::kUnroll) {
          const double a0 = arow[k];
          const double a1 = arow[k + 1];
          const double a2 = arow[k + 2];
          const double a3 = arow[k + 3];
          const double a4 = arow[k + 4];
          const double a5 = arow[k + 5];
          const double a6 = arow[k + 6];
          const double a7 = arow[k + 7];
          // Backward passes multiply gradient matrices with whole zero
          // rows (nodes a relation never reaches); skipping them costs
          // eight compares and keeps the bits (adding a*0 never changes
          // a finite accumulator's magnitude) — the same skip the
          // reference kernel does per k.
          if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 &&
              a4 == 0.0 && a5 == 0.0 && a6 == 0.0 && a7 == 0.0) {
            continue;
          }
          const double* b[8] = {o.row(k),     o.row(k + 1), o.row(k + 2),
                                o.row(k + 3), o.row(k + 4), o.row(k + 5),
                                o.row(k + 6), o.row(k + 7)};
          fns.axpy8(orow, b, arow + k, N);
        }
        for (; k + kernels::kUnroll <= kend; k += kernels::kUnroll) {
          const double a0 = arow[k];
          const double a1 = arow[k + 1];
          const double a2 = arow[k + 2];
          const double a3 = arow[k + 3];
          if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0) continue;
          const double* b[4] = {o.row(k), o.row(k + 1), o.row(k + 2),
                                o.row(k + 3)};
          fns.axpy4(orow, b, arow + k, N);
        }
        for (; k < kend; ++k) {
          const double a = arow[k];
          if (a == 0.0) continue;
          fns.axpy1(orow, o.row(k), a, N);
        }
      }
    }
  });
  return out;
}

Matrix Matrix::matmul_nt(const Matrix& o) const {
  MPIDETECT_EXPECTS(cols_ == o.cols_);
  kernels::OpTimer timer(kernels::Op::MatmulNt,
                         2 * rows_ * cols_ * o.rows_);
  // Baseline mode reproduces the seed's backward exactly: materialized
  // transpose + naive kernel.
  if (kernels::naive_matmul()) return matmul_naive(o.transpose());
  // Short reductions (e.g. the attention-score backward, K == 1) and
  // tiny products: the transposed copy is cheap and the axpy-form
  // reference kernel beats a stunted dot kernel.
  if (cols_ < 2 * kernels::kUnroll ||
      rows_ * cols_ * o.rows_ < kernels::kSmallFlops) {
    return matmul_naive(o.transpose());
  }
  // Small RHS (e.g. the weight matrices in the matmul backward):
  // transposing it costs a few KB of copying once, after which the
  // cache-blocked streaming kernel beats a latency-bound dot kernel.
  // matmul(o^T) accumulates k-ascending too, so bits do not change.
  if (o.rows_ * o.cols_ <= kernels::kKPanel * 256) {
    return matmul(o.transpose());
  }
  Matrix out(rows_, o.rows_);
  const std::size_t K = cols_;
  const std::size_t N = o.rows_;
  const bool parallel = rows_ * K * N >= kernels::kParallelMinFlops;
  const kernels::KernelFns& fns = kernels::fns();
  kernels::parallel_ranges(rows_, parallel, [&](std::size_t i0,
                                                std::size_t i1) {
    // Dot-product kernel over rows of both operands. kUnroll output
    // columns advance together as independent accumulator chains (ILP);
    // each chain sums in k-ascending order, so every element matches
    // matmul_naive(o.transpose()) bit for bit.
    for (std::size_t i = i0; i < i1; ++i) {
      const double* arow = row(i);
      double* orow = out.row(i);
      std::size_t j = 0;
      for (; j + kernels::kUnroll <= N; j += kernels::kUnroll) {
        const double* b[4] = {o.row(j), o.row(j + 1), o.row(j + 2),
                              o.row(j + 3)};
        fns.dot4(arow, b, K, orow + j);
      }
      for (; j < N; ++j) {
        const double* brow = o.row(j);
        double s = 0.0;
        for (std::size_t k = 0; k < K; ++k) s += arow[k] * brow[k];
        orow[j] = s;
      }
    }
  });
  return out;
}

Matrix Matrix::matmul_tn(const Matrix& o) const {
  MPIDETECT_EXPECTS(rows_ == o.rows_);
  kernels::OpTimer timer(kernels::Op::MatmulTn,
                         2 * rows_ * cols_ * o.cols_);
  if (kernels::naive_matmul() ||
      rows_ * cols_ * o.cols_ < kernels::kSmallFlops) {
    return transpose().matmul_naive(o);
  }
  // Packing the left operand transposed costs one O(M*K) copy, after
  // which the reduction dimension is contiguous and the blocked
  // streaming kernel applies. An in-place kernel needs strided
  // coefficient loads and loses to the packed form at every shape the
  // GNN produces. matmul accumulates the (former) row index ascending,
  // so bits match transpose().matmul_naive(o) exactly.
  return transpose().matmul(o);
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  // Tiled copy: a naive row sweep touches one destination cache line
  // per element; walking 16x16 blocks keeps both source and destination
  // lines hot. Pure data movement, so results are unchanged.
  constexpr std::size_t kTile = 16;
  for (std::size_t ii = 0; ii < rows_; ii += kTile) {
    const std::size_t iend = std::min(rows_, ii + kTile);
    for (std::size_t jj = 0; jj < cols_; jj += kTile) {
      const std::size_t jend = std::min(cols_, jj + kTile);
      for (std::size_t i = ii; i < iend; ++i) {
        const double* src = row(i);
        for (std::size_t j = jj; j < jend; ++j) {
          out.at(j, i) = src[j];
        }
      }
    }
  }
  return out;
}

}  // namespace mpidetect::ml
