#include "ml/matrix.hpp"

#include <cmath>

namespace mpidetect::ml {

Matrix Matrix::glorot(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  const double bound = std::sqrt(6.0 / static_cast<double>(r + c));
  for (double& x : m.data_) x = rng.uniform(-bound, bound);
  return m;
}

void Matrix::add_in_place(const Matrix& o) {
  MPIDETECT_EXPECTS(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
}

void Matrix::axpy_in_place(double s, const Matrix& o) {
  MPIDETECT_EXPECTS(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * o.data_[i];
}

Matrix Matrix::matmul(const Matrix& o) const {
  MPIDETECT_EXPECTS(cols_ == o.rows_);
  Matrix out(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) continue;
      const double* brow = o.row(k);
      double* orow = out.row(i);
      for (std::size_t j = 0; j < o.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  }
  return out;
}

}  // namespace mpidetect::ml
