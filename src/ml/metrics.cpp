#include "ml/metrics.hpp"

#include <sstream>

namespace mpidetect::ml {

namespace {
double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double Confusion::recall() const { return ratio(tp, tp + fn); }
double Confusion::precision() const { return ratio(tp, tp + fp); }

double Confusion::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Confusion::accuracy() const { return ratio(tp + tn, total()); }
double Confusion::coverage() const {
  return population() == 0 ? 0.0 : 1.0 - ratio(ce, population());
}
double Confusion::conclusiveness() const {
  return population() == 0 ? 0.0 : 1.0 - ratio(errors(), population());
}
double Confusion::specificity() const { return ratio(tn, tn + fp); }
double Confusion::overall_accuracy() const {
  return ratio(tp + tn, population());
}

void Confusion::add(bool actually_incorrect, bool predicted_incorrect) {
  if (actually_incorrect) {
    if (predicted_incorrect) {
      ++tp;
    } else {
      ++fn;
    }
  } else {
    if (predicted_incorrect) {
      ++fp;
    } else {
      ++tn;
    }
  }
}

Confusion& Confusion::operator+=(const Confusion& o) {
  tp += o.tp;
  tn += o.tn;
  fp += o.fp;
  fn += o.fn;
  ce += o.ce;
  to += o.to;
  re += o.re;
  return *this;
}

std::string Confusion::to_string() const {
  std::ostringstream os;
  os << "TP=" << tp << " TN=" << tn << " FP=" << fp << " FN=" << fn;
  if (errors() > 0) {
    os << " CE=" << ce << " TO=" << to << " RE=" << re;
  }
  return os.str();
}

}  // namespace mpidetect::ml
