// Reverse-mode automatic differentiation over dense matrices with the
// gather/scatter/segment operations graph neural networks need. The op
// set is exactly what the GATv2 pipeline uses; every op's backward is
// validated by finite differences in tests/autograd_test.cpp.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ml/matrix.hpp"

namespace mpidetect::ml {

struct VarNode;
using Var = std::shared_ptr<VarNode>;

/// A node of the dynamically built computation graph.
struct VarNode {
  Matrix value;
  Matrix grad;                     // same shape as value, lazily allocated
  bool requires_grad = false;
  std::vector<Var> parents;        // kept alive for the backward pass
  std::function<void(VarNode&)> backward_fn;  // accumulates into parents

  explicit VarNode(Matrix v) : value(std::move(v)) {}

  Matrix& ensure_grad();
  void zero_grad() { grad = Matrix(); }
};

/// Leaf with gradients (a trainable parameter).
Var make_param(Matrix value);
/// Leaf without gradients (an input).
Var make_input(Matrix value);

/// Runs reverse-mode accumulation from a scalar (1x1) root.
void backward(const Var& root);

// --- ops -------------------------------------------------------------------

Var matmul(const Var& a, const Var& b);
Var transpose(const Var& a);
Var add(const Var& a, const Var& b);                 // same shape
Var add_row_broadcast(const Var& a, const Var& bias); // (N,d)+(1,d)
Var scale(const Var& a, double s);
Var leaky_relu(const Var& a, double negative_slope = 0.2);
Var elu(const Var& a);
Var relu(const Var& a);

/// out[e] = a[idx[e]]  (rows).
Var gather_rows(const Var& a, std::vector<std::uint32_t> idx);
/// out[idx[e]] += a[e]; result has n_rows rows.
Var scatter_add_rows(const Var& a, std::vector<std::uint32_t> idx,
                     std::size_t n_rows);
/// Softmax over the entries of each segment: scores is (E,1), seg[e]
/// names the segment of entry e (e.g. the edge's target node).
Var segment_softmax(const Var& scores, std::vector<std::uint32_t> seg,
                    std::size_t n_segments);
/// Row-wise scaling: out[e] = alpha[e,0] * h[e,:].
Var mul_rowwise(const Var& alpha, const Var& h);
/// Column-wise max over rows -> (1,d); the GNN's adaptive max pooling.
Var max_pool_rows(const Var& a);
/// Cross-entropy of a (1,C) logits row against an integer label; (1,1).
Var cross_entropy(const Var& logits, std::size_t label);

/// Softmax probabilities of a (1,C) logits row (inference only).
std::vector<double> softmax_row(const Matrix& logits);

}  // namespace mpidetect::ml
