// Reverse-mode automatic differentiation over dense matrices with the
// gather/scatter/segment operations graph neural networks need. The op
// set is exactly what the GATv2 pipeline uses — including the segment
// (per-graph) pooling and row-batched cross-entropy that let one tape
// carry a whole mini-batch of disjoint graphs; every op's backward is
// validated by finite differences in tests/autograd_test.cpp and
// tests/batched_gnn_test.cpp.
//
// Inference can run under a NoGradGuard: ops compute the same values
// but skip tape construction (no parents, no backward closures), which
// is what GnnModel's predict paths use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ml/matrix.hpp"

namespace mpidetect::ml {

struct VarNode;
using Var = std::shared_ptr<VarNode>;

/// A node of the dynamically built computation graph.
struct VarNode {
  Matrix value;
  Matrix grad;                     // same shape as value, lazily allocated
  bool requires_grad = false;
  std::vector<Var> parents;        // kept alive for the backward pass
  std::function<void(VarNode&)> backward_fn;  // accumulates into parents

  explicit VarNode(Matrix v) : value(std::move(v)) {}

  /// The gradient buffer, allocated (zeroed, same shape as value) on
  /// first use.
  Matrix& ensure_grad();
  void zero_grad() { grad = Matrix(); }
};

/// Leaf with gradients (a trainable parameter).
Var make_param(Matrix value);
/// Leaf without gradients (an input).
Var make_input(Matrix value);

/// \brief Whether ops currently record the tape (thread-local; default
/// true). Under `false`, every op behaves as if its inputs did not
/// require gradients: same values, no parents, no backward closures.
bool grad_enabled();

/// RAII scope that disables tape recording on the calling thread — the
/// inference mode of the GNN's predict paths.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Runs reverse-mode accumulation from a scalar (1x1) root.
void backward(const Var& root);

// --- ops -------------------------------------------------------------------

/// Matrix product. Backward uses the fused transposed kernels
/// (Matrix::matmul_nt / matmul_tn), so no transpose is materialized.
Var matmul(const Var& a, const Var& b);
Var transpose(const Var& a);
Var add(const Var& a, const Var& b);                 // same shape
Var add_row_broadcast(const Var& a, const Var& bias); // (N,d)+(1,d)
Var scale(const Var& a, double s);
/// Left-to-right sum of same-shaped terms: (((t0+t1)+t2)+...).
/// Bit-identical to the equivalent add() chain while materializing one
/// result instead of k-1 intermediates. Needs at least one term.
Var add_n(std::vector<Var> terms);
Var leaky_relu(const Var& a, double negative_slope = 0.2);
Var elu(const Var& a);
Var relu(const Var& a);

/// out[e] = a[idx[e]]  (rows).
Var gather_rows(const Var& a, std::vector<std::uint32_t> idx);
/// out[idx[e]] += a[e]; result has n_rows rows. Forward and the
/// gather backward parallelize over column ranges above a size
/// threshold (order-preserving, see ml/kernels.hpp).
Var scatter_add_rows(const Var& a, std::vector<std::uint32_t> idx,
                     std::size_t n_rows);
/// Softmax over the entries of each segment: scores is (E,1), seg[e]
/// names the segment of entry e (e.g. the edge's target node).
Var segment_softmax(const Var& scores, std::vector<std::uint32_t> seg,
                    std::size_t n_segments);
/// Row-wise scaling: out[e] = alpha[e,0] * h[e,:].
Var mul_rowwise(const Var& alpha, const Var& h);

/// \brief Fused GATv2 edge scoring:
/// out[e] = sum_k leaky_relu(hl[e,k] + hr[e,k]) * attn[k]  -> (E,1).
///
/// One pass instead of the add -> leaky_relu -> matmul chain: the two
/// (E,d) intermediates are never materialized (the backward recomputes
/// the cheap pre-activation on the fly). Per-element operations and
/// their order are exactly the unfused chain's, so scores — and
/// gradients — are bit-identical to it.
Var gatv2_scores(const Var& hl, const Var& hr, const Var& attn,
                 double negative_slope = 0.2);

/// \brief Fused row-broadcast bias + ELU: out[i,j] = elu(a[i,j] +
/// bias[0,j]). One pass instead of the add_row_broadcast -> elu chain
/// (the pre-activation is recomputed in the backward); per-element
/// operations match the unfused chain, so values are bit-identical.
Var bias_elu(const Var& a, const Var& bias);

/// \brief Fused attention-weighted message aggregation:
/// out[idx[e], :] += alpha[e,0] * h[e, :]; result has n_rows rows.
///
/// One pass instead of mul_rowwise -> scatter_add_rows: the scaled
/// (E,d) message matrix is never materialized. Bit-identical to the
/// unfused chain.
Var scatter_add_scaled(const Var& alpha, const Var& h,
                       std::vector<std::uint32_t> idx, std::size_t n_rows);

/// \brief Fully-gathered GATv2 edge scoring:
/// out[e] = sum_k leaky_relu(hl[dst[e],k] + hr[src[e],k]) * attn[k].
///
/// Like gatv2_scores but reading the node-level transforms through the
/// edge indices on the fly, so the (E,d) gathered copies are never
/// materialized either. Bit-identical to
/// gatv2_scores(gather_rows(hl, dst), gather_rows(hr, src), attn).
Var gatv2_scores_gathered(const Var& hl, std::vector<std::uint32_t> dst,
                          const Var& hr, std::vector<std::uint32_t> src,
                          const Var& attn, double negative_slope = 0.2);

/// \brief Fully-gathered attention-weighted aggregation:
/// out[dst[e], :] += alpha[e,0] * h[src[e], :]; result has n_rows rows.
///
/// Like scatter_add_scaled but reading the source rows through the edge
/// indices, so the gathered (E,d) copy of h is never materialized.
/// Bit-identical to scatter_add_scaled(alpha, gather_rows(h, src), dst,
/// n_rows).
Var scatter_add_scaled_gathered(const Var& alpha, const Var& h,
                                std::vector<std::uint32_t> src,
                                std::vector<std::uint32_t> dst,
                                std::size_t n_rows);
/// Column-wise max over rows -> (1,d); the GNN's adaptive max pooling.
Var max_pool_rows(const Var& a);

/// \brief Per-segment column-wise max: out[s,j] = max over rows e with
/// seg[e] == s of a[e,j] -> (n_segments, d).
///
/// The batched form of max_pool_rows: with seg[e] the graph id of node
/// e, one call pools every graph of a disjoint-union batch. Every
/// segment must own at least one row. For n_segments == 1 the result
/// (and the backward, which routes the gradient to the first maximal
/// row) equals max_pool_rows exactly.
Var segment_max_pool_rows(const Var& a, std::vector<std::uint32_t> seg,
                          std::size_t n_segments);

/// \brief Per-segment column-wise mean -> (n_segments, d). Every
/// segment must own at least one row.
Var segment_mean_pool_rows(const Var& a, std::vector<std::uint32_t> seg,
                           std::size_t n_segments);

/// Cross-entropy of a (1,C) logits row against an integer label; (1,1).
Var cross_entropy(const Var& logits, std::size_t label);

/// \brief Mean cross-entropy of (B,C) logits against B integer labels;
/// (1,1). For B == 1 this equals cross_entropy — one batched training
/// step over a single graph reproduces the single-graph step exactly.
Var cross_entropy_rows(const Var& logits, std::vector<std::size_t> labels);

/// Softmax probabilities of a (1,C) logits row (inference only).
std::vector<double> softmax_row(const Matrix& logits);

/// Row-wise softmax probabilities of (B,C) logits (inference only);
/// row b of the result is softmax_row of logits row b.
std::vector<std::vector<double>> softmax_rows(const Matrix& logits);

}  // namespace mpidetect::ml
