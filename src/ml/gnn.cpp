#include "ml/gnn.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace mpidetect::ml {

GnnModel::GnnModel(const GnnConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), optimizer_({}, cfg.lr) {
  MPIDETECT_EXPECTS(!cfg.layers.empty());
  MPIDETECT_EXPECTS(cfg.classes >= 2);

  embedding_ = make_param(Matrix::glorot(cfg.vocab, cfg.embed_dim, rng_));
  params_.push_back(embedding_);

  std::size_t d_in = cfg.embed_dim;
  for (const std::size_t d_out : cfg.layers) {
    Layer layer;
    for (std::size_t r = 0; r < programl::kNumEdgeTypes; ++r) {
      RelationWeights w;
      w.w_left = make_param(Matrix::glorot(d_in, d_out, rng_));
      w.w_right = make_param(Matrix::glorot(d_in, d_out, rng_));
      w.attn = make_param(Matrix::glorot(d_out, 1, rng_));
      params_.push_back(w.w_left);
      params_.push_back(w.w_right);
      params_.push_back(w.attn);
      layer.rel.push_back(std::move(w));
    }
    layer.w_self = make_param(Matrix::glorot(d_in, d_out, rng_));
    layer.bias = make_param(Matrix(1, d_out));
    params_.push_back(layer.w_self);
    params_.push_back(layer.bias);
    layers_.push_back(std::move(layer));
    d_in = d_out;
  }

  fc1_w_ = make_param(Matrix::glorot(d_in, cfg.fc_hidden, rng_));
  fc1_b_ = make_param(Matrix(1, cfg.fc_hidden));
  fc2_w_ = make_param(Matrix::glorot(cfg.fc_hidden, cfg.classes, rng_));
  fc2_b_ = make_param(Matrix(1, cfg.classes));
  params_.push_back(fc1_w_);
  params_.push_back(fc1_b_);
  params_.push_back(fc2_w_);
  params_.push_back(fc2_b_);

  optimizer_ = Adam(params_, cfg.lr);
}

std::size_t GnnModel::parameter_count() const {
  std::size_t n = 0;
  for (const Var& p : params_) n += p->value.size();
  return n;
}

std::vector<const Matrix*> GnnModel::parameters() const {
  std::vector<const Matrix*> out;
  out.reserve(params_.size());
  for (const Var& p : params_) out.push_back(&p->value);
  return out;
}

void GnnModel::set_parameters(std::vector<Matrix> values) {
  MPIDETECT_EXPECTS(values.size() == params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    MPIDETECT_EXPECTS(params_[i]->value.same_shape(values[i]));
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i]->value = std::move(values[i]);
    params_[i]->zero_grad();
  }
}

Var GnnModel::forward_impl(
    std::span<const std::uint32_t> tokens,
    const std::array<std::vector<programl::Edge>,
                     programl::kNumEdgeTypes>& all_edges,
    const std::vector<std::uint32_t>* segments, std::size_t n_segments) {
  MPIDETECT_EXPECTS(!tokens.empty());
  const std::size_t n = tokens.size();

  // Token embedding lookup.
  Var x = gather_rows(embedding_, {tokens.begin(), tokens.end()});

  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    // Self path (plays the role of GATv2's self loops). The fast path
    // collects the self transform and the per-relation aggregates and
    // sums them in one add_n (bit-identical to the seed's add chain).
    Var out = matmul(x, layer.w_self);
    std::vector<Var> terms{out};
    // One GATv2 message-passing pass per relation, summed (HeteroConv).
    for (std::size_t r = 0; r < programl::kNumEdgeTypes; ++r) {
      const auto& edges = all_edges[r];
      if (edges.empty()) continue;
      std::vector<std::uint32_t> src(edges.size());
      std::vector<std::uint32_t> dst(edges.size());
      for (std::size_t e = 0; e < edges.size(); ++e) {
        src[e] = edges[e].src;
        dst[e] = edges[e].dst;
      }
      const RelationWeights& w = layer.rel[r];
      // The batched engine (and all inference) takes the fused fast
      // path: sparse-relation gather-first transforms, one-pass GATv2
      // scoring that reads node transforms through the edge indices,
      // and fused message aggregation — no (E,d) intermediate is ever
      // materialized. Forward values are bit-identical to the unfused
      // chain; the single-graph training path below stays exactly the
      // seed pipeline so the paper protocol's training trajectory is
      // untouched.
      const bool fast_path = !grad_enabled() || segments != nullptr;
      if (fast_path && 2 * edges.size() < n) {
        // Sparse relation (e.g. call edges): transforming all N node
        // rows to then read E of them wastes (N - E) rows' work.
        // Gather the needed rows first and transform only those — each
        // output element is the same dot product, so logits do not
        // change. (Gradient summation order does, hence the guard.)
        Var hl_t = matmul(gather_rows(x, dst), w.w_left);  // (E, d_out)
        Var hr_s = matmul(gather_rows(x, src), w.w_right);
        Var scores = gatv2_scores(hl_t, hr_s, w.attn);  // (E, 1)
        Var alpha = segment_softmax(scores, dst, n);
        terms.push_back(scatter_add_scaled(alpha, hr_s, dst, n));
      } else if (fast_path) {
        Var h_left = matmul(x, w.w_left);    // (N, d_out)
        Var h_right = matmul(x, w.w_right);  // (N, d_out)
        // GATv2 scoring a^T LeakyReLU(W_l h_t + W_r h_s) and the
        // alpha-weighted aggregation, both reading h_left/h_right
        // through dst/src on the fly.
        Var scores = gatv2_scores_gathered(h_left, dst, h_right, src,
                                           w.attn);  // (E, 1)
        Var alpha = segment_softmax(scores, dst, n);
        terms.push_back(
            scatter_add_scaled_gathered(alpha, h_right, src, dst, n));
      } else {
        // The seed pipeline, op for op.
        Var h_left = matmul(x, w.w_left);    // (N, d_out)
        Var h_right = matmul(x, w.w_right);  // (N, d_out)
        Var hl_t = gather_rows(h_left, dst);   // (E, d_out)
        Var hr_s = gather_rows(h_right, src);  // (E, d_out)
        // GATv2 scoring: a^T LeakyReLU(W_l h_t + W_r h_s)
        Var scores = matmul(leaky_relu(add(hl_t, hr_s)), w.attn);  // (E,1)
        Var alpha = segment_softmax(scores, dst, n);
        Var messages = mul_rowwise(alpha, hr_s);
        out = add(out, scatter_add_rows(messages, dst, n));
      }
    }
    if (!grad_enabled() || segments != nullptr) {
      x = bias_elu(add_n(std::move(terms)), layer.bias);
    } else {
      out = add_row_broadcast(out, layer.bias);
      x = elu(out);
    }
  }

  // Adaptive max pooling: one read-out row per graph. The segment form
  // over one segment equals max_pool_rows; the dedicated op is kept on
  // the single-graph path so that path stays exactly the seed pipeline.
  Var pooled = segments == nullptr
                   ? max_pool_rows(x)
                   : segment_max_pool_rows(x, *segments, n_segments);
  Var hidden = relu(add_row_broadcast(matmul(pooled, fc1_w_), fc1_b_));
  return add_row_broadcast(matmul(hidden, fc2_w_), fc2_b_);
}

Var GnnModel::forward(const programl::ProgramGraph& g) {
  std::vector<std::uint32_t> tokens(g.num_nodes());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = g.nodes[i].token;
  }
  return forward_impl(tokens, g.edges, nullptr, 1);
}

Var GnnModel::forward(const programl::GraphBatch& batch) {
  MPIDETECT_EXPECTS(batch.size >= 1);
  MPIDETECT_EXPECTS(batch.segments.size() == batch.num_nodes());
  return forward_impl(batch.tokens, batch.edges, &batch.segments, batch.size);
}

double GnnModel::train_step(const programl::ProgramGraph& g,
                            std::size_t label) {
  Var loss = cross_entropy(forward(g), label);
  backward(loss);
  const double value = loss->value.at(0, 0);
  optimizer_.step();
  return value;
}

double GnnModel::train_step(const programl::GraphBatch& batch,
                            std::span<const std::size_t> labels) {
  MPIDETECT_EXPECTS(labels.size() == batch.size);
  Var loss = cross_entropy_rows(forward(batch),
                                {labels.begin(), labels.end()});
  backward(loss);
  const double value = loss->value.at(0, 0);
  optimizer_.step();
  return value;
}

void GnnModel::fit(std::span<const programl::ProgramGraph> graphs,
                   std::span<const std::size_t> labels) {
  MPIDETECT_EXPECTS(graphs.size() == labels.size());
  std::vector<std::size_t> order(graphs.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t batch = std::max<std::size_t>(1, cfg_.batch_size);
  std::vector<const programl::ProgramGraph*> members;
  std::vector<std::size_t> member_labels;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng_.shuffle(order);
    if (batch == 1) {
      // The paper's protocol: one optimisation step per graph.
      for (const std::size_t i : order) {
        train_step(graphs[i], labels[i]);
      }
      continue;
    }
    for (std::size_t b = 0; b < order.size(); b += batch) {
      const std::size_t end = std::min(order.size(), b + batch);
      members.clear();
      member_labels.clear();
      for (std::size_t j = b; j < end; ++j) {
        members.push_back(&graphs[order[j]]);
        member_labels.push_back(labels[order[j]]);
      }
      const programl::GraphBatch gb = programl::make_batch(
          std::span<const programl::ProgramGraph* const>(members));
      train_step(gb, member_labels);
    }
  }
}

void GnnModel::fit(GraphSource& src, std::span<const std::size_t> labels) {
  MPIDETECT_EXPECTS(src.size() == labels.size());
  std::vector<std::size_t> order(src.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t batch = std::max<std::size_t>(1, cfg_.batch_size);
  std::vector<programl::ProgramGraph> fetched;
  std::vector<const programl::ProgramGraph*> members;
  std::vector<std::size_t> member_labels;
  // Same draw sequence as the in-memory fit: one shuffle per epoch,
  // steps in shuffled order — only graph residency differs.
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t b = 0; b < order.size(); b += batch) {
      const std::size_t end = std::min(order.size(), b + batch);
      src.fetch(std::span<const std::size_t>(order).subspan(b, end - b),
                fetched);
      MPIDETECT_EXPECTS(fetched.size() == end - b);
      if (batch == 1) {
        train_step(fetched[0], labels[order[b]]);
        continue;
      }
      members.clear();
      member_labels.clear();
      for (std::size_t j = b; j < end; ++j) {
        members.push_back(&fetched[j - b]);
        member_labels.push_back(labels[order[j]]);
      }
      const programl::GraphBatch gb = programl::make_batch(
          std::span<const programl::ProgramGraph* const>(members));
      train_step(gb, member_labels);
    }
  }
}

std::size_t GnnModel::predict(const programl::ProgramGraph& g) {
  const auto p = predict_proba(g);
  return static_cast<std::size_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<double> GnnModel::predict_proba(const programl::ProgramGraph& g) {
  NoGradGuard inference;
  Var logits = forward(g);
  return softmax_row(logits->value);
}

std::vector<std::vector<double>> GnnModel::predict_proba(
    std::span<const programl::ProgramGraph> graphs) {
  NoGradGuard inference;
  std::vector<std::vector<double>> out;
  out.reserve(graphs.size());
  const std::size_t chunk = std::max<std::size_t>(1, cfg_.infer_batch);
  for (std::size_t b = 0; b < graphs.size(); b += chunk) {
    const std::size_t end = std::min(graphs.size(), b + chunk);
    const programl::GraphBatch gb =
        programl::make_batch(graphs.subspan(b, end - b));
    Var logits = forward(gb);
    for (auto& p : softmax_rows(logits->value)) out.push_back(std::move(p));
  }
  return out;
}

std::vector<std::size_t> GnnModel::predict(
    std::span<const programl::ProgramGraph> graphs) {
  std::vector<std::size_t> out;
  out.reserve(graphs.size());
  for (const auto& p : predict_proba(graphs)) {
    out.push_back(static_cast<std::size_t>(
        std::max_element(p.begin(), p.end()) - p.begin()));
  }
  return out;
}

}  // namespace mpidetect::ml
