#include "ml/gnn.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace mpidetect::ml {

GnnModel::GnnModel(const GnnConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), optimizer_({}, cfg.lr) {
  MPIDETECT_EXPECTS(!cfg.layers.empty());
  MPIDETECT_EXPECTS(cfg.classes >= 2);

  embedding_ = make_param(Matrix::glorot(cfg.vocab, cfg.embed_dim, rng_));
  params_.push_back(embedding_);

  std::size_t d_in = cfg.embed_dim;
  for (const std::size_t d_out : cfg.layers) {
    Layer layer;
    for (std::size_t r = 0; r < programl::kNumEdgeTypes; ++r) {
      RelationWeights w;
      w.w_left = make_param(Matrix::glorot(d_in, d_out, rng_));
      w.w_right = make_param(Matrix::glorot(d_in, d_out, rng_));
      w.attn = make_param(Matrix::glorot(d_out, 1, rng_));
      params_.push_back(w.w_left);
      params_.push_back(w.w_right);
      params_.push_back(w.attn);
      layer.rel.push_back(std::move(w));
    }
    layer.w_self = make_param(Matrix::glorot(d_in, d_out, rng_));
    layer.bias = make_param(Matrix(1, d_out));
    params_.push_back(layer.w_self);
    params_.push_back(layer.bias);
    layers_.push_back(std::move(layer));
    d_in = d_out;
  }

  fc1_w_ = make_param(Matrix::glorot(d_in, cfg.fc_hidden, rng_));
  fc1_b_ = make_param(Matrix(1, cfg.fc_hidden));
  fc2_w_ = make_param(Matrix::glorot(cfg.fc_hidden, cfg.classes, rng_));
  fc2_b_ = make_param(Matrix(1, cfg.classes));
  params_.push_back(fc1_w_);
  params_.push_back(fc1_b_);
  params_.push_back(fc2_w_);
  params_.push_back(fc2_b_);

  optimizer_ = Adam(params_, cfg.lr);
}

std::size_t GnnModel::parameter_count() const {
  std::size_t n = 0;
  for (const Var& p : params_) n += p->value.size();
  return n;
}

std::vector<const Matrix*> GnnModel::parameters() const {
  std::vector<const Matrix*> out;
  out.reserve(params_.size());
  for (const Var& p : params_) out.push_back(&p->value);
  return out;
}

void GnnModel::set_parameters(std::vector<Matrix> values) {
  MPIDETECT_EXPECTS(values.size() == params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    MPIDETECT_EXPECTS(params_[i]->value.same_shape(values[i]));
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i]->value = std::move(values[i]);
    params_[i]->zero_grad();
  }
}

Var GnnModel::forward(const programl::ProgramGraph& g) {
  MPIDETECT_EXPECTS(g.num_nodes() > 0);
  const std::size_t n = g.num_nodes();

  // Token embedding lookup.
  std::vector<std::uint32_t> tokens(n);
  for (std::size_t i = 0; i < n; ++i) tokens[i] = g.nodes[i].token;
  Var x = gather_rows(embedding_, tokens);

  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    // Self path (plays the role of GATv2's self loops).
    Var out = matmul(x, layer.w_self);
    // One GATv2 message-passing pass per relation, summed (HeteroConv).
    for (std::size_t r = 0; r < programl::kNumEdgeTypes; ++r) {
      const auto& edges = g.edges[r];
      if (edges.empty()) continue;
      std::vector<std::uint32_t> src(edges.size());
      std::vector<std::uint32_t> dst(edges.size());
      for (std::size_t e = 0; e < edges.size(); ++e) {
        src[e] = edges[e].src;
        dst[e] = edges[e].dst;
      }
      const RelationWeights& w = layer.rel[r];
      Var h_left = matmul(x, w.w_left);    // (N, d_out)
      Var h_right = matmul(x, w.w_right);  // (N, d_out)
      Var hl_t = gather_rows(h_left, dst);   // (E, d_out)
      Var hr_s = gather_rows(h_right, src);  // (E, d_out)
      // GATv2 scoring: a^T LeakyReLU(W_l h_t + W_r h_s)
      Var scores = matmul(leaky_relu(add(hl_t, hr_s)), w.attn);  // (E,1)
      Var alpha = segment_softmax(scores, dst, n);
      Var messages = mul_rowwise(alpha, hr_s);
      out = add(out, scatter_add_rows(messages, dst, n));
    }
    out = add_row_broadcast(out, layer.bias);
    x = elu(out);
  }

  Var pooled = max_pool_rows(x);  // adaptive max pooling -> (1, d)
  Var hidden = relu(add_row_broadcast(matmul(pooled, fc1_w_), fc1_b_));
  return add_row_broadcast(matmul(hidden, fc2_w_), fc2_b_);
}

double GnnModel::train_step(const programl::ProgramGraph& g,
                            std::size_t label) {
  Var loss = cross_entropy(forward(g), label);
  backward(loss);
  const double value = loss->value.at(0, 0);
  optimizer_.step();
  return value;
}

void GnnModel::fit(std::span<const programl::ProgramGraph> graphs,
                   std::span<const std::size_t> labels) {
  MPIDETECT_EXPECTS(graphs.size() == labels.size());
  std::vector<std::size_t> order(graphs.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng_.shuffle(order);
    for (const std::size_t i : order) {
      train_step(graphs[i], labels[i]);
    }
  }
}

std::size_t GnnModel::predict(const programl::ProgramGraph& g) {
  const auto p = predict_proba(g);
  return static_cast<std::size_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<double> GnnModel::predict_proba(const programl::ProgramGraph& g) {
  Var logits = forward(g);
  return softmax_row(logits->value);
}

}  // namespace mpidetect::ml
