// Adam optimizer (Kingma & Ba) over a parameter list — the paper trains
// the GNN with Adam at learning rate 4e-4 for 10 epochs.
#pragma once

#include <vector>

#include "ml/autograd.hpp"

namespace mpidetect::ml {

class Adam final {
 public:
  explicit Adam(std::vector<Var> params, double lr = 4e-4,
                double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();

  /// Zeroes gradients without updating (e.g. after a skipped batch).
  void zero_grad();

  double learning_rate() const { return lr_; }

 private:
  std::vector<Var> params_;
  std::vector<Matrix> m_, v_;
  double lr_, beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
};

}  // namespace mpidetect::ml
