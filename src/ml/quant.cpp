#include "ml/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "ml/kernels.hpp"
#include "support/check.hpp"

namespace mpidetect::ml {
namespace {

// Float row-major buffer for the quantized forward's activations.
struct FloatMat {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> data;

  FloatMat() = default;
  FloatMat(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c) {}
  float* row(std::size_t r) { return data.data() + r * cols; }
  const float* row(std::size_t r) const { return data.data() + r * cols; }
};

std::vector<float> bf16_row_vector(const Matrix& m) {
  std::vector<float> out(m.size());
  const std::vector<double>& src = m.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    out[i] = bf16_round(static_cast<float>(src[i]));
  }
  return out;
}

// out = a (N x K) times w (K x M), dequantized per column and rounded to
// bf16 — the only matmul the quantized forward uses. Parallelizes over
// output rows on the shared kernel pool like the fp matmul; rows are
// independent, so any split is bit-identical to serial.
FloatMat qmatmul(const FloatMat& a, const QuantizedMatrix& w) {
  MPIDETECT_EXPECTS(a.cols == w.rows);
  const std::size_t N = a.rows;
  const std::size_t K = w.rows;
  const std::size_t M = w.cols;
  kernels::OpTimer timer(kernels::Op::QMatmul, 2 * N * K * M);
  FloatMat out(N, M);
  const kernels::KernelFns& fns = kernels::fns();
  const std::int8_t* wd = w.data.data();
  const float* scale = w.scale.data();
  const bool parallel = N * K * M >= kernels::kParallelMinFlops;
  kernels::parallel_ranges(N, parallel, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* orow = out.row(i);
      fns.qmatmul_row(orow, a.row(i), wd, K, M);
      for (std::size_t j = 0; j < M; ++j) {
        orow[j] = bf16_round(orow[j] * scale[j]);
      }
    }
  });
  return out;
}

float leaky_relu_f(float x, float slope) { return x > 0.0f ? x : slope * x; }

}  // namespace

float bf16_round(float x) {
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  if ((bits & 0x7F800000u) == 0x7F800000u) return x;  // inf / NaN
  // Round-to-nearest-even on the truncated 16 low bits.
  bits += 0x7FFFu + ((bits >> 16) & 1u);
  bits &= 0xFFFF0000u;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

QuantizedMatrix QuantizedMatrix::quantize(const Matrix& w) {
  QuantizedMatrix q;
  q.rows = w.rows();
  q.cols = w.cols();
  q.data.resize(q.rows * q.cols);
  q.scale.resize(q.cols);
  for (std::size_t j = 0; j < q.cols; ++j) {
    double max_abs = 0.0;
    for (std::size_t k = 0; k < q.rows; ++k) {
      max_abs = std::max(max_abs, std::abs(w.at(k, j)));
    }
    // A zero column (an untrained bias-like weight) keeps scale 1 so the
    // division below is defined; every code is 0 either way.
    q.scale[j] =
        max_abs == 0.0 ? 1.0f : static_cast<float>(max_abs / 127.0);
    const double inv = 1.0 / static_cast<double>(q.scale[j]);
    for (std::size_t k = 0; k < q.rows; ++k) {
      const long code = std::lround(w.at(k, j) * inv);
      q.data[k * q.cols + j] = static_cast<std::int8_t>(
          std::clamp(code, long{-127}, long{127}));
    }
  }
  return q;
}

QuantizedGnnModel::QuantizedGnnModel(const GnnModel& model)
    : cfg_(model.config()) {
  const std::vector<const Matrix*> params = model.parameters();
  std::size_t p = 0;
  auto next = [&]() -> const Matrix& {
    MPIDETECT_EXPECTS(p < params.size());
    return *params[p++];
  };
  embedding_ = bf16_row_vector(next());
  layers_.resize(cfg_.layers.size());
  for (Layer& layer : layers_) {
    layer.rel.resize(programl::kNumEdgeTypes);
    for (Rel& rel : layer.rel) {
      rel.w_left = QuantizedMatrix::quantize(next());
      rel.w_right = QuantizedMatrix::quantize(next());
      rel.attn = bf16_row_vector(next());  // (d_out x 1)
    }
    layer.w_self = QuantizedMatrix::quantize(next());
    layer.bias = bf16_row_vector(next());  // (1 x d_out)
  }
  fc1_w_ = QuantizedMatrix::quantize(next());
  fc1_b_ = bf16_row_vector(next());
  fc2_w_ = QuantizedMatrix::quantize(next());
  fc2_b_ = bf16_row_vector(next());
  MPIDETECT_EXPECTS(p == params.size());
}

std::vector<float> QuantizedGnnModel::forward_batch(
    std::span<const std::uint32_t> tokens,
    const std::array<std::vector<programl::Edge>,
                     programl::kNumEdgeTypes>& all_edges,
    std::span<const std::uint32_t> segments, std::size_t n_segments) const {
  MPIDETECT_EXPECTS(!tokens.empty());
  MPIDETECT_EXPECTS(segments.size() == tokens.size());
  const std::size_t n = tokens.size();

  // Token embedding lookup (rows are already bf16-rounded).
  FloatMat x(n, cfg_.embed_dim);
  for (std::size_t i = 0; i < n; ++i) {
    MPIDETECT_EXPECTS(tokens[i] < cfg_.vocab);
    const float* src = embedding_.data() +
                       static_cast<std::size_t>(tokens[i]) * cfg_.embed_dim;
    std::copy(src, src + cfg_.embed_dim, x.row(i));
  }

  for (const Layer& layer : layers_) {
    const std::size_t d = layer.w_self.cols;
    // Self path, then one GATv2 pass per relation accumulated on top.
    // Unlike the fp engine there is no sparse-relation branch: the
    // dense gathered path is always taken (the tolerance contract —
    // not bit-identity — governs this forward, so one shape keeps the
    // path count tested at 1).
    FloatMat out = qmatmul(x, layer.w_self);
    for (std::size_t r = 0; r < programl::kNumEdgeTypes; ++r) {
      const auto& edges = all_edges[r];
      if (edges.empty()) continue;
      const Rel& rel = layer.rel[r];
      const FloatMat h_left = qmatmul(x, rel.w_left);
      const FloatMat h_right = qmatmul(x, rel.w_right);
      const std::size_t ne = edges.size();
      // GATv2 scores a^T LeakyReLU(W_l h_t + W_r h_s), float32.
      std::vector<float> scores(ne);
      for (std::size_t e = 0; e < ne; ++e) {
        const float* hl = h_left.row(edges[e].dst);
        const float* hr = h_right.row(edges[e].src);
        float s = 0.0f;
        for (std::size_t j = 0; j < d; ++j) {
          s += rel.attn[j] * leaky_relu_f(hl[j] + hr[j], 0.2f);
        }
        scores[e] = s;
      }
      // Per-destination softmax (numerically stable, like the fp
      // segment_softmax).
      std::vector<float> node_max(n, -std::numeric_limits<float>::infinity());
      for (std::size_t e = 0; e < ne; ++e) {
        node_max[edges[e].dst] = std::max(node_max[edges[e].dst], scores[e]);
      }
      std::vector<float> node_sum(n, 0.0f);
      for (std::size_t e = 0; e < ne; ++e) {
        scores[e] = std::exp(scores[e] - node_max[edges[e].dst]);
        node_sum[edges[e].dst] += scores[e];
      }
      // Alpha-weighted message aggregation into the layer sum.
      for (std::size_t e = 0; e < ne; ++e) {
        const float alpha = scores[e] / node_sum[edges[e].dst];
        const float* hr = h_right.row(edges[e].src);
        float* o = out.row(edges[e].dst);
        for (std::size_t j = 0; j < d; ++j) o[j] += alpha * hr[j];
      }
    }
    // Bias + ELU, rounded to bf16 — the layer's activation hand-off.
    for (std::size_t i = 0; i < n; ++i) {
      float* o = out.row(i);
      for (std::size_t j = 0; j < d; ++j) {
        const float t = o[j] + layer.bias[j];
        o[j] = bf16_round(t > 0.0f ? t : std::expm1(t));
      }
    }
    x = std::move(out);
  }

  // Per-segment max pooling (first-row seeding like the fp engine).
  const std::size_t dl = x.cols;
  FloatMat pooled(n_segments, dl);
  std::vector<bool> seen(n_segments, false);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s = segments[i];
    MPIDETECT_EXPECTS(s < n_segments);
    const float* src = x.row(i);
    float* dst = pooled.row(s);
    if (!seen[s]) {
      seen[s] = true;
      std::copy(src, src + dl, dst);
      continue;
    }
    for (std::size_t j = 0; j < dl; ++j) dst[j] = std::max(dst[j], src[j]);
  }
  for (std::size_t s = 0; s < n_segments; ++s) MPIDETECT_EXPECTS(seen[s]);

  // FC head: relu(pooled W1 + b1) W2 + b2.
  FloatMat hidden = qmatmul(pooled, fc1_w_);
  for (std::size_t i = 0; i < n_segments; ++i) {
    float* h = hidden.row(i);
    for (std::size_t j = 0; j < hidden.cols; ++j) {
      h[j] = bf16_round(std::max(0.0f, h[j] + fc1_b_[j]));
    }
  }
  FloatMat logits = qmatmul(hidden, fc2_w_);
  for (std::size_t i = 0; i < n_segments; ++i) {
    float* l = logits.row(i);
    for (std::size_t j = 0; j < logits.cols; ++j) l[j] += fc2_b_[j];
  }
  return std::move(logits.data);
}

std::vector<double> QuantizedGnnModel::predict_proba(
    const programl::ProgramGraph& g) const {
  std::vector<std::uint32_t> tokens(g.num_nodes());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = g.nodes[i].token;
  }
  const std::vector<std::uint32_t> segments(tokens.size(), 0);
  const std::vector<float> logits =
      forward_batch(tokens, g.edges, segments, 1);
  // Softmax in double, like the fp predict_proba, so downstream verdict
  // thresholds see the same numeric type.
  std::vector<double> p(logits.size());
  double m = -std::numeric_limits<double>::infinity();
  for (const float l : logits) m = std::max(m, static_cast<double>(l));
  double sum = 0.0;
  for (std::size_t j = 0; j < p.size(); ++j) {
    p[j] = std::exp(static_cast<double>(logits[j]) - m);
    sum += p[j];
  }
  for (double& v : p) v /= sum;
  return p;
}

std::vector<std::vector<double>> QuantizedGnnModel::predict_proba(
    std::span<const programl::ProgramGraph> graphs) const {
  std::vector<std::vector<double>> out;
  out.reserve(graphs.size());
  const std::size_t chunk = std::max<std::size_t>(1, cfg_.infer_batch);
  for (std::size_t b = 0; b < graphs.size(); b += chunk) {
    const std::size_t end = std::min(graphs.size(), b + chunk);
    const programl::GraphBatch gb =
        programl::make_batch(graphs.subspan(b, end - b));
    const std::vector<float> logits =
        forward_batch(gb.tokens, gb.edges, gb.segments, gb.size);
    const std::size_t classes = cfg_.classes;
    for (std::size_t s = 0; s < gb.size; ++s) {
      const float* lrow = logits.data() + s * classes;
      std::vector<double> p(classes);
      double m = -std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < classes; ++j) {
        m = std::max(m, static_cast<double>(lrow[j]));
      }
      double sum = 0.0;
      for (std::size_t j = 0; j < classes; ++j) {
        p[j] = std::exp(static_cast<double>(lrow[j]) - m);
        sum += p[j];
      }
      for (double& v : p) v /= sum;
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<std::vector<double>> predict_proba_guarded(
    const QuantizedGnnModel& q, GnnModel& fp,
    std::span<const programl::ProgramGraph> graphs) {
  std::vector<std::vector<double>> probas = q.predict_proba(graphs);
  for (std::size_t i = 0; i < probas.size(); ++i) {
    std::vector<double>& p = probas[i];
    if (p.size() < 2) continue;
    double top = -std::numeric_limits<double>::infinity();
    double second = top;
    for (const double v : p) {
      if (v > top) {
        second = top;
        top = v;
      } else if (v > second) {
        second = v;
      }
    }
    if (top - second <= 2.0 * kQuantProbaTolerance) {
      p = fp.predict_proba(graphs[i]);
    }
  }
  return probas;
}

}  // namespace mpidetect::ml
