// The SIMD kernel tables behind kernels::fns(). Compiled in every
// build without -mavx2: the x86 kernels carry
// __attribute__((target("avx2"))) so only these functions use VEX
// encodings, and the table is handed out only after
// __builtin_cpu_supports("avx2") says the running CPU has them.
//
// Bit-identity discipline (the contract tests/batched_gnn_test.cpp
// enforces): every kernel vectorizes ONLY across independent output
// elements — lanes are distinct j (axpy/bias_elu/qmatmul), distinct
// output columns (dot4), or distinct edges (gatv2_scores4) — and each
// lane performs exactly the scalar reference's operations in the same
// order, as separate multiply and add instructions. FMA is never used
// (it rounds once where mul+add round twice, which would change bits;
// target("avx2") does not enable it — but target("avx512f") DOES bring
// FMA encodings into scope, which is why CMake compiles this file with
// -ffp-contract=off: without it GCC fuses the AVX-512 intrinsic
// mul+add pairs into vfmadd). All memory accesses are unaligned
// (loadu/storeu): Matrix data lives in std::vector<double> storage with
// 16-byte, not 32-byte, alignment, and callers may hand arbitrarily
// offset row slices (docs/PERFORMANCE.md, "Alignment").
//
// An AVX-512F table exists but is never auto-selected (see simd_table
// below for why); NEON (aarch64): float64x2_t covers the axpy family,
// add1 and qmatmul_row; dot4 / bias_elu_row / gatv2_scores4 fall back
// to scalar (gather-heavy lane packing does not pay at 2-wide).
#include "ml/kernels.hpp"

#include <cmath>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace mpidetect::ml::kernels::detail {

#if defined(__x86_64__) || defined(__i386__)

namespace {

__attribute__((target("avx2"))) void axpy8_avx2(double* o,
                                                const double* const* b,
                                                const double* a,
                                                std::size_t n) {
  const __m256d a0 = _mm256_set1_pd(a[0]), a1 = _mm256_set1_pd(a[1]);
  const __m256d a2 = _mm256_set1_pd(a[2]), a3 = _mm256_set1_pd(a[3]);
  const __m256d a4 = _mm256_set1_pd(a[4]), a5 = _mm256_set1_pd(a[5]);
  const __m256d a6 = _mm256_set1_pd(a[6]), a7 = _mm256_set1_pd(a[7]);
  const double *b0 = b[0], *b1 = b[1], *b2 = b[2], *b3 = b[3];
  const double *b4 = b[4], *b5 = b[5], *b6 = b[6], *b7 = b[7];
  std::size_t j = 0;
  // Two j-vectors in flight: each output element's 8-add chain is a
  // serial dependency (the k-ascending order is the bit-identity
  // contract), so the only instruction-level parallelism available is
  // ACROSS output elements — interleaving two independent chains keeps
  // the FP adder busy while the other chain's add is in latency.
  for (; j + 8 <= n; j += 8) {
    __m256d acc = _mm256_loadu_pd(o + j);
    __m256d acc2 = _mm256_loadu_pd(o + j + 4);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a0, _mm256_loadu_pd(b0 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a0, _mm256_loadu_pd(b0 + j + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a1, _mm256_loadu_pd(b1 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a1, _mm256_loadu_pd(b1 + j + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a2, _mm256_loadu_pd(b2 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a2, _mm256_loadu_pd(b2 + j + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a3, _mm256_loadu_pd(b3 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a3, _mm256_loadu_pd(b3 + j + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a4, _mm256_loadu_pd(b4 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a4, _mm256_loadu_pd(b4 + j + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a5, _mm256_loadu_pd(b5 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a5, _mm256_loadu_pd(b5 + j + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a6, _mm256_loadu_pd(b6 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a6, _mm256_loadu_pd(b6 + j + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a7, _mm256_loadu_pd(b7 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a7, _mm256_loadu_pd(b7 + j + 4)));
    _mm256_storeu_pd(o + j, acc);
    _mm256_storeu_pd(o + j + 4, acc2);
  }
  for (; j + 4 <= n; j += 4) {
    __m256d acc = _mm256_loadu_pd(o + j);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a0, _mm256_loadu_pd(b0 + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a1, _mm256_loadu_pd(b1 + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a2, _mm256_loadu_pd(b2 + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a3, _mm256_loadu_pd(b3 + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a4, _mm256_loadu_pd(b4 + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a5, _mm256_loadu_pd(b5 + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a6, _mm256_loadu_pd(b6 + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a7, _mm256_loadu_pd(b7 + j)));
    _mm256_storeu_pd(o + j, acc);
  }
  for (; j < n; ++j) {
    double acc = o[j];
    acc += a[0] * b0[j];
    acc += a[1] * b1[j];
    acc += a[2] * b2[j];
    acc += a[3] * b3[j];
    acc += a[4] * b4[j];
    acc += a[5] * b5[j];
    acc += a[6] * b6[j];
    acc += a[7] * b7[j];
    o[j] = acc;
  }
}

__attribute__((target("avx2"))) void axpy4_avx2(double* o,
                                                const double* const* b,
                                                const double* a,
                                                std::size_t n) {
  const __m256d a0 = _mm256_set1_pd(a[0]), a1 = _mm256_set1_pd(a[1]);
  const __m256d a2 = _mm256_set1_pd(a[2]), a3 = _mm256_set1_pd(a[3]);
  const double *b0 = b[0], *b1 = b[1], *b2 = b[2], *b3 = b[3];
  std::size_t j = 0;
  // Same two-chain interleave as axpy8 (see the comment there).
  for (; j + 8 <= n; j += 8) {
    __m256d acc = _mm256_loadu_pd(o + j);
    __m256d acc2 = _mm256_loadu_pd(o + j + 4);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a0, _mm256_loadu_pd(b0 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a0, _mm256_loadu_pd(b0 + j + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a1, _mm256_loadu_pd(b1 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a1, _mm256_loadu_pd(b1 + j + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a2, _mm256_loadu_pd(b2 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a2, _mm256_loadu_pd(b2 + j + 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a3, _mm256_loadu_pd(b3 + j)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a3, _mm256_loadu_pd(b3 + j + 4)));
    _mm256_storeu_pd(o + j, acc);
    _mm256_storeu_pd(o + j + 4, acc2);
  }
  for (; j + 4 <= n; j += 4) {
    __m256d acc = _mm256_loadu_pd(o + j);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a0, _mm256_loadu_pd(b0 + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a1, _mm256_loadu_pd(b1 + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a2, _mm256_loadu_pd(b2 + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a3, _mm256_loadu_pd(b3 + j)));
    _mm256_storeu_pd(o + j, acc);
  }
  for (; j < n; ++j) {
    double acc = o[j];
    acc += a[0] * b0[j];
    acc += a[1] * b1[j];
    acc += a[2] * b2[j];
    acc += a[3] * b3[j];
    o[j] = acc;
  }
}

__attribute__((target("avx2"))) void axpy4x2_avx2(double* o0, double* o1,
                                                  const double* const* b,
                                                  const double* a0,
                                                  const double* a1,
                                                  std::size_t n) {
  // Two output rows share each b load: per 8 outputs the kernel issues
  // 8 b loads + 4 row loads + 4 row stores for 16 mul+add pairs, vs
  // axpy8's 16 + 2 + 2 for 16 — ~20% fewer memory ops on a kernel
  // bound by them. The four accumulators are independent chains (ILP),
  // and each row's element still accumulates its own four terms
  // k-ascending, so the result is bit-equal to two axpy4 calls.
  const __m256d p0 = _mm256_set1_pd(a0[0]), p1 = _mm256_set1_pd(a0[1]);
  const __m256d p2 = _mm256_set1_pd(a0[2]), p3 = _mm256_set1_pd(a0[3]);
  const __m256d q0 = _mm256_set1_pd(a1[0]), q1 = _mm256_set1_pd(a1[1]);
  const __m256d q2 = _mm256_set1_pd(a1[2]), q3 = _mm256_set1_pd(a1[3]);
  const double *b0 = b[0], *b1 = b[1], *b2 = b[2], *b3 = b[3];
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256d r00 = _mm256_loadu_pd(o0 + j);
    __m256d r01 = _mm256_loadu_pd(o0 + j + 4);
    __m256d r10 = _mm256_loadu_pd(o1 + j);
    __m256d r11 = _mm256_loadu_pd(o1 + j + 4);
    __m256d v = _mm256_loadu_pd(b0 + j);
    __m256d v2 = _mm256_loadu_pd(b0 + j + 4);
    r00 = _mm256_add_pd(r00, _mm256_mul_pd(p0, v));
    r10 = _mm256_add_pd(r10, _mm256_mul_pd(q0, v));
    r01 = _mm256_add_pd(r01, _mm256_mul_pd(p0, v2));
    r11 = _mm256_add_pd(r11, _mm256_mul_pd(q0, v2));
    v = _mm256_loadu_pd(b1 + j);
    v2 = _mm256_loadu_pd(b1 + j + 4);
    r00 = _mm256_add_pd(r00, _mm256_mul_pd(p1, v));
    r10 = _mm256_add_pd(r10, _mm256_mul_pd(q1, v));
    r01 = _mm256_add_pd(r01, _mm256_mul_pd(p1, v2));
    r11 = _mm256_add_pd(r11, _mm256_mul_pd(q1, v2));
    v = _mm256_loadu_pd(b2 + j);
    v2 = _mm256_loadu_pd(b2 + j + 4);
    r00 = _mm256_add_pd(r00, _mm256_mul_pd(p2, v));
    r10 = _mm256_add_pd(r10, _mm256_mul_pd(q2, v));
    r01 = _mm256_add_pd(r01, _mm256_mul_pd(p2, v2));
    r11 = _mm256_add_pd(r11, _mm256_mul_pd(q2, v2));
    v = _mm256_loadu_pd(b3 + j);
    v2 = _mm256_loadu_pd(b3 + j + 4);
    r00 = _mm256_add_pd(r00, _mm256_mul_pd(p3, v));
    r10 = _mm256_add_pd(r10, _mm256_mul_pd(q3, v));
    r01 = _mm256_add_pd(r01, _mm256_mul_pd(p3, v2));
    r11 = _mm256_add_pd(r11, _mm256_mul_pd(q3, v2));
    _mm256_storeu_pd(o0 + j, r00);
    _mm256_storeu_pd(o0 + j + 4, r01);
    _mm256_storeu_pd(o1 + j, r10);
    _mm256_storeu_pd(o1 + j + 4, r11);
  }
  for (; j + 4 <= n; j += 4) {
    __m256d r0 = _mm256_loadu_pd(o0 + j);
    __m256d r1 = _mm256_loadu_pd(o1 + j);
    __m256d v = _mm256_loadu_pd(b0 + j);
    r0 = _mm256_add_pd(r0, _mm256_mul_pd(p0, v));
    r1 = _mm256_add_pd(r1, _mm256_mul_pd(q0, v));
    v = _mm256_loadu_pd(b1 + j);
    r0 = _mm256_add_pd(r0, _mm256_mul_pd(p1, v));
    r1 = _mm256_add_pd(r1, _mm256_mul_pd(q1, v));
    v = _mm256_loadu_pd(b2 + j);
    r0 = _mm256_add_pd(r0, _mm256_mul_pd(p2, v));
    r1 = _mm256_add_pd(r1, _mm256_mul_pd(q2, v));
    v = _mm256_loadu_pd(b3 + j);
    r0 = _mm256_add_pd(r0, _mm256_mul_pd(p3, v));
    r1 = _mm256_add_pd(r1, _mm256_mul_pd(q3, v));
    _mm256_storeu_pd(o0 + j, r0);
    _mm256_storeu_pd(o1 + j, r1);
  }
  for (; j < n; ++j) {
    double acc = o0[j];
    acc += a0[0] * b0[j];
    acc += a0[1] * b1[j];
    acc += a0[2] * b2[j];
    acc += a0[3] * b3[j];
    o0[j] = acc;
    acc = o1[j];
    acc += a1[0] * b0[j];
    acc += a1[1] * b1[j];
    acc += a1[2] * b2[j];
    acc += a1[3] * b3[j];
    o1[j] = acc;
  }
}

__attribute__((target("avx2"))) void axpy1_avx2(double* o, const double* b,
                                                double a, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d acc = _mm256_add_pd(
        _mm256_loadu_pd(o + j), _mm256_mul_pd(va, _mm256_loadu_pd(b + j)));
    _mm256_storeu_pd(o + j, acc);
  }
  for (; j < n; ++j) o[j] += a * b[j];
}

__attribute__((target("avx2"))) void add1_avx2(double* o, const double* b,
                                               std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        o + j, _mm256_add_pd(_mm256_loadu_pd(o + j), _mm256_loadu_pd(b + j)));
  }
  for (; j < n; ++j) o[j] += b[j];
}

__attribute__((target("avx2"))) void dot4_avx2(const double* a,
                                               const double* const* b,
                                               std::size_t K, double* out) {
  const double *b0 = b[0], *b1 = b[1], *b2 = b[2], *b3 = b[3];
  // Lanes are the four output columns; per k every lane gets its own
  // b-element and the shared a[k]. Accumulation per lane is k-ascending,
  // exactly the scalar chains s0..s3.
  __m256d s = _mm256_setzero_pd();
  for (std::size_t k = 0; k < K; ++k) {
    const __m256d vb = _mm256_set_pd(b3[k], b2[k], b1[k], b0[k]);
    s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_set1_pd(a[k]), vb));
  }
  _mm256_storeu_pd(out, s);
}

__attribute__((target("avx2"))) void bias_elu_row_avx2(double* dst,
                                                       const double* src,
                                                       const double* bias,
                                                       std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d t =
        _mm256_add_pd(_mm256_loadu_pd(src + j), _mm256_loadu_pd(bias + j));
    _mm256_storeu_pd(dst + j, t);
    // Negative (or zero/NaN) lanes take the scalar expm1 — the same
    // libm call the reference makes, so bits match there too.
    const int pos =
        _mm256_movemask_pd(_mm256_cmp_pd(t, zero, _CMP_GT_OQ));
    if (pos != 0xF) {
      for (int l = 0; l < 4; ++l) {
        if (((pos >> l) & 1) == 0) dst[j + l] = std::expm1(dst[j + l]);
      }
    }
  }
  for (; j < n; ++j) {
    const double t = src[j] + bias[j];
    dst[j] = t > 0 ? t : std::expm1(t);
  }
}

__attribute__((target("avx2"))) void gatv2_scores4_avx2(
    const double* const* l, const double* const* r, const double* av,
    double slope, std::size_t d, double* out) {
  const double *l0 = l[0], *l1 = l[1], *l2 = l[2], *l3 = l[3];
  const double *r0 = r[0], *r1 = r[1], *r2 = r[2], *r3 = r[3];
  const __m256d vslope = _mm256_set1_pd(slope);
  const __m256d zero = _mm256_setzero_pd();
  // Lanes are four edges; per k each lane computes the scalar path's
  // t, leaky-relu (exact: the taken branch is the same multiply) and
  // k-ascending accumulation.
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t k = 0; k < d; ++k) {
    const __m256d t =
        _mm256_add_pd(_mm256_set_pd(l3[k], l2[k], l1[k], l0[k]),
                      _mm256_set_pd(r3[k], r2[k], r1[k], r0[k]));
    const __m256d act = _mm256_blendv_pd(_mm256_mul_pd(vslope, t), t,
                                         _mm256_cmp_pd(t, zero, _CMP_GT_OQ));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(act, _mm256_set1_pd(av[k])));
  }
  _mm256_storeu_pd(out, acc);
}

__attribute__((target("avx2"))) void qmatmul_row_avx2(float* o, const float* a,
                                                      const std::int8_t* w,
                                                      std::size_t K,
                                                      std::size_t M) {
  std::size_t j = 0;
  for (; j + 8 <= M; j += 8) {
    const std::int8_t* wj = w + j;
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t k = 0; k < K; ++k) {
      const __m128i bytes = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(wj + k * M));
      const __m256 wf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
      acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k]), wf));
    }
    _mm256_storeu_ps(o + j, acc);
  }
  for (; j < M; ++j) {
    float s = 0.0f;
    for (std::size_t k = 0; k < K; ++k) {
      s += a[k] * static_cast<float>(w[k * M + j]);
    }
    o[j] = s;
  }
}

constexpr KernelFns kAvx2Fns = {
    axpy8_avx2,   axpy4_avx2,        axpy4x2_avx2,       axpy1_avx2,
    add1_avx2,    dot4_avx2,         bias_elu_row_avx2,  gatv2_scores4_avx2,
    qmatmul_row_avx2,
};

// ---- AVX-512F tier ---------------------------------------------------------
//
// Same discipline at twice the width: 8 doubles per vector, separate
// mul/add, unaligned accesses, lanes = independent output elements.
// Only the width-scaling kernels get 512-bit bodies; dot4 /
// gatv2_scores4 / bias_elu_row keep their AVX2 implementations in the
// table (4 outputs / expm1-bound — wider vectors buy nothing there).

__attribute__((target("avx512f"))) void axpy8_avx512(double* o,
                                                     const double* const* b,
                                                     const double* a,
                                                     std::size_t n) {
  const __m512d a0 = _mm512_set1_pd(a[0]), a1 = _mm512_set1_pd(a[1]);
  const __m512d a2 = _mm512_set1_pd(a[2]), a3 = _mm512_set1_pd(a[3]);
  const __m512d a4 = _mm512_set1_pd(a[4]), a5 = _mm512_set1_pd(a[5]);
  const __m512d a6 = _mm512_set1_pd(a[6]), a7 = _mm512_set1_pd(a[7]);
  const double *b0 = b[0], *b1 = b[1], *b2 = b[2], *b3 = b[3];
  const double *b4 = b[4], *b5 = b[5], *b6 = b[6], *b7 = b[7];
  std::size_t j = 0;
  // Two independent 8-wide chains in flight (see axpy8_avx2).
  for (; j + 16 <= n; j += 16) {
    __m512d acc = _mm512_loadu_pd(o + j);
    __m512d acc2 = _mm512_loadu_pd(o + j + 8);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a0, _mm512_loadu_pd(b0 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a0, _mm512_loadu_pd(b0 + j + 8)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a1, _mm512_loadu_pd(b1 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a1, _mm512_loadu_pd(b1 + j + 8)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a2, _mm512_loadu_pd(b2 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a2, _mm512_loadu_pd(b2 + j + 8)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a3, _mm512_loadu_pd(b3 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a3, _mm512_loadu_pd(b3 + j + 8)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a4, _mm512_loadu_pd(b4 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a4, _mm512_loadu_pd(b4 + j + 8)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a5, _mm512_loadu_pd(b5 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a5, _mm512_loadu_pd(b5 + j + 8)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a6, _mm512_loadu_pd(b6 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a6, _mm512_loadu_pd(b6 + j + 8)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a7, _mm512_loadu_pd(b7 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a7, _mm512_loadu_pd(b7 + j + 8)));
    _mm512_storeu_pd(o + j, acc);
    _mm512_storeu_pd(o + j + 8, acc2);
  }
  for (; j + 8 <= n; j += 8) {
    __m512d acc = _mm512_loadu_pd(o + j);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a0, _mm512_loadu_pd(b0 + j)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a1, _mm512_loadu_pd(b1 + j)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a2, _mm512_loadu_pd(b2 + j)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a3, _mm512_loadu_pd(b3 + j)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a4, _mm512_loadu_pd(b4 + j)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a5, _mm512_loadu_pd(b5 + j)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a6, _mm512_loadu_pd(b6 + j)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a7, _mm512_loadu_pd(b7 + j)));
    _mm512_storeu_pd(o + j, acc);
  }
  for (; j < n; ++j) {
    double acc = o[j];
    acc += a[0] * b0[j];
    acc += a[1] * b1[j];
    acc += a[2] * b2[j];
    acc += a[3] * b3[j];
    acc += a[4] * b4[j];
    acc += a[5] * b5[j];
    acc += a[6] * b6[j];
    acc += a[7] * b7[j];
    o[j] = acc;
  }
}

__attribute__((target("avx512f"))) void axpy4_avx512(double* o,
                                                     const double* const* b,
                                                     const double* a,
                                                     std::size_t n) {
  const __m512d a0 = _mm512_set1_pd(a[0]), a1 = _mm512_set1_pd(a[1]);
  const __m512d a2 = _mm512_set1_pd(a[2]), a3 = _mm512_set1_pd(a[3]);
  const double *b0 = b[0], *b1 = b[1], *b2 = b[2], *b3 = b[3];
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m512d acc = _mm512_loadu_pd(o + j);
    __m512d acc2 = _mm512_loadu_pd(o + j + 8);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a0, _mm512_loadu_pd(b0 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a0, _mm512_loadu_pd(b0 + j + 8)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a1, _mm512_loadu_pd(b1 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a1, _mm512_loadu_pd(b1 + j + 8)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a2, _mm512_loadu_pd(b2 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a2, _mm512_loadu_pd(b2 + j + 8)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a3, _mm512_loadu_pd(b3 + j)));
    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(a3, _mm512_loadu_pd(b3 + j + 8)));
    _mm512_storeu_pd(o + j, acc);
    _mm512_storeu_pd(o + j + 8, acc2);
  }
  for (; j + 8 <= n; j += 8) {
    __m512d acc = _mm512_loadu_pd(o + j);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a0, _mm512_loadu_pd(b0 + j)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a1, _mm512_loadu_pd(b1 + j)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a2, _mm512_loadu_pd(b2 + j)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(a3, _mm512_loadu_pd(b3 + j)));
    _mm512_storeu_pd(o + j, acc);
  }
  for (; j < n; ++j) {
    double acc = o[j];
    acc += a[0] * b0[j];
    acc += a[1] * b1[j];
    acc += a[2] * b2[j];
    acc += a[3] * b3[j];
    o[j] = acc;
  }
}

__attribute__((target("avx512f"))) void axpy1_avx512(double* o, const double* b,
                                                     double a, std::size_t n) {
  const __m512d va = _mm512_set1_pd(a);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d acc = _mm512_add_pd(
        _mm512_loadu_pd(o + j), _mm512_mul_pd(va, _mm512_loadu_pd(b + j)));
    _mm512_storeu_pd(o + j, acc);
  }
  for (; j < n; ++j) o[j] += a * b[j];
}

__attribute__((target("avx512f"))) void add1_avx512(double* o, const double* b,
                                                    std::size_t n) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(
        o + j, _mm512_add_pd(_mm512_loadu_pd(o + j), _mm512_loadu_pd(b + j)));
  }
  for (; j < n; ++j) o[j] += b[j];
}

__attribute__((target("avx512f"))) void qmatmul_row_avx512(
    float* o, const float* a, const std::int8_t* w, std::size_t K,
    std::size_t M) {
  std::size_t j = 0;
  for (; j + 16 <= M; j += 16) {
    const std::int8_t* wj = w + j;
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t k = 0; k < K; ++k) {
      const __m128i bytes =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(wj + k * M));
      const __m512 wf = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(bytes));
      acc = _mm512_add_ps(acc, _mm512_mul_ps(_mm512_set1_ps(a[k]), wf));
    }
    _mm512_storeu_ps(o + j, acc);
  }
  for (; j < M; ++j) {
    float s = 0.0f;
    for (std::size_t k = 0; k < K; ++k) {
      s += a[k] * static_cast<float>(w[k * M + j]);
    }
    o[j] = s;
  }
}

// Composed, not fused: this tier is not the default dispatch target
// (see simd_table below), so it keeps the simple form.
void axpy4x2_avx512(double* o0, double* o1, const double* const* b,
                    const double* a0, const double* a1, std::size_t n) {
  axpy4_avx512(o0, b, a0, n);
  axpy4_avx512(o1, b, a1, n);
}

constexpr KernelFns kAvx512Fns = {
    axpy8_avx512, axpy4_avx512,      axpy4x2_avx512,     axpy1_avx512,
    add1_avx512,  dot4_avx2,         bias_elu_row_avx2,  gatv2_scores4_avx2,
    qmatmul_row_avx512,
};

}  // namespace

const KernelFns* simd_table(Isa* isa) {
  // AVX2 is preferred over AVX-512 even where both are supported: the
  // axpy kernels issue two loads per mul+add, so they are bound by load
  // throughput rather than vector width, and 512-bit instructions cost
  // license-based frequency reduction on the server parts that have
  // them (measured: the AVX-512 tier is ~25% slower on the batched GNN
  // inference path here). The AVX-512 table stays reachable through
  // simd_table_for for the bit-identity tests and for callers that
  // want it explicitly.
  if (!__builtin_cpu_supports("avx2")) return nullptr;
  *isa = Isa::Avx2;
  return &kAvx2Fns;
}

const KernelFns* simd_table_for(Isa isa) {
  if (isa == Isa::Avx512 && __builtin_cpu_supports("avx512f")) {
    return &kAvx512Fns;
  }
  if (isa == Isa::Avx2 && __builtin_cpu_supports("avx2")) return &kAvx2Fns;
  return nullptr;
}

#elif defined(__aarch64__)

namespace {

void axpy8_neon(double* o, const double* const* b, const double* a,
                std::size_t n) {
  const float64x2_t a0 = vdupq_n_f64(a[0]), a1 = vdupq_n_f64(a[1]);
  const float64x2_t a2 = vdupq_n_f64(a[2]), a3 = vdupq_n_f64(a[3]);
  const float64x2_t a4 = vdupq_n_f64(a[4]), a5 = vdupq_n_f64(a[5]);
  const float64x2_t a6 = vdupq_n_f64(a[6]), a7 = vdupq_n_f64(a[7]);
  const double *b0 = b[0], *b1 = b[1], *b2 = b[2], *b3 = b[3];
  const double *b4 = b[4], *b5 = b[5], *b6 = b[6], *b7 = b[7];
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    float64x2_t acc = vld1q_f64(o + j);
    acc = vaddq_f64(acc, vmulq_f64(a0, vld1q_f64(b0 + j)));
    acc = vaddq_f64(acc, vmulq_f64(a1, vld1q_f64(b1 + j)));
    acc = vaddq_f64(acc, vmulq_f64(a2, vld1q_f64(b2 + j)));
    acc = vaddq_f64(acc, vmulq_f64(a3, vld1q_f64(b3 + j)));
    acc = vaddq_f64(acc, vmulq_f64(a4, vld1q_f64(b4 + j)));
    acc = vaddq_f64(acc, vmulq_f64(a5, vld1q_f64(b5 + j)));
    acc = vaddq_f64(acc, vmulq_f64(a6, vld1q_f64(b6 + j)));
    acc = vaddq_f64(acc, vmulq_f64(a7, vld1q_f64(b7 + j)));
    vst1q_f64(o + j, acc);
  }
  for (; j < n; ++j) {
    double acc = o[j];
    acc += a[0] * b0[j];
    acc += a[1] * b1[j];
    acc += a[2] * b2[j];
    acc += a[3] * b3[j];
    acc += a[4] * b4[j];
    acc += a[5] * b5[j];
    acc += a[6] * b6[j];
    acc += a[7] * b7[j];
    o[j] = acc;
  }
}

void axpy4_neon(double* o, const double* const* b, const double* a,
                std::size_t n) {
  const float64x2_t a0 = vdupq_n_f64(a[0]), a1 = vdupq_n_f64(a[1]);
  const float64x2_t a2 = vdupq_n_f64(a[2]), a3 = vdupq_n_f64(a[3]);
  const double *b0 = b[0], *b1 = b[1], *b2 = b[2], *b3 = b[3];
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    float64x2_t acc = vld1q_f64(o + j);
    acc = vaddq_f64(acc, vmulq_f64(a0, vld1q_f64(b0 + j)));
    acc = vaddq_f64(acc, vmulq_f64(a1, vld1q_f64(b1 + j)));
    acc = vaddq_f64(acc, vmulq_f64(a2, vld1q_f64(b2 + j)));
    acc = vaddq_f64(acc, vmulq_f64(a3, vld1q_f64(b3 + j)));
    vst1q_f64(o + j, acc);
  }
  for (; j < n; ++j) {
    double acc = o[j];
    acc += a[0] * b0[j];
    acc += a[1] * b1[j];
    acc += a[2] * b2[j];
    acc += a[3] * b3[j];
    o[j] = acc;
  }
}

void axpy1_neon(double* o, const double* b, double a, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    vst1q_f64(o + j,
              vaddq_f64(vld1q_f64(o + j), vmulq_f64(va, vld1q_f64(b + j))));
  }
  for (; j < n; ++j) o[j] += a * b[j];
}

void add1_neon(double* o, const double* b, std::size_t n) {
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    vst1q_f64(o + j, vaddq_f64(vld1q_f64(o + j), vld1q_f64(b + j)));
  }
  for (; j < n; ++j) o[j] += b[j];
}

void dot4_scalar_ref(const double* a, const double* const* b, std::size_t K,
                     double* out) {
  const double *b0 = b[0], *b1 = b[1], *b2 = b[2], *b3 = b[3];
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (std::size_t k = 0; k < K; ++k) {
    const double ak = a[k];
    s0 += ak * b0[k];
    s1 += ak * b1[k];
    s2 += ak * b2[k];
    s3 += ak * b3[k];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

void bias_elu_row_scalar_ref(double* dst, const double* src,
                             const double* bias, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const double t = src[j] + bias[j];
    dst[j] = t > 0 ? t : std::expm1(t);
  }
}

void gatv2_scores4_scalar_ref(const double* const* l, const double* const* r,
                              const double* av, double slope, std::size_t d,
                              double* out) {
  for (int e = 0; e < 4; ++e) {
    const double* le = l[e];
    const double* re = r[e];
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double t = le[k] + re[k];
      const double act = t > 0 ? t : slope * t;
      acc += act * av[k];
    }
    out[e] = acc;
  }
}

void qmatmul_row_neon(float* o, const float* a, const std::int8_t* w,
                      std::size_t K, std::size_t M) {
  std::size_t j = 0;
  // The 8-byte int8 load uses only its low half; bounding the tile at
  // j + 8 keeps the tail bytes inside the weight buffer.
  for (; j + 8 <= M; j += 4) {
    const std::int8_t* wj = w + j;
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (std::size_t k = 0; k < K; ++k) {
      const int8x8_t bytes = vld1_s8(wj + k * M);
      const int32x4_t wi = vmovl_s16(vget_low_s16(vmovl_s8(bytes)));
      acc = vaddq_f32(acc,
                      vmulq_f32(vdupq_n_f32(a[k]), vcvtq_f32_s32(wi)));
    }
    vst1q_f32(o + j, acc);
  }
  for (; j < M; ++j) {
    float s = 0.0f;
    for (std::size_t k = 0; k < K; ++k) {
      s += a[k] * static_cast<float>(w[k * M + j]);
    }
    o[j] = s;
  }
}

void axpy4x2_neon(double* o0, double* o1, const double* const* b,
                  const double* a0, const double* a1, std::size_t n) {
  axpy4_neon(o0, b, a0, n);
  axpy4_neon(o1, b, a1, n);
}

constexpr KernelFns kNeonFns = {
    axpy8_neon, axpy4_neon,              axpy4x2_neon,
    axpy1_neon, add1_neon,               dot4_scalar_ref,
    bias_elu_row_scalar_ref, gatv2_scores4_scalar_ref, qmatmul_row_neon,
};

}  // namespace

const KernelFns* simd_table(Isa* isa) {
  // AdvSIMD is architecturally mandatory on aarch64.
  *isa = Isa::Neon;
  return &kNeonFns;
}

const KernelFns* simd_table_for(Isa isa) {
  return isa == Isa::Neon ? &kNeonFns : nullptr;
}

#else

const KernelFns* simd_table(Isa*) { return nullptr; }

const KernelFns* simd_table_for(Isa) { return nullptr; }

#endif

}  // namespace mpidetect::ml::kernels::detail
