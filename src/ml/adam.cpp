#include "ml/adam.hpp"

#include <cmath>

namespace mpidetect::ml {

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    VarNode& p = *params_[i];
    Matrix& g = p.ensure_grad();
    for (std::size_t k = 0; k < g.size(); ++k) {
      const double grad = g.data()[k];
      double& m = m_[i].data()[k];
      double& v = v_[i].data()[k];
      m = beta1_ * m + (1.0 - beta1_) * grad;
      v = beta2_ * v + (1.0 - beta2_) * grad * grad;
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      p.value.data()[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  zero_grad();
}

void Adam::zero_grad() {
  for (const Var& p : params_) {
    p->ensure_grad().fill(0.0);
  }
}

}  // namespace mpidetect::ml
