// Quantized inference for the serving path: an immutable int8/bf16
// image of a trained GnnModel. Weights are quantized to int8 with one
// symmetric scale per output column (scale = max|W[:,j]| / 127);
// activations are float32 buffers rounded to bfloat16 precision
// (round-to-nearest-even on the top 16 bits) between ops; every matmul
// accumulates in float32 through the dispatched qmatmul kernel
// (ml/kernels.hpp). Attention vectors and biases stay float32 — they
// are O(d) per layer, and int8 attention would dominate the error
// budget for no measurable speed.
//
// Training stays full-precision: this type is built FROM a fitted
// GnnModel and never mutates. The equivalence contract is
// agreement-within-tolerance, not bit-identity — quantized and fp
// probabilities may differ by up to kQuantProbaTolerance
// (docs/PERFORMANCE.md, "Quantized serving inference"), and argmax
// predictions must agree exactly. Agreement is made structural by
// predict_proba_guarded (below), which recomputes borderline verdicts
// in full precision; bench/perf_gnn's record gate and
// tests/batched_gnn_test.cpp enforce it.
// Within the quantized path itself, scalar and SIMD dispatch targets
// are bit-identical: the int8 kernels keep the same per-output
// k-ascending float accumulation order on every target.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/gnn.hpp"

namespace mpidetect::ml {

/// The quantized serving contract's probability tolerance: quantized
/// probabilities stay within this of full precision (enforced by
/// tests/batched_gnn_test.cpp and bench/perf_gnn's record gate).
inline constexpr double kQuantProbaTolerance = 0.05;

/// Rounds a float to bfloat16 precision (round-to-nearest-even),
/// returned as the nearest representable float.
float bf16_round(float x);

/// One weight matrix quantized to int8, row-major, one symmetric scale
/// per column: W[k][j] ~= data[k*cols + j] * scale[j].
struct QuantizedMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int8_t> data;
  std::vector<float> scale;

  static QuantizedMatrix quantize(const Matrix& w);
};

/// \brief The int8/bf16 serving image of a fitted GnnModel.
///
/// predict_proba mirrors the fp batched entry points (chunked by
/// cfg.infer_batch, tape-free) and honors the same kernel thread
/// budget; probabilities come back in double for drop-in use by
/// GnnDetector's verdict mapping.
class QuantizedGnnModel {
 public:
  /// Snapshots `model`'s parameters (which must be fitted weights; the
  /// constructor only reads). The source model is not referenced after
  /// construction.
  explicit QuantizedGnnModel(const GnnModel& model);

  std::vector<double> predict_proba(const programl::ProgramGraph& g) const;

  std::vector<std::vector<double>> predict_proba(
      std::span<const programl::ProgramGraph> graphs) const;

  const GnnConfig& config() const { return cfg_; }

 private:
  struct Rel {
    QuantizedMatrix w_left;
    QuantizedMatrix w_right;
    std::vector<float> attn;  // d_out, float32
  };
  struct Layer {
    std::vector<Rel> rel;  // one per edge relation
    QuantizedMatrix w_self;
    std::vector<float> bias;  // d_out, float32
  };

  /// Logits for one packed batch: n_segments x classes, row-major.
  std::vector<float> forward_batch(
      std::span<const std::uint32_t> tokens,
      const std::array<std::vector<programl::Edge>,
                       programl::kNumEdgeTypes>& edges,
      std::span<const std::uint32_t> segments, std::size_t n_segments) const;

  GnnConfig cfg_;
  std::vector<float> embedding_;  // vocab x embed_dim, bf16-rounded
  std::vector<Layer> layers_;
  QuantizedMatrix fc1_w_;
  std::vector<float> fc1_b_;
  QuantizedMatrix fc2_w_;
  std::vector<float> fc2_b_;
};

/// \brief Quantized batch predict with a full-precision fallback on
/// borderline verdicts.
///
/// Runs the whole batch through `q`, then recomputes in full precision
/// (through `fp`, which must be the model `q` was built from) every
/// graph whose quantized argmax gap — top probability minus runner-up —
/// is at most 2 x kQuantProbaTolerance. If a quantized argmax disagrees
/// with full precision, each of the two contending probabilities is off
/// by at most the tolerance, so the quantized gap cannot exceed twice
/// the tolerance: as long as the tolerance contract holds, every
/// possible disagreement is inside the recomputed set and prediction
/// agreement is structurally 1.0 rather than corpus-dependent. Wide-
/// margin graphs (the overwhelming majority) never touch the fp path,
/// so the quantized speedup survives.
///
/// This is the serving entry point (GnnDetector's quantized run/
/// run_indexed) and what bench/perf_gnn times as infer_quantized — the
/// fallback recomputes are inside the timed region.
std::vector<std::vector<double>> predict_proba_guarded(
    const QuantizedGnnModel& q, GnnModel& fp,
    std::span<const programl::ProgramGraph> graphs);

}  // namespace mpidetect::ml
