// Quickstart: build one MPI program, inspect its IR and ProGraML graph,
// embed it with IR2vec, run it in the simulator, and classify it with a
// registry-built detector trained on the synthetic MBI corpus through
// the unified Detector API.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/detector.hpp"
#include "core/eval_engine.hpp"
#include "datasets/mbi.hpp"
#include "ir/printer.hpp"
#include "ir2vec/encoder.hpp"
#include "mpisim/machine.hpp"
#include "programl/graph.hpp"
#include "progmodel/lower.hpp"

using namespace mpidetect;

namespace {

/// A two-rank program with a classic call-ordering bug: both ranks
/// receive before they send.
progmodel::Program buggy_pingpong() {
  using E = progmodel::Expr;
  using S = progmodel::Stmt;
  using A = progmodel::Arg;
  using mpi::Func;
  constexpr std::int32_t kInt = static_cast<std::int32_t>(mpi::Datatype::Int);

  progmodel::Program p;
  p.name = "buggy_pingpong";
  p.nprocs = 2;
  p.main_body.push_back(S::decl_int("rank"));
  p.main_body.push_back(S::mpi(Func::Init, {}));
  p.main_body.push_back(
      S::mpi(Func::CommRank, {A::val(mpi::kCommWorld), A::addr("rank")}));
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(8)));
  const auto recv = [&](int peer) {
    return S::mpi(Func::Recv,
                  {A::buf("buf"), A::val(8), A::val(kInt), A::val(peer),
                   A::val(0), A::val(mpi::kCommWorld), A::null()});
  };
  const auto send = [&](int peer) {
    return S::mpi(Func::Send, {A::buf("buf"), A::val(8), A::val(kInt),
                               A::val(peer), A::val(0),
                               A::val(mpi::kCommWorld)});
  };
  // Both ranks block in MPI_Recv forever — deadlock.
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               {recv(1), send(1)}, {recv(0), send(0)}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  return p;
}

}  // namespace

int main() {
  const progmodel::Program program = buggy_pingpong();

  // 1. Lower to IR (what clang -O0 would emit for the C source).
  const auto module = progmodel::lower(program);
  std::cout << "--- IR ---------------------------------------------\n"
            << ir::to_string(*module) << "\n";

  // 2. Execute under the simulated MPI runtime.
  mpisim::MachineConfig cfg;
  cfg.nprocs = program.nprocs;
  const auto report = mpisim::run(*module, cfg);
  std::cout << "--- simulation -------------------------------------\n"
            << report.summary() << "\n\n";

  // 3. Represent: ProGraML graph + IR2vec embedding.
  const auto graph = programl::build_graph(*module);
  std::cout << "--- representations --------------------------------\n"
            << "ProGraML graph: " << graph.num_nodes() << " nodes, "
            << graph.num_edges() << " edges\n";
  ir2vec::Vocabulary vocab;
  const auto embedding = ir2vec::encode_concat(*module, vocab);
  std::cout << "IR2vec embedding: " << embedding.size()
            << " dims (symbolic ++ flow-aware)\n\n";

  // 4. Build the IR2vec detector from the registry, train it on a
  //    reduced MBI corpus, and classify the program through run().
  datasets::MbiConfig mbi_cfg;
  mbi_cfg.scale = 0.25;
  const auto mbi = datasets::generate_mbi(mbi_cfg);

  core::DetectorConfig det_cfg;
  det_cfg.ir2vec.use_ga = false;  // keep the quickstart fast
  auto detector = core::DetectorRegistry::global().create("ir2vec", det_cfg);

  core::EvalEngine engine(0, det_cfg.cache);
  engine.fit_full(*detector, mbi);

  datasets::Case own;
  own.name = program.name;
  own.suite = datasets::Suite::Mbi;
  own.mbi_label = mpi::MbiLabel::CallOrdering;
  own.incorrect = true;  // ground truth, not visible to the detector
  own.program = program;

  const auto verdicts = detector->run(std::span(&own, 1));
  const bool predicted_incorrect = verdicts.front().flagged();
  std::cout << "--- verdicts ---------------------------------------\n"
            << "detector " << detector->name() << " ("
            << core::detector_kind_name(detector->kind()) << ") trained on "
            << mbi.size() << " MBI codes\n"
            << "prediction for buggy_pingpong: "
            << (predicted_incorrect ? "INCORRECT (error detected)"
                                    : "correct")
            << "\n"
            << "ground truth: INCORRECT (recv-recv deadlock)\n";
  return predicted_incorrect ? 0 : 1;
}
