// ci_gatekeeper: the integration scenario the paper motivates in §V-D —
// "our method can easily be integrated into an automatic toolchain
// where, at compilation, a light ML-based verification step checks the
// code". This example plays the role of that CI step: it obtains a
// trained IR2vec gate — loading a persisted model bundle when one
// exists, training and saving one otherwise, exactly what a real CI
// job would do between runs — then screens a batch of "incoming
// commits" (freshly generated programs the model has never seen)
// through the batched Detector::run entry point and prints a gate
// decision per commit, comparing against what a dynamic tool run
// (the registry's ITAC clone) would have cost.
//
//   $ ./examples/ci_gatekeeper                      # train in-process
//   $ ./examples/ci_gatekeeper --model gate.mpib    # 1st run trains+saves,
//                                                   # later runs reload
//   (the same bundle also loads in `mpiguard predict --model gate.mpib`)
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <span>

#include "core/detector.hpp"
#include "core/eval_engine.hpp"
#include "datasets/mbi.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace mpidetect;

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;

  std::string model_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0) model_path = argv[i + 1];
  }

  core::DetectorConfig cfg;
  cfg.ir2vec.use_ga = false;
  auto& registry = core::DetectorRegistry::global();
  auto itac = registry.create("itac", cfg);
  core::EvalEngine engine;

  std::unique_ptr<core::Detector> gate;
  if (!model_path.empty() && std::filesystem::exists(model_path)) {
    // Warm start: a previous CI run already paid for training.
    const auto t0 = Clock::now();
    gate = registry.load_bundle(model_path, cfg);
    const auto load_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - t0);
    std::cout << "loaded gate (" << gate->name() << ") from " << model_path
              << " in " << load_ms.count() << " ms\n\n";
  } else {
    // Cold start: train the gate on the MBI corpus (and persist it for
    // the next run when a bundle path was given).
    datasets::MbiConfig train_cfg;
    train_cfg.scale = 0.3;
    const auto train_ds = datasets::generate_mbi(train_cfg);
    gate = registry.create("ir2vec", cfg);
    const auto t0 = Clock::now();
    engine.fit_full(*gate, train_ds);
    const auto train_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - t0);
    std::cout << "trained gate (" << gate->name() << ") on " << train_ds.size()
              << " codes in " << train_ms.count() << " ms";
    if (!model_path.empty()) {
      registry.save_bundle("ir2vec", *gate, model_path);
      std::cout << "; saved to " << model_path
                << " (rerun to measure the warm start)";
    }
    std::cout << "\n\n";
  }

  // A batch of unseen "commits": different seed, mixed correctness.
  datasets::MbiConfig commit_cfg;
  commit_cfg.scale = 0.012;
  commit_cfg.seed = 0xC0117;
  const auto commits = datasets::generate_mbi(commit_cfg);

  Table t({"Commit", "Truth", "ML gate", "ITAC-lite", "Agree"});
  std::size_t ml_correct = 0, itac_correct = 0, both_agree = 0;
  std::chrono::microseconds ml_time{0}, itac_time{0};
  for (const auto& c : commits.cases) {
    // The gate sees each commit as a fresh single-case batch: encode +
    // predict, the static path a compiler hook would take.
    const auto e0 = Clock::now();
    const bool ml_flag = gate->run(std::span(&c, 1)).front().flagged();
    ml_time += std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - e0);

    const auto d0 = Clock::now();
    const auto diag = itac->run(std::span(&c, 1)).front();
    itac_time += std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - d0);
    const bool itac_flag = diag.flagged();

    ml_correct += (ml_flag == c.incorrect);
    itac_correct += (itac_flag == c.incorrect);
    both_agree += (ml_flag == itac_flag);
    t.add_row({c.name.substr(0, 40), c.incorrect ? "bug" : "clean",
               ml_flag ? "BLOCK" : "pass",
               std::string(core::outcome_name(diag.outcome)),
               ml_flag == itac_flag ? "yes" : "no"});
  }
  t.print(std::cout);

  const double n = static_cast<double>(commits.size());
  std::cout << "\nML gate accuracy:   " << ml_correct << "/" << commits.size()
            << " (" << fmt_percent(ml_correct / n) << ", "
            << ml_time.count() / commits.size() << " us/commit, static)\n"
            << "ITAC-lite accuracy: " << itac_correct << "/"
            << commits.size() << " (" << fmt_percent(itac_correct / n)
            << ", " << itac_time.count() / commits.size()
            << " us/commit, requires executing the code)\n"
            << "agreement:          " << fmt_percent(both_agree / n) << "\n";
  return 0;
}
