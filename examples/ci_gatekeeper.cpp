// ci_gatekeeper: the integration scenario the paper motivates in §V-D —
// "our method can easily be integrated into an automatic toolchain
// where, at compilation, a light ML-based verification step checks the
// code". This example plays the role of that CI step: it trains the
// IR2vec detector once, then screens a batch of "incoming commits"
// (freshly generated programs the model has never seen) and prints a
// gate decision per commit, comparing against what a dynamic tool run
// (ITAC-lite) would have cost.
//
//   $ ./examples/ci_gatekeeper
#include <chrono>
#include <iostream>

#include "core/ir2vec_detector.hpp"
#include "datasets/mbi.hpp"
#include "ir2vec/encoder.hpp"
#include "progmodel/lower.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "verify/tool.hpp"

using namespace mpidetect;

int main() {
  using Clock = std::chrono::steady_clock;

  // Train the gate on the MBI corpus.
  datasets::MbiConfig train_cfg;
  train_cfg.scale = 0.3;
  const auto train_ds = datasets::generate_mbi(train_cfg);
  const auto features = core::extract_features(
      train_ds, passes::OptLevel::Os, ir2vec::Normalization::Vector);
  core::Ir2vecOptions opts;
  opts.use_ga = false;
  const auto t0 = Clock::now();
  const auto model = core::train_ir2vec(features.X, features.y_binary, opts);
  const auto train_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - t0);
  std::cout << "trained gate on " << features.size() << " codes in "
            << train_ms.count() << " ms\n\n";

  // A batch of unseen "commits": different seed, mixed correctness.
  datasets::MbiConfig commit_cfg;
  commit_cfg.scale = 0.012;
  commit_cfg.seed = 0xC0117;
  const auto commits = datasets::generate_mbi(commit_cfg);

  auto itac = verify::make_itac_lite();
  ir2vec::Vocabulary vocab;

  Table t({"Commit", "Truth", "ML gate", "ITAC-lite", "Agree"});
  std::size_t ml_correct = 0, itac_correct = 0, both_agree = 0;
  std::chrono::microseconds ml_time{0}, itac_time{0};
  for (const auto& c : commits.cases) {
    const auto e0 = Clock::now();
    auto m = progmodel::lower(c.program);
    passes::run_pipeline(*m, passes::OptLevel::Os);
    auto row = ir2vec::encode_concat(*m, vocab);
    ir2vec::normalize_vector(row, ir2vec::Normalization::Vector);
    const bool ml_flag = model.predict(row) == 1;
    ml_time += std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - e0);

    const auto d0 = Clock::now();
    const auto diag = itac->check(c);
    itac_time += std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - d0);
    const bool itac_flag = diag == verify::Diagnostic::Incorrect;

    ml_correct += (ml_flag == c.incorrect);
    itac_correct += (itac_flag == c.incorrect);
    both_agree += (ml_flag == itac_flag);
    t.add_row({c.name.substr(0, 40), c.incorrect ? "bug" : "clean",
               ml_flag ? "BLOCK" : "pass",
               std::string(verify::diagnostic_name(diag)),
               ml_flag == itac_flag ? "yes" : "no"});
  }
  t.print(std::cout);

  const double n = static_cast<double>(commits.size());
  std::cout << "\nML gate accuracy:   " << ml_correct << "/" << commits.size()
            << " (" << fmt_percent(ml_correct / n) << ", "
            << ml_time.count() / commits.size() << " us/commit, static)\n"
            << "ITAC-lite accuracy: " << itac_correct << "/"
            << commits.size() << " (" << fmt_percent(itac_correct / n)
            << ", " << itac_time.count() / commits.size()
            << " us/commit, requires executing the code)\n"
            << "agreement:          " << fmt_percent(both_agree / n) << "\n";
  return 0;
}
