// simulator_tour: the MPI runtime substrate on its own — builds one
// program per error family, executes it on the simulated multi-rank
// machine, and shows how each bug class manifests (deadlock, finding,
// leak at finalize, race, ...). Useful as a map from benchmark labels
// to observable misbehaviour.
//
//   $ ./examples/simulator_tour
#include <iostream>

#include "datasets/templates.hpp"
#include "mpisim/machine.hpp"
#include "progmodel/lower.hpp"
#include "support/table.hpp"

using namespace mpidetect;

int main() {
  using datasets::Inject;
  struct Tour {
    Inject inject;
    const char* expectation;
  };
  const Tour tour[] = {
      {Inject::None, "clean completion"},
      {Inject::BadCount, "invalid-param finding"},
      {Inject::RecvRecvCycle, "deadlock"},
      {Inject::SwapCollectives, "collective mismatch + deadlock"},
      {Inject::MismatchRoot, "param-mismatch finding"},
      {Inject::MismatchDatatype, "type-mismatch finding"},
      {Inject::WriteBeforeWait, "local-concurrency finding"},
      {Inject::MissingWait, "request leak at finalize"},
      {Inject::WildcardRace, "message-race finding"},
      {Inject::PutOutsideEpoch, "epoch-error finding"},
      {Inject::ConflictingPuts, "global-concurrency finding"},
      {Inject::LeakComm, "resource leak at finalize"},
  };

  Table t({"Injection", "Template", "Outcome", "Findings", "Expected"});
  Rng rng(42);
  for (const Tour& stop : tour) {
    const auto templates = datasets::templates_for(stop.inject);
    const datasets::Template& tpl = *templates.front();
    Rng local = rng.fork();
    datasets::BuildContext ctx;
    ctx.rng = &local;
    ctx.inject = stop.inject;
    ctx.size_class = 0;
    const auto program = tpl.fn(ctx);
    const auto module = progmodel::lower(program);
    mpisim::MachineConfig cfg;
    cfg.nprocs = program.nprocs;
    const auto rep = mpisim::run(*module, cfg);

    std::string findings;
    for (const auto& f : rep.findings) {
      if (!findings.empty()) findings += " ";
      findings += mpisim::finding_kind_name(f.kind);
    }
    if (findings.empty()) findings = "-";
    t.add_row({std::string(datasets::inject_name(stop.inject)),
               std::string(tpl.id),
               std::string(mpisim::outcome_name(rep.outcome)), findings,
               stop.expectation});
  }
  t.print(std::cout);
  std::cout << "\nEvery MBI/MPI-CorrBench error class maps to one of these "
               "manifestations; the dynamic baseline tools (ITAC-lite, "
               "MUST-lite) are policies over exactly these reports.\n";
  return 0;
}
