// cross_suite_transfer: the generalization question of §V-C — does a
// model trained on one benchmark suite detect the *different* error
// vocabulary of the other? Trains on MBI, validates on MPI-CorrBench
// (and the reverse) through EvalEngine::cross, with and without GA
// feature selection, and prints which error classes transfer (the
// per-label breakdown every EvalReport carries).
//
//   $ ./examples/cross_suite_transfer
//   $ ./examples/cross_suite_transfer --cache-dir .mpienc   # embed the two
//     suites once per machine: reruns load the encodings from disk
#include <cstring>
#include <iostream>

#include "core/detector.hpp"
#include "core/eval_engine.hpp"
#include "datasets/corrbench.hpp"
#include "datasets/mbi.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace mpidetect;

namespace {

void per_label_table(const core::EvalReport& report) {
  Table t({"Validation label", "Correctly classified", "Total", "Rate"});
  for (const auto& [label, counts] : report.per_label) {
    t.add_row({label, std::to_string(counts.first),
               std::to_string(counts.second),
               fmt_percent(static_cast<double>(counts.first) /
                           counts.second)});
  }
  t.print(std::cout);
}

void report_line(const char* tag, const core::EvalReport& r) {
  std::cout << tag << r.confusion.to_string() << "  accuracy "
            << fmt_percent(r.confusion.accuracy()) << "  ("
            << fmt_double(r.wall_seconds, 2) << " s)\n";
}

}  // namespace

int main(int argc, char** argv) {
  datasets::MbiConfig mcfg;
  mcfg.scale = 0.3;
  datasets::CorrConfig ccfg;  // CorrBench is small; keep full
  const auto mbi = datasets::generate_mbi(mcfg);
  const auto corr = datasets::generate_corrbench(ccfg);

  core::DetectorConfig no_ga;
  no_ga.ir2vec.use_ga = false;
  core::DetectorConfig with_ga;
  with_ga.ir2vec.use_ga = true;
  with_ga.ir2vec.ga.population = 200;
  with_ga.ir2vec.ga.generations = 10;

  // One engine + cache: both detectors reuse the same suite encodings.
  // With --cache-dir the encodings also persist on disk, so reruns skip
  // the compile+embed front half entirely.
  auto cache = std::make_shared<core::EncodingCache>();
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--cache-dir") == 0) {
      cache->set_spill_dir(argv[i + 1]);
    }
  }
  no_ga.cache = cache;
  with_ga.cache = cache;
  core::EvalEngine engine(0, cache);
  auto& registry = core::DetectorRegistry::global();
  auto plain = registry.create("ir2vec", no_ga);
  auto tuned = registry.create("ir2vec", with_ga);

  std::cout << "=== MBI -> MPI-CorrBench ===\n";
  report_line("without GA: ", engine.cross(*plain, mbi, corr));
  const auto m2c = engine.cross(*tuned, mbi, corr);
  report_line("with GA:    ", m2c);
  std::cout << "\nper-label transfer (with GA):\n";
  per_label_table(m2c);

  std::cout << "\n=== MPI-CorrBench -> MBI ===\n";
  report_line("without GA: ", engine.cross(*plain, corr, mbi));
  report_line("with GA:    ", engine.cross(*tuned, corr, mbi));

  std::cout << "\nNote: the suites label different error vocabularies — "
               "the model transfers *code patterns*, not labels (paper "
               "§V-C).\n";
  if (!cache->spill_dir().empty()) {
    std::cout << "encoding cache: " << cache->disk_hits() << " disk hit(s), "
              << cache->disk_writes() << " write(s) under "
              << cache->spill_dir() << "\n";
  }
  return 0;
}
