// cross_suite_transfer: the generalization question of §V-C — does a
// model trained on one benchmark suite detect the *different* error
// vocabulary of the other? Trains on MBI, validates on MPI-CorrBench
// (and the reverse), with and without GA feature selection, and prints
// which error classes transfer.
//
//   $ ./examples/cross_suite_transfer
#include <iostream>
#include <map>

#include "core/ir2vec_detector.hpp"
#include "datasets/corrbench.hpp"
#include "datasets/mbi.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace mpidetect;

namespace {

void per_label_transfer(const core::TrainedIr2vec& model,
                        const core::FeatureSet& valid) {
  std::map<std::string, std::pair<std::size_t, std::size_t>> by_label;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    auto& [hit, total] = by_label[valid.label_names[valid.y_label[i]]];
    ++total;
    const bool flagged = model.predict(valid.X[i]) == 1;
    hit += (flagged == valid.incorrect[i]);
  }
  Table t({"Validation label", "Correctly classified", "Total", "Rate"});
  for (const auto& [label, counts] : by_label) {
    t.add_row({label, std::to_string(counts.first),
               std::to_string(counts.second),
               fmt_percent(static_cast<double>(counts.first) /
                           counts.second)});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  datasets::MbiConfig mcfg;
  mcfg.scale = 0.3;
  datasets::CorrConfig ccfg;  // CorrBench is small; keep full
  const auto mbi = datasets::generate_mbi(mcfg);
  const auto corr = datasets::generate_corrbench(ccfg);

  const auto fs_mbi = core::extract_features(
      mbi, passes::OptLevel::Os, ir2vec::Normalization::Vector);
  const auto fs_corr = core::extract_features(
      corr, passes::OptLevel::Os, ir2vec::Normalization::Vector);

  core::Ir2vecOptions no_ga;
  no_ga.use_ga = false;
  core::Ir2vecOptions with_ga;
  with_ga.use_ga = true;
  with_ga.ga.population = 200;
  with_ga.ga.generations = 10;

  std::cout << "=== MBI -> MPI-CorrBench ===\n";
  for (const auto* opts : {&no_ga, &with_ga}) {
    const auto c = core::ir2vec_cross(fs_mbi, fs_corr, *opts);
    std::cout << (opts->use_ga ? "with GA:    " : "without GA: ")
              << c.to_string() << "  accuracy " << fmt_percent(c.accuracy())
              << "\n";
  }
  std::cout << "\nper-label transfer (with GA):\n";
  per_label_transfer(core::train_ir2vec(fs_mbi.X, fs_mbi.y_binary, with_ga),
                     fs_corr);

  std::cout << "\n=== MPI-CorrBench -> MBI ===\n";
  for (const auto* opts : {&no_ga, &with_ga}) {
    const auto c = core::ir2vec_cross(fs_corr, fs_mbi, *opts);
    std::cout << (opts->use_ga ? "with GA:    " : "without GA: ")
              << c.to_string() << "  accuracy " << fmt_percent(c.accuracy())
              << "\n";
  }
  std::cout << "\nNote: the suites label different error vocabularies — "
               "the model transfers *code patterns*, not labels (paper "
               "§V-C).\n";
  return 0;
}
