// mpiguardd — detection-as-a-service: load trained model bundles once,
// keep their encodings warm in one shared cache, and serve concurrent
// SUBMIT frames over an AF_UNIX socket with batched admission
// (serve/server.hpp). The CI-gatekeeper pipeline of §V-D without the
// per-invocation model load:
//
//   mpiguard train --detector gnn --dataset mbi:0.1 --out gate.mpib
//   mpiguardd --model gate.mpib --socket /tmp/mpiguard.sock &
//   mpiguard-client --socket /tmp/mpiguard.sock --dataset mbi:0.05@7 --count 8
//
// Wire protocol and byte layout: docs/SERVING.md.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/serialize.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "support/check.hpp"
#include "support/faultpoint.hpp"

using namespace mpidetect;

namespace {

constexpr const char* kUsage = R"(mpiguardd — detection-as-a-service daemon

usage:
  mpiguardd --model FILE [--model FILE ...] --socket PATH [options]

options:
  --model FILE      a trained .mpib bundle to serve (repeatable; SUBMIT
                    frames address bundles by their registry key)
  --socket PATH     AF_UNIX socket path to listen on
  --queue N         admission slots before BUSY backpressure (default 64)
  --batch N         coalescing window: requests per inference batch
                    (default 8)
  --threads N       encode width for first-touch dataset encodes
                    (default: hardware concurrency)
  --cache-dir DIR   encoding-spill directory shared with mpiguard runs
  --max-scale X     largest dataset scale a SUBMIT may request
                    (default 2.0)
  --max-cases N     largest generated corpus held warm (default 8192)
  --quantized       serve GNN bundles through the int8/bf16 quantized
                    image (docs/PERFORMANCE.md): verdicts carry the
                    agreement-within-tolerance contract instead of fp
                    bit-identity; training/eval paths are unaffected

robustness (docs/SERVING.md, "Failure model"):
  --io-timeout MS   per-read/write inactivity deadline once a frame has
                    started; a slow-loris peer is reaped instead of
                    pinning a connection thread (default 10000, 0 = off)
  --idle-timeout MS reap a connection sending no frame for this long
                    (default 0 = never)
  --watchdog-ms MS  count batches running longer than this in STATS
                    (watchdog_trips; default 30000, 0 = off)
  --faults SPEC     arm the fault-injection registry; also read from
                    the MPIGUARD_FAULTS environment variable (the flag
                    wins). Grammar:
                    seed=N,point[:p=F][:nth=N][:count=K][:ms=M],...

The daemon drains every admitted request before exiting, whether
stopped by a SHUTDOWN frame or by SIGINT/SIGTERM. A stale socket file
left by a crashed daemon is probed and replaced automatically; a LIVE
daemon on the same path is never displaced (startup fails instead).

exit status: 0 clean shutdown, 1 usage error, 2 startup/runtime failure.
)";

struct CliError final : std::runtime_error {
  using std::runtime_error::runtime_error;
};

std::uint64_t parse_u64(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    if (s.empty() || s.front() == '-') throw std::invalid_argument(s);
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw CliError(std::string(what) + ": not a non-negative integer: '" + s +
                   "'");
  }
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw CliError(std::string(what) + ": not a number: '" + s + "'");
  }
}

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

int run(int argc, char** argv) {
  serve::ServerOptions opts;
  std::string socket_path;
  std::string fault_spec;
  if (const char* env = std::getenv("MPIGUARD_FAULTS")) fault_spec = env;

  const auto need_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) throw CliError(std::string(flag) + " requires a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view f = argv[i];
    if (f == "--model") opts.model_paths.push_back(need_value(i, "--model"));
    else if (f == "--socket") socket_path = need_value(i, "--socket");
    else if (f == "--queue")
      opts.queue_capacity = parse_u64(need_value(i, "--queue"), "--queue");
    else if (f == "--batch")
      opts.max_batch = parse_u64(need_value(i, "--batch"), "--batch");
    else if (f == "--threads")
      opts.threads = static_cast<unsigned>(
          parse_u64(need_value(i, "--threads"), "--threads"));
    else if (f == "--cache-dir") opts.cache_dir = need_value(i, "--cache-dir");
    else if (f == "--max-scale")
      opts.max_scale = parse_double(need_value(i, "--max-scale"),
                                    "--max-scale");
    else if (f == "--max-cases")
      opts.max_cases = parse_u64(need_value(i, "--max-cases"), "--max-cases");
    else if (f == "--quantized") opts.quantized = true;
    else if (f == "--io-timeout")
      opts.io_timeout_ms = static_cast<int>(
          parse_u64(need_value(i, "--io-timeout"), "--io-timeout"));
    else if (f == "--idle-timeout")
      opts.idle_timeout_ms = static_cast<int>(
          parse_u64(need_value(i, "--idle-timeout"), "--idle-timeout"));
    else if (f == "--watchdog-ms")
      opts.watchdog_ms = static_cast<int>(
          parse_u64(need_value(i, "--watchdog-ms"), "--watchdog-ms"));
    else if (f == "--faults") fault_spec = need_value(i, "--faults");
    else if (f == "--help" || f == "-h") throw CliError("");
    else throw CliError("unknown flag: " + std::string(f));
  }
  if (opts.model_paths.empty()) throw CliError("--model is required");
  if (socket_path.empty()) throw CliError("--socket is required");
  if (opts.queue_capacity < 1) throw CliError("--queue must be >= 1");
  if (opts.max_batch < 1) throw CliError("--batch must be >= 1");
  if (opts.max_scale <= 0.0) throw CliError("--max-scale must be > 0");
  if (opts.max_cases < 1) throw CliError("--max-cases must be >= 1");

  // SIGPIPE must never kill the daemon: every send already uses
  // MSG_NOSIGNAL, but belt-and-braces against any stray write to a
  // closed pipe (e.g. stdout under a dead pager).
  std::signal(SIGPIPE, SIG_IGN);

  if (!fault_spec.empty()) {
    fault::Registry::global().configure(fault_spec);  // throws on bad grammar
    std::cout << "mpiguardd: fault injection ARMED: " << fault_spec
              << std::endl;
  }

  serve::Server server(std::move(opts));
  serve::Listener listener(socket_path);
  server.start();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::cout << "mpiguardd: serving";
  for (const auto& key : server.detector_keys()) std::cout << " " << key;
  std::cout << " on " << listener.path() << " (queue "
            << server.options().queue_capacity << ", batch "
            << server.options().max_batch << ")" << std::endl;

  // Accept loop: 100 ms poll so SIGINT/SIGTERM and wire-level SHUTDOWN
  // (which flips server.stopped()) are both noticed promptly.
  std::vector<std::thread> connections;
  std::size_t next_conn = 0;
  while (!server.stopped() && g_signal == 0) {
    std::unique_ptr<serve::Transport> t = listener.accept(100);
    if (!t) continue;
    const std::string peer = "client#" + std::to_string(next_conn++);
    // Daemon-side transports carry the "serve" fault tag: an armed
    // registry shakes the server's read/write paths, never a client's.
    t->set_fault_tag("serve");
    connections.emplace_back(
        [&server, peer, tr = std::move(t)]() mutable {
          server.serve_connection(*tr, peer);
        });
  }

  server.stop();  // drains; idempotent after a wire SHUTDOWN
  for (auto& th : connections) th.join();

  const serve::Stats s = server.snapshot_stats();
  std::cout << "mpiguardd: stopped after " << s.received << " request(s), "
            << s.served << " served in " << s.batches
            << " batch(es), max coalesced " << s.max_coalesced << ", "
            << s.busy_rejected << " busy, " << s.request_errors
            << " request error(s), " << s.protocol_errors
            << " protocol error(s)" << std::endl;
  if (s.deadline_sheds + s.io_timeouts + s.reaped_connections + s.retries +
          s.watchdog_trips + s.faults_fired >
      0) {
    std::cout << "mpiguardd: robustness: " << s.deadline_sheds
              << " shed, " << s.io_timeouts << " io timeout(s), "
              << s.reaped_connections << " reaped, " << s.retries
              << " retried, " << s.watchdog_trips << " watchdog trip(s), "
              << s.faults_fired << " fault(s) fired" << std::endl;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const CliError& e) {
    if (e.what()[0] != '\0') std::cerr << "mpiguardd: " << e.what() << "\n\n";
    std::cerr << kUsage;
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "mpiguardd: " << e.what() << "\n";
    return 2;
  }
}
