// mpiguard-client — wire-level client for mpiguardd: handshake, submit
// detection requests (pipelined, so the daemon's admission window can
// coalesce them into batches), fetch server counters, or drive a
// graceful shutdown. Exit status is script-friendly: 0 every request
// answered with a verdict, 1 usage error, 2 failure (transport loss,
// protocol damage or an ERROR reply), 3 requests bounced BUSY and
// --retry-busy was not given.
#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "serve/transport.hpp"
#include "serve/wire.hpp"

using namespace mpidetect;

namespace {

constexpr const char* kUsage = R"(mpiguard-client — talk to an mpiguardd daemon

usage:
  mpiguard-client --socket PATH [requests] [--stats] [--shutdown]

requests:
  --dataset SPEC    dataset spec to submit against (e.g. "mbi:0.05@7")
  --count N         submit case indices 0..N-1 of the dataset (default 1
                    when --dataset is given)
  --index I         submit exactly case index I (overrides --count)
  --detector KEY    registry key of the bundle to use (default: the
                    daemon's first loaded model)
  --retry-busy      resubmit requests bounced with BUSY until served
                    (simple backoff) instead of giving up

other:
  --stats           print the daemon's counters
  --shutdown        ask the daemon to drain and stop (awaits BYE)
  --quiet           verdict lines only (no CAPS banner)

exit status: 0 all served, 1 usage, 2 failure, 3 unretried BUSY.
)";

struct CliError final : std::runtime_error {
  using std::runtime_error::runtime_error;
};

std::uint64_t parse_u64(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    if (s.empty() || s.front() == '-') throw std::invalid_argument(s);
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw CliError(std::string(what) + ": not a non-negative integer: '" + s +
                   "'");
  }
}

struct Args {
  std::string socket_path;
  std::string dataset;
  std::string detector;
  std::uint64_t count = 1;
  std::optional<std::uint64_t> index;
  bool retry_busy = false;
  bool stats = false;
  bool do_shutdown = false;
  bool quiet = false;
};

Args parse_args(int argc, char** argv) {
  Args a;
  const auto need_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) throw CliError(std::string(flag) + " requires a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view f = argv[i];
    if (f == "--socket") a.socket_path = need_value(i, "--socket");
    else if (f == "--dataset") a.dataset = need_value(i, "--dataset");
    else if (f == "--detector") a.detector = need_value(i, "--detector");
    else if (f == "--count")
      a.count = parse_u64(need_value(i, "--count"), "--count");
    else if (f == "--index")
      a.index = parse_u64(need_value(i, "--index"), "--index");
    else if (f == "--retry-busy") a.retry_busy = true;
    else if (f == "--stats") a.stats = true;
    else if (f == "--shutdown") a.do_shutdown = true;
    else if (f == "--quiet") a.quiet = true;
    else if (f == "--help" || f == "-h") throw CliError("");
    else throw CliError("unknown flag: " + std::string(f));
  }
  if (a.socket_path.empty()) throw CliError("--socket is required");
  if (a.dataset.empty() && a.index) {
    throw CliError("--index requires --dataset");
  }
  if (a.dataset.empty() && !a.stats && !a.do_shutdown) {
    throw CliError("nothing to do: give --dataset, --stats or --shutdown");
  }
  return a;
}

/// Reads frames until `expected` arrives; anything else is protocol
/// damage worth a hard failure.
template <typename T>
T expect_frame(serve::Transport& t, const char* what) {
  const auto frame = serve::read_frame(t, "mpiguardd");
  if (!frame) {
    throw std::runtime_error(std::string("daemon closed the connection "
                                         "while waiting for ") +
                             what);
  }
  if (const T* f = std::get_if<T>(&*frame)) return *f;
  if (const auto* err = std::get_if<serve::Error>(&*frame)) {
    throw std::runtime_error("daemon error: " + err->message);
  }
  throw std::runtime_error(
      std::string("expected ") + what + ", got " +
      std::string(serve::frame_type_name(serve::frame_type(*frame))));
}

void print_verdict(const serve::Submit& req, const serve::WireVerdict& v) {
  std::cout << req.dataset << "[" << req.index << "] -> "
            << core::outcome_name(
                   static_cast<core::Verdict::Outcome>(v.outcome));
  if (v.predicted_label) std::cout << " label=" << *v.predicted_label;
  if (v.confidence) std::cout << " confidence=" << *v.confidence;
  std::cout << " (batch of " << v.batch_size << ")\n";
}

int run(const Args& a) {
  const auto transport = serve::connect_unix(a.socket_path);
  serve::Transport& t = *transport;

  serve::write_frame(t, serve::Hello{"mpiguard-client"});
  const auto caps = expect_frame<serve::Caps>(t, "CAPS");
  if (!a.quiet) {
    std::cout << "connected: " << caps.server << " (queue "
              << caps.queue_capacity << ", batch " << caps.max_batch
              << "), detectors:";
    for (const auto& d : caps.detectors) std::cout << " " << d;
    std::cout << "\n";
  }

  int status = 0;
  if (!a.dataset.empty()) {
    // Pipeline every SUBMIT before reading a single reply — queued
    // requests are what the daemon's admission window coalesces.
    std::map<std::uint64_t, serve::Submit> pending;
    std::uint64_t next_id = 1;
    const auto submit = [&](std::uint64_t index) {
      serve::Submit req;
      req.request_id = next_id++;
      req.detector = a.detector;
      req.dataset = a.dataset;
      req.index = index;
      serve::write_frame(t, req);
      pending.emplace(req.request_id, req);
    };
    if (a.index) {
      submit(*a.index);
    } else {
      for (std::uint64_t i = 0; i < a.count; ++i) submit(i);
    }

    int backoff_ms = 10;
    while (!pending.empty()) {
      const auto frame = serve::read_frame(t, "mpiguardd");
      if (!frame) {
        throw std::runtime_error("daemon closed the connection with " +
                                 std::to_string(pending.size()) +
                                 " request(s) unanswered");
      }
      if (const auto* v = std::get_if<serve::WireVerdict>(&*frame)) {
        const auto it = pending.find(v->request_id);
        if (it == pending.end()) {
          throw std::runtime_error("verdict for unknown request id " +
                                   std::to_string(v->request_id));
        }
        print_verdict(it->second, *v);
        pending.erase(it);
      } else if (const auto* busy = std::get_if<serve::Busy>(&*frame)) {
        const auto it = pending.find(busy->request_id);
        if (it == pending.end()) {
          throw std::runtime_error("busy for unknown request id " +
                                   std::to_string(busy->request_id));
        }
        if (a.retry_busy) {
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
          backoff_ms = std::min(backoff_ms * 2, 500);
          serve::write_frame(t, it->second);
        } else {
          std::cerr << "mpiguard-client: request " << busy->request_id
                    << " rejected BUSY (queue full; --retry-busy to wait)\n";
          pending.erase(it);
          status = 3;
        }
      } else if (const auto* err = std::get_if<serve::Error>(&*frame)) {
        throw std::runtime_error("request " +
                                 std::to_string(err->request_id) +
                                 " failed: " + err->message);
      } else {
        throw std::runtime_error(
            "unexpected " +
            std::string(serve::frame_type_name(serve::frame_type(*frame))) +
            " frame");
      }
    }
  }

  if (a.stats) {
    serve::write_frame(t, serve::StatsReq{});
    const auto s = expect_frame<serve::Stats>(t, "STATS");
    std::cout << "received " << s.received << ", served " << s.served
              << ", busy " << s.busy_rejected << ", request errors "
              << s.request_errors << ", protocol errors "
              << s.protocol_errors << "\n"
              << "batches " << s.batches << ", max coalesced "
              << s.max_coalesced << ", max queue depth " << s.max_queue_depth
              << "\n"
              << "datasets " << s.datasets_materialized << ", cache disk hits "
              << s.cache_disk_hits << ", disk writes " << s.cache_disk_writes
              << "\n";
  }

  if (a.do_shutdown) {
    serve::write_frame(t, serve::Shutdown{});
    expect_frame<serve::Bye>(t, "BYE");
    if (!a.quiet) std::cout << "daemon drained and stopped\n";
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const CliError& e) {
    if (e.what()[0] != '\0') {
      std::cerr << "mpiguard-client: " << e.what() << "\n\n";
    }
    std::cerr << kUsage;
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "mpiguard-client: " << e.what() << "\n";
    return 2;
  }
}
