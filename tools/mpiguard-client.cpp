// mpiguard-client — wire-level client for mpiguardd: handshake, submit
// detection requests (pipelined, so the daemon's admission window can
// coalesce them into batches), fetch server counters, or drive a
// graceful shutdown. Exit status is script-friendly: 0 every request
// answered with a verdict, 1 usage error, 2 failure (transport loss,
// protocol damage or an ERROR reply), 3 requests bounced BUSY and
// --retry-busy was not given, 4 requests shed EXPIRED by the daemon.
//
// Resilience (docs/SERVING.md, "Failure model"): BUSY rejections and
// failed connects retry under bounded exponential backoff with jitter
// (serve/backoff.hpp); --deadline-ms attaches a shed deadline to each
// request (v2 wire); --reconnect N survives a dropped connection by
// reconnecting and resubmitting everything unanswered — sound because
// requests are idempotent (a verdict is a pure function of spec+index).
#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "serve/backoff.hpp"
#include "serve/transport.hpp"
#include "serve/wire.hpp"

using namespace mpidetect;

namespace {

constexpr const char* kUsage = R"(mpiguard-client — talk to an mpiguardd daemon

usage:
  mpiguard-client --socket PATH [requests] [--stats] [--shutdown]

requests:
  --dataset SPEC    dataset spec to submit against (e.g. "mbi:0.05@7")
  --count N         submit case indices 0..N-1 of the dataset (default 1
                    when --dataset is given)
  --index I         submit exactly case index I (overrides --count)
  --detector KEY    registry key of the bundle to use (default: the
                    daemon's first loaded model)
  --deadline-ms D   per-request shed deadline: the daemon answers
                    EXPIRED instead of a verdict it cannot produce in
                    time (0 = none, the default)
  --retry-busy      resubmit requests bounced with BUSY until served
                    (bounded exponential backoff with jitter)
  --max-retries N   per-request cap on BUSY resubmits (default 64)
  --connect-retries N
                    retry a failed connect N times under the same
                    backoff (daemon still starting up; default 0)
  --reconnect N     on a dropped connection, reconnect and resubmit
                    everything unanswered, up to N times (default 0)
  --backoff-seed S  jitter seed, for reproducible retry schedules

other:
  --stats           print the daemon's counters
  --shutdown        ask the daemon to drain and stop (awaits BYE)
  --quiet           verdict lines only (no CAPS banner)

exit status: 0 all served, 1 usage, 2 failure, 3 unretried BUSY,
             4 deadline expired (EXPIRED reply).
)";

struct CliError final : std::runtime_error {
  using std::runtime_error::runtime_error;
};

std::uint64_t parse_u64(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    if (s.empty() || s.front() == '-') throw std::invalid_argument(s);
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw CliError(std::string(what) + ": not a non-negative integer: '" + s +
                   "'");
  }
}

struct Args {
  std::string socket_path;
  std::string dataset;
  std::string detector;
  std::uint64_t count = 1;
  std::optional<std::uint64_t> index;
  std::uint32_t deadline_ms = 0;
  bool retry_busy = false;
  std::uint64_t max_retries = 64;
  std::uint64_t connect_retries = 0;
  std::uint64_t reconnect = 0;
  std::uint64_t backoff_seed = 1;
  bool stats = false;
  bool do_shutdown = false;
  bool quiet = false;
};

Args parse_args(int argc, char** argv) {
  Args a;
  const auto need_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) throw CliError(std::string(flag) + " requires a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view f = argv[i];
    if (f == "--socket") a.socket_path = need_value(i, "--socket");
    else if (f == "--dataset") a.dataset = need_value(i, "--dataset");
    else if (f == "--detector") a.detector = need_value(i, "--detector");
    else if (f == "--count")
      a.count = parse_u64(need_value(i, "--count"), "--count");
    else if (f == "--index")
      a.index = parse_u64(need_value(i, "--index"), "--index");
    else if (f == "--deadline-ms")
      a.deadline_ms = static_cast<std::uint32_t>(
          parse_u64(need_value(i, "--deadline-ms"), "--deadline-ms"));
    else if (f == "--retry-busy") a.retry_busy = true;
    else if (f == "--max-retries")
      a.max_retries = parse_u64(need_value(i, "--max-retries"), "--max-retries");
    else if (f == "--connect-retries")
      a.connect_retries =
          parse_u64(need_value(i, "--connect-retries"), "--connect-retries");
    else if (f == "--reconnect")
      a.reconnect = parse_u64(need_value(i, "--reconnect"), "--reconnect");
    else if (f == "--backoff-seed")
      a.backoff_seed =
          parse_u64(need_value(i, "--backoff-seed"), "--backoff-seed");
    else if (f == "--stats") a.stats = true;
    else if (f == "--shutdown") a.do_shutdown = true;
    else if (f == "--quiet") a.quiet = true;
    else if (f == "--help" || f == "-h") throw CliError("");
    else throw CliError("unknown flag: " + std::string(f));
  }
  if (a.socket_path.empty()) throw CliError("--socket is required");
  if (a.dataset.empty() && a.index) {
    throw CliError("--index requires --dataset");
  }
  if (a.dataset.empty() && !a.stats && !a.do_shutdown) {
    throw CliError("nothing to do: give --dataset, --stats or --shutdown");
  }
  return a;
}

/// connect_unix under backoff: a daemon that is still binding its
/// socket (or being restarted by a supervisor) is a transient, not a
/// failure, when the caller allows retries.
std::unique_ptr<serve::Transport> connect_with_retry(const Args& a) {
  serve::Backoff backoff(5, 500, a.backoff_seed ^ 0x636f6e6e);  // "conn"
  std::uint64_t attempts = 0;
  while (true) {
    try {
      return serve::connect_unix(a.socket_path);
    } catch (const serve::TransportError&) {
      if (attempts++ >= a.connect_retries) throw;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff.next_delay_ms()));
    }
  }
}

/// Reads frames until `expected` arrives; anything else is protocol
/// damage worth a hard failure.
template <typename T>
T expect_frame(serve::Transport& t, const char* what) {
  const auto frame = serve::read_frame(t, "mpiguardd");
  if (!frame) {
    throw std::runtime_error(std::string("daemon closed the connection "
                                         "while waiting for ") +
                             what);
  }
  if (const T* f = std::get_if<T>(&*frame)) return *f;
  if (const auto* err = std::get_if<serve::Error>(&*frame)) {
    throw std::runtime_error("daemon error: " + err->message);
  }
  throw std::runtime_error(
      std::string("expected ") + what + ", got " +
      std::string(serve::frame_type_name(serve::frame_type(*frame))));
}

void print_verdict(const serve::Submit& req, const serve::WireVerdict& v) {
  std::cout << req.dataset << "[" << req.index << "] -> "
            << core::outcome_name(
                   static_cast<core::Verdict::Outcome>(v.outcome));
  if (v.predicted_label) std::cout << " label=" << *v.predicted_label;
  if (v.confidence) std::cout << " confidence=" << *v.confidence;
  std::cout << " (batch of " << v.batch_size << ")\n";
}

int run(const Args& a) {
  auto transport = connect_with_retry(a);

  const auto handshake = [&](serve::Transport& t) {
    serve::write_frame(t, serve::Hello{"mpiguard-client"});
    return expect_frame<serve::Caps>(t, "CAPS");
  };
  const auto caps = handshake(*transport);
  if (!a.quiet) {
    std::cout << "connected: " << caps.server << " (queue "
              << caps.queue_capacity << ", batch " << caps.max_batch
              << "), detectors:";
    for (const auto& d : caps.detectors) std::cout << " " << d;
    std::cout << "\n";
  }

  int status = 0;
  if (!a.dataset.empty()) {
    // Pipeline every SUBMIT before reading a single reply — queued
    // requests are what the daemon's admission window coalesces.
    std::map<std::uint64_t, serve::Submit> pending;
    std::map<std::uint64_t, std::uint64_t> busy_retries;
    std::uint64_t next_id = 1;
    const auto submit = [&](std::uint64_t index) {
      serve::Submit req;
      req.request_id = next_id++;
      req.detector = a.detector;
      req.dataset = a.dataset;
      req.index = index;
      req.deadline_ms = a.deadline_ms;
      serve::write_frame(*transport, req);
      pending.emplace(req.request_id, req);
    };
    if (a.index) {
      submit(*a.index);
    } else {
      for (std::uint64_t i = 0; i < a.count; ++i) submit(i);
    }

    serve::Backoff busy_backoff(5, 500, a.backoff_seed);
    std::uint64_t reconnects_used = 0;
    while (!pending.empty()) {
      std::optional<serve::Frame> frame;
      try {
        frame = serve::read_frame(*transport, "mpiguardd");
        if (!frame) {
          throw serve::TransportError("daemon closed the connection");
        }
      } catch (const serve::TransportError& e) {
        // The connection is gone with requests unanswered. Requests are
        // idempotent — a verdict is a pure function of (spec, index) —
        // so reconnect-and-resubmit cannot double-count anything.
        if (reconnects_used >= a.reconnect) {
          throw std::runtime_error(std::string(e.what()) + " with " +
                                   std::to_string(pending.size()) +
                                   " request(s) unanswered");
        }
        ++reconnects_used;
        transport = connect_with_retry(a);
        handshake(*transport);
        if (!a.quiet) {
          std::cerr << "mpiguard-client: reconnected (" << reconnects_used
                    << "/" << a.reconnect << "), resubmitting "
                    << pending.size() << " request(s)\n";
        }
        for (const auto& [id, req] : pending) {
          serve::write_frame(*transport, req);
        }
        continue;
      }
      const auto known = [&](std::uint64_t id, const char* what) {
        const auto it = pending.find(id);
        if (it == pending.end()) {
          throw std::runtime_error(std::string(what) +
                                   " for unknown request id " +
                                   std::to_string(id));
        }
        return it;
      };
      if (const auto* v = std::get_if<serve::WireVerdict>(&*frame)) {
        const auto it = known(v->request_id, "verdict");
        print_verdict(it->second, *v);
        pending.erase(it);
      } else if (const auto* busy = std::get_if<serve::Busy>(&*frame)) {
        const auto it = known(busy->request_id, "busy");
        if (a.retry_busy && busy_retries[busy->request_id] < a.max_retries) {
          ++busy_retries[busy->request_id];
          std::this_thread::sleep_for(
              std::chrono::milliseconds(busy_backoff.next_delay_ms()));
          serve::write_frame(*transport, it->second);
        } else if (a.retry_busy) {
          std::cerr << "mpiguard-client: request " << busy->request_id
                    << " still BUSY after " << a.max_retries
                    << " retries; giving up\n";
          pending.erase(it);
          status = 3;
        } else {
          std::cerr << "mpiguard-client: request " << busy->request_id
                    << " rejected BUSY (queue full; --retry-busy to wait)\n";
          pending.erase(it);
          status = 3;
        }
      } else if (const auto* exp = std::get_if<serve::Expired>(&*frame)) {
        const auto it = known(exp->request_id, "expired");
        std::cerr << "mpiguard-client: request " << exp->request_id
                  << " shed EXPIRED (deadline " << a.deadline_ms
                  << " ms passed before it ran)\n";
        pending.erase(it);
        if (status == 0) status = 4;
      } else if (const auto* err = std::get_if<serve::Error>(&*frame)) {
        if (err->request_id == 0) {
          // Connection-level: framing is gone, nothing else will arrive.
          throw std::runtime_error("daemon error: " + err->message);
        }
        const auto it = known(err->request_id, "error");
        std::cerr << "mpiguard-client: request " << err->request_id
                  << " failed: " << err->message << "\n";
        pending.erase(it);
        status = 2;
      } else {
        throw std::runtime_error(
            "unexpected " +
            std::string(serve::frame_type_name(serve::frame_type(*frame))) +
            " frame");
      }
    }
  }

  if (a.stats) {
    serve::write_frame(*transport, serve::StatsReq{});
    const auto s = expect_frame<serve::Stats>(*transport, "STATS");
    std::cout << "received " << s.received << ", served " << s.served
              << ", busy " << s.busy_rejected << ", request errors "
              << s.request_errors << ", protocol errors "
              << s.protocol_errors << "\n"
              << "batches " << s.batches << ", max coalesced "
              << s.max_coalesced << ", max queue depth " << s.max_queue_depth
              << "\n"
              << "datasets " << s.datasets_materialized << ", cache disk hits "
              << s.cache_disk_hits << ", disk writes " << s.cache_disk_writes
              << "\n"
              << "deadline sheds " << s.deadline_sheds << ", io timeouts "
              << s.io_timeouts << ", reaped " << s.reaped_connections
              << ", retries " << s.retries << ", watchdog trips "
              << s.watchdog_trips << ", faults fired " << s.faults_fired
              << "\n";
    for (const auto& c : s.op_counters) {
      if (c.calls == 0) continue;  // stable 9-row table, print live ops only
      std::cout << "op " << c.name << ": calls " << c.calls << ", flops "
                << c.flops << ", ns " << c.ns << "\n";
    }
  }

  if (a.do_shutdown) {
    serve::write_frame(*transport, serve::Shutdown{});
    expect_frame<serve::Bye>(*transport, "BYE");
    if (!a.quiet) std::cout << "daemon drained and stopped\n";
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const CliError& e) {
    if (e.what()[0] != '\0') {
      std::cerr << "mpiguard-client: " << e.what() << "\n\n";
    }
    std::cerr << kUsage;
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "mpiguard-client: " << e.what() << "\n";
    return 2;
  }
}
