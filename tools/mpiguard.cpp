// mpiguard — the command-line front end of the detector stack: train a
// detector on a generated corpus, persist it as a model bundle, reload
// it anywhere, and run the EvalEngine protocols from the shell. The
// §V-D CI-gatekeeper story becomes a pipeline:
//
//   mpiguard train   --detector ir2vec --dataset mbi:0.3 --out gate.mpib
//   mpiguard predict --model gate.mpib --dataset mbi:0.05@7
//
// and with --cache-dir the encoding spill makes every later run on the
// same corpus skip the compile+embed front half entirely (once per
// machine, not once per process).
//
// Subcommands: train | predict | eval | bench | fuzz | corpus | list.
// Run with --help (or see docs/API.md) for the full flag reference.
#include <algorithm>
#include <cstring>
#include <exception>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <optional>
#include <string>
#include <vector>

#include "core/fuzzer.hpp"
#include "core/detector.hpp"
#include "core/eval_engine.hpp"
#include "core/perf_bench.hpp"
#include "corpus/corpus.hpp"
#include "datasets/spec.hpp"
#include "io/serialize.hpp"
#include "support/check.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace mpidetect;

namespace {

constexpr const char* kUsage = R"(mpiguard — train, persist and evaluate MPI error detectors

usage:
  mpiguard train   --detector NAME --dataset SPEC --out FILE [options]
  mpiguard predict --model FILE --dataset SPEC [--limit N] [options]
  mpiguard eval    (--detector NAME | --model FILE)
                   (--dataset SPEC | --corpus DIR [--window N])
                   [--protocol sweep|kfold|cross] [--valid SPEC] [options]
  mpiguard bench   [--detectors A,B,...] --dataset SPEC [options]
  mpiguard bench   --json --dataset SPEC [--json-out FILE] [--reps N]
                   [--warmup N] [--batch N] [--infer-batch N]
  mpiguard fuzz    [--seed S --runs N --schedules K] [--json] [--quick]
                   [--corpus FILE] [--corpus-dir DIR] [--repro TUPLE]
                   [options]
  mpiguard corpus  build  --out DIR (--dataset SPEC | --fuzz N [--seed S])
                          [--shard-mb M]
  mpiguard corpus  info   --dir DIR
  mpiguard corpus  verify --dir DIR
  mpiguard corpus  merge  --out DIR --inputs A,B,... [--shard-mb M]
  mpiguard list

dataset SPEC        mbi | corr | mix, with optional scale and generator
                    seed: "mbi:0.25@7" = MBI at 25% size, seed 7.
                    corr also accepts "corr+header" (keep the mpitest.h
                    preamble, i.e. the Figure 2 size bias).

common options:
  --cache-dir DIR   on-disk encoding cache shared across runs: each
                    corpus is compiled+embedded once per machine
  --threads N       worker pool width (default: hardware concurrency)
  --ga              enable GA feature selection for ir2vec (off by
                    default on the CLI; --ga-pop/--ga-gens to size it)
  --folds N         override k-fold count (eval kfold)
  --multiclass      train/evaluate on per-label classes (ir2vec kfold)
  --quiet           summary lines only (no per-case/per-label tables)

streamed eval (out-of-core .mpcs shards, see docs/CORPUS.md):
  --corpus DIR      evaluate over a sharded corpus directory instead of
                    a generated --dataset: sweep and kfold stream cases
                    window-by-window with bounded memory; kfold assigns
                    folds by hashed case id (binary detectors only)
  --window N        cases materialized per streaming window (default 256)

fuzz options (differential fuzz harness, see docs/TESTING.md):
  --seed S          campaign seed (default 1); a fixed (seed, runs,
                    schedules) triple reproduces the campaign exactly
  --runs N          programs to draw (default 200)
  --schedules K     seeded schedules per program, incl. the
                    deterministic round-robin one (default 4)
  --detectors A,B   registry keys to cross-check (default
                    itac,must,must-sweep,parcoach,mpi-checker)
  --max-steps N     simulator budget per run, total across ranks
  --corpus FILE     stream divergence repro tuples to FILE as they are
                    found ("MPFZ" corpus; no file when none diverge)
  --corpus-dir DIR  distill EVERY drawn case into .mpcs shards under
                    DIR — turns a campaign into a labeled training
                    corpus for `mpiguard eval --corpus`
  --no-shrink       keep divergent tuples as drawn
  --repro TUPLE     re-run one printed seed tuple instead of a campaign
  --quick           CI smoke profile (120 runs x 3 schedules); exit
                    status reflects divergences only, never speed
  --json            emit the machine-readable report
  exit status: 0 = no divergences, 2 = divergences or crashes.

corpus options (sharded .mpcs corpora, see docs/CORPUS.md):
  build             write a corpus: --dataset SPEC streams a generated
                    corpus into shards; --fuzz N distills N fuzz draws
                    (seeded by --seed) without running the simulator
  info              validate and summarize a corpus (per-shard table)
  verify            full integrity pass: header/index/fingerprint checks
                    plus a decode + checksum of every record
  merge             re-shard the union of --inputs corpora into --out
  --out DIR         output directory (build, merge)
  --dir DIR         corpus directory (info, verify)
  --shard-mb M      max shard payload size in MiB (default 64)
  --inputs A,B      comma-separated source directories (merge)

bench --json options (GNN perf harness, see docs/PERFORMANCE.md):
  --json            time GNN encode/train/infer, baseline vs batched
                    engine, and write the BENCH_gnn.json record instead
                    of running the detector-comparison table
  --json-out FILE   output path (default: BENCH_gnn.json)
  --reps N          measured repetitions per phase (default 5)
  --warmup N        discarded warmup repetitions per phase (default 1)
  --batch N         training mini-batch for the batched mode (default 4)
  --infer-batch N   inference micro-batch (default 4)

exit status: 0 success, 1 usage error, 2 runtime failure.
)";

struct CliError final : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Strict numeric parsing: malformed input is a usage error (exit 1
/// with the flag named), never a stray std::invalid_argument (exit 2).
std::uint64_t parse_u64(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size() || s.front() == '-') throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw CliError(std::string(what) + ": not a non-negative integer: '" + s +
                   "'");
  }
}

// ---- argument parsing -------------------------------------------------------

struct Args {
  std::string subcommand;
  std::string detector;
  std::string detectors;  // bench: comma-separated
  std::string dataset_spec;
  std::string valid_spec;
  std::string protocol;
  std::string model_path;
  std::string out_path;
  std::string cache_dir;
  unsigned threads = 0;
  bool use_ga = false;
  std::size_t ga_pop = 300;
  std::size_t ga_gens = 12;
  std::optional<int> folds;
  bool multiclass = false;
  bool quiet = false;
  std::size_t limit = 20;
  bool json = false;
  std::string json_out = "BENCH_gnn.json";
  int reps = 5;
  int warmup = 1;
  std::size_t batch = 4;
  std::size_t infer_batch = 4;
  // fuzz
  std::uint64_t fuzz_seed = 1;
  int fuzz_runs = 200;
  int fuzz_schedules = 4;
  std::optional<std::uint64_t> fuzz_max_steps;
  std::string corpus_path;  // fuzz: MPFZ file; eval: .mpcs directory
  std::string repro_tuple;
  bool no_shrink = false;
  bool quick = false;
  // corpus / streaming
  std::string corpus_action;  // build | info | verify | merge
  std::string corpus_dir;     // fuzz --corpus-dir
  std::string dir;            // corpus info/verify --dir
  std::string inputs;         // corpus merge, comma-separated
  std::optional<int> fuzz_distill;  // corpus build --fuzz N
  std::uint64_t shard_mb = 0;       // 0 = writer default
  std::size_t window = 256;
};

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc < 2) throw CliError("missing subcommand");
  a.subcommand = argv[1];

  int first_flag = 2;
  if (a.subcommand == "corpus" && argc >= 3 && argv[2][0] != '-') {
    a.corpus_action = argv[2];
    first_flag = 3;
  }

  const auto need_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      throw CliError(std::string(flag) + " requires a value");
    }
    return argv[++i];
  };
  for (int i = first_flag; i < argc; ++i) {
    const std::string_view f = argv[i];
    if (f == "--detector") a.detector = need_value(i, "--detector");
    else if (f == "--detectors") a.detectors = need_value(i, "--detectors");
    else if (f == "--dataset") a.dataset_spec = need_value(i, "--dataset");
    else if (f == "--valid") a.valid_spec = need_value(i, "--valid");
    else if (f == "--protocol") a.protocol = need_value(i, "--protocol");
    else if (f == "--model") a.model_path = need_value(i, "--model");
    else if (f == "--out") a.out_path = need_value(i, "--out");
    else if (f == "--cache-dir") a.cache_dir = need_value(i, "--cache-dir");
    else if (f == "--threads")
      a.threads = static_cast<unsigned>(
          parse_u64(need_value(i, "--threads"), "--threads"));
    else if (f == "--ga") a.use_ga = true;
    else if (f == "--no-ga") a.use_ga = false;
    else if (f == "--ga-pop")
      a.ga_pop = parse_u64(need_value(i, "--ga-pop"), "--ga-pop");
    else if (f == "--ga-gens")
      a.ga_gens = parse_u64(need_value(i, "--ga-gens"), "--ga-gens");
    else if (f == "--folds")
      a.folds = static_cast<int>(parse_u64(need_value(i, "--folds"),
                                           "--folds"));
    else if (f == "--multiclass") a.multiclass = true;
    else if (f == "--quiet") a.quiet = true;
    else if (f == "--limit")
      a.limit = parse_u64(need_value(i, "--limit"), "--limit");
    else if (f == "--json") a.json = true;
    else if (f == "--json-out") a.json_out = need_value(i, "--json-out");
    else if (f == "--reps")
      a.reps = static_cast<int>(parse_u64(need_value(i, "--reps"), "--reps"));
    else if (f == "--warmup")
      a.warmup = static_cast<int>(
          parse_u64(need_value(i, "--warmup"), "--warmup"));
    else if (f == "--batch")
      a.batch = parse_u64(need_value(i, "--batch"), "--batch");
    else if (f == "--infer-batch")
      a.infer_batch = parse_u64(need_value(i, "--infer-batch"),
                                "--infer-batch");
    else if (f == "--seed")
      a.fuzz_seed = parse_u64(need_value(i, "--seed"), "--seed");
    else if (f == "--runs")
      a.fuzz_runs = static_cast<int>(
          parse_u64(need_value(i, "--runs"), "--runs"));
    else if (f == "--schedules")
      a.fuzz_schedules = static_cast<int>(
          parse_u64(need_value(i, "--schedules"), "--schedules"));
    else if (f == "--max-steps")
      a.fuzz_max_steps = parse_u64(need_value(i, "--max-steps"),
                                   "--max-steps");
    else if (f == "--corpus") a.corpus_path = need_value(i, "--corpus");
    else if (f == "--corpus-dir") a.corpus_dir = need_value(i, "--corpus-dir");
    else if (f == "--dir") a.dir = need_value(i, "--dir");
    else if (f == "--inputs") a.inputs = need_value(i, "--inputs");
    else if (f == "--fuzz")
      a.fuzz_distill = static_cast<int>(
          parse_u64(need_value(i, "--fuzz"), "--fuzz"));
    else if (f == "--shard-mb")
      a.shard_mb = parse_u64(need_value(i, "--shard-mb"), "--shard-mb");
    else if (f == "--window")
      a.window = parse_u64(need_value(i, "--window"), "--window");
    else if (f == "--repro") a.repro_tuple = need_value(i, "--repro");
    else if (f == "--no-shrink") a.no_shrink = true;
    else if (f == "--quick") a.quick = true;
    else if (f == "--help" || f == "-h") throw CliError("");
    else throw CliError("unknown flag: " + std::string(f));
  }
  return a;
}

// ---- dataset specs ----------------------------------------------------------

/// "name[:scale][@seed]" -> generated corpus via the shared spec
/// grammar (datasets/spec.hpp — the same parser the daemon applies to
/// SUBMIT frames). A malformed spec is a usage error (exit 1), never a
/// stray runtime failure.
datasets::Dataset make_dataset(const std::string& spec) {
  try {
    return datasets::make_dataset(spec);
  } catch (const datasets::SpecError& e) {
    throw CliError(e.what());
  }
}

// ---- shared wiring ----------------------------------------------------------

/// One cache + engine per invocation, mirroring bench::Harness; the
/// spill dir (when given) is what makes separate invocations share
/// encodings.
struct Session {
  std::shared_ptr<core::EncodingCache> cache;
  core::EvalEngine engine;

  explicit Session(const Args& a)
      : cache(std::make_shared<core::EncodingCache>()),
        engine(a.threads, cache) {
    if (!a.cache_dir.empty()) cache->set_spill_dir(a.cache_dir);
  }

  core::DetectorConfig config(const Args& a) const {
    core::DetectorConfig cfg;
    cfg.cache = cache;
    cfg.ir2vec.use_ga = a.use_ga;
    cfg.ir2vec.ga.population = a.ga_pop;
    cfg.ir2vec.ga.generations = a.ga_gens;
    if (a.folds) {
      cfg.ir2vec.folds = *a.folds;
      cfg.gnn.folds = *a.folds;
    }
    return cfg;
  }

  void print_cache_stats() const {
    std::cout << "encoding cache: " << cache->feature_set_count()
              << " feature set(s), " << cache->graph_set_count()
              << " graph set(s) in memory";
    if (!cache->spill_dir().empty()) {
      std::cout << "; disk hits " << cache->disk_hits() << ", disk writes "
                << cache->disk_writes() << " (" << cache->spill_dir() << ")";
    }
    std::cout << "\n";
  }
};

void print_report(const core::EvalReport& r, bool quiet) {
  std::cout << r.detector << " [" << r.protocol << "] " << r.train_dataset;
  if (r.valid_dataset != r.train_dataset) std::cout << " -> " << r.valid_dataset;
  const ml::Confusion& c = r.confusion;
  std::cout << ": " << c.to_string() << "\n"
            << "  recall " << fmt_double(c.recall(), 3) << "  precision "
            << fmt_double(c.precision(), 3) << "  f1 " << fmt_double(c.f1(), 3)
            << "  accuracy " << fmt_double(c.accuracy(), 3) << "  ("
            << r.cases << " cases, " << fmt_double(r.wall_seconds, 2)
            << " s)\n";
  if (quiet) return;
  Table t({"Label", "Correct", "Total", "Rate"});
  for (const auto& [label, counts] : r.per_label) {
    t.add_row({label, std::to_string(counts.first),
               std::to_string(counts.second),
               fmt_percent(static_cast<double>(counts.first) /
                           static_cast<double>(counts.second))});
  }
  t.print(std::cout);
}

// ---- subcommands ------------------------------------------------------------

int cmd_train(const Args& a) {
  if (a.detector.empty()) throw CliError("train: --detector is required");
  if (a.dataset_spec.empty()) throw CliError("train: --dataset is required");
  if (a.out_path.empty()) throw CliError("train: --out is required");

  Session session(a);
  const auto ds = make_dataset(a.dataset_spec);
  auto& registry = core::DetectorRegistry::global();
  auto det = registry.create(a.detector, session.config(a));

  if (det->trainable()) {
    std::cout << "training " << det->name() << " on " << ds.name << " ("
              << ds.size() << " cases)...\n";
    session.engine.fit_full(*det, ds);
  } else {
    std::cout << det->name() << " needs no training (expert tool); bundling "
              << "its configuration only\n";
  }
  registry.save_bundle(a.detector, *det, a.out_path);
  std::cout << "saved model bundle: " << a.out_path << "\n";
  session.print_cache_stats();
  return 0;
}

int cmd_predict(const Args& a) {
  if (a.model_path.empty()) throw CliError("predict: --model is required");
  if (a.dataset_spec.empty()) throw CliError("predict: --dataset is required");

  Session session(a);
  auto det = core::DetectorRegistry::global().load_bundle(a.model_path,
                                                          session.config(a));
  const auto ds = make_dataset(a.dataset_spec);
  const auto report = session.engine.sweep(*det, ds);

  if (!a.quiet) {
    Table t({"Case", "Truth", "Verdict", "Hit"});
    const std::size_t shown = std::min(a.limit, ds.size());
    for (std::size_t i = 0; i < shown; ++i) {
      const auto& v = report.verdicts[i];
      t.add_row({ds.cases[i].name.substr(0, 44),
                 ds.cases[i].incorrect ? "bug" : "clean",
                 std::string(core::outcome_name(v.outcome)),
                 v.conclusive() && v.flagged() == ds.cases[i].incorrect
                     ? "yes"
                     : "NO"});
    }
    t.print(std::cout);
    if (shown < ds.size()) {
      std::cout << "... " << ds.size() - shown
                << " more (raise --limit to see them)\n";
    }
  }
  print_report(report, /*quiet=*/true);
  session.print_cache_stats();
  return 0;
}

/// eval --corpus DIR: the streamed protocols over .mpcs shards. Only
/// sweep and (hash-fold, binary) kfold make sense out of core; cross
/// needs a second corpus and stays in-memory for now.
int cmd_eval_stream(const Args& a) {
  Session session(a);
  auto& registry = core::DetectorRegistry::global();
  auto det = a.model_path.empty()
                 ? registry.create(a.detector, session.config(a))
                 : registry.load_bundle(a.model_path, session.config(a));

  const corpus::CorpusReader src(a.corpus_path);
  std::cout << "corpus " << a.corpus_path << ": " << src.size()
            << " case(s) across " << src.shard_count() << " shard(s)\n";

  std::string protocol = a.protocol;
  if (protocol.empty()) {
    protocol = (!a.model_path.empty() || !det->trainable()) ? "sweep" : "kfold";
  }
  core::StreamOptions sopts;
  sopts.window = std::max<std::size_t>(1, a.window);

  core::EvalReport report;
  if (protocol == "sweep") {
    if (det->trainable() && a.model_path.empty()) {
      throw CliError("eval: a fresh " + std::string(det->name()) +
                     " has no trained state to sweep; pass --model, or use "
                     "--protocol kfold");
    }
    report = session.engine.sweep_stream(*det, src, sopts);
  } else if (protocol == "kfold") {
    if (a.multiclass) {
      throw CliError("eval: --corpus streaming is binary-only (drop "
                     "--multiclass or use --dataset)");
    }
    core::EvalOptions opts = det->eval_defaults();
    if (a.folds) opts.folds = *a.folds;
    report = session.engine.kfold_stream(*det, src, opts, sopts);
  } else {
    throw CliError("eval: protocol '" + protocol +
                   "' is not streamable (use sweep or kfold with --corpus)");
  }
  print_report(report, a.quiet);
  session.print_cache_stats();
  return 0;
}

int cmd_eval(const Args& a) {
  if (a.dataset_spec.empty() && a.corpus_path.empty()) {
    throw CliError("eval: --dataset or --corpus is required");
  }
  if (!a.dataset_spec.empty() && !a.corpus_path.empty()) {
    throw CliError("eval: --dataset and --corpus are mutually exclusive");
  }
  if (a.model_path.empty() == a.detector.empty()) {
    throw CliError("eval: exactly one of --model / --detector is required");
  }
  if (!a.corpus_path.empty()) return cmd_eval_stream(a);

  Session session(a);
  auto& registry = core::DetectorRegistry::global();
  auto det = a.model_path.empty()
                 ? registry.create(a.detector, session.config(a))
                 : registry.load_bundle(a.model_path, session.config(a));
  const auto ds = make_dataset(a.dataset_spec);

  std::string protocol = a.protocol;
  if (protocol.empty()) {
    // Sensible default per detector: a loaded/untrainable detector is
    // swept, a fresh trainable one cross-validates.
    protocol = (!a.model_path.empty() || !det->trainable()) ? "sweep" : "kfold";
  }

  core::EvalReport report;
  if (protocol == "sweep") {
    if (det->trainable() && a.model_path.empty()) {
      throw CliError("eval: a fresh " + std::string(det->name()) +
                     " has no trained state to sweep; pass --model, or use "
                     "--protocol kfold/cross");
    }
    report = session.engine.sweep(*det, ds);
  } else if (protocol == "kfold") {
    core::EvalOptions opts = det->eval_defaults();
    if (a.folds) opts.folds = *a.folds;
    opts.multiclass = a.multiclass;
    report = session.engine.kfold(*det, ds, opts);
  } else if (protocol == "cross") {
    if (a.valid_spec.empty()) {
      throw CliError("eval: --protocol cross requires --valid");
    }
    const auto valid = make_dataset(a.valid_spec);
    report = session.engine.cross(*det, ds, valid);
  } else {
    throw CliError("eval: unknown protocol '" + protocol +
                   "' (expected sweep, kfold or cross)");
  }
  print_report(report, a.quiet);
  session.print_cache_stats();
  return 0;
}

/// `bench --json`: the GNN perf harness (core/perf_bench.hpp) instead
/// of the detector-comparison table — times encode/train/infer in
/// baseline and batched modes and writes the BENCH_gnn.json record.
int cmd_bench_json(const Args& a) {
  if (a.reps < 1) throw CliError("bench --json: --reps must be >= 1");
  if (a.warmup < 0) throw CliError("bench --json: --warmup must be >= 0");
  if (a.batch == 0 || a.infer_batch == 0) {
    throw CliError("bench --json: batch sizes must be >= 1");
  }
  const auto ds = make_dataset(a.dataset_spec);

  core::GnnPerfOptions opts;
  // The reduced bench stack of bench/common.hpp: same shape of results
  // as the paper's 128/64/32, far faster per step.
  opts.cfg.embed_dim = 16;
  opts.cfg.layers = {64, 32, 16};
  opts.cfg.fc_hidden = 16;
  opts.cfg.epochs = 4;
  opts.train_batch = a.batch;
  opts.infer_batch = a.infer_batch;
  opts.warmup = a.warmup;
  opts.reps = a.reps;
  opts.threads = a.threads;

  std::cout << "GNN perf bench on " << ds.name << " (" << ds.size()
            << " cases): reps=" << a.reps << " warmup=" << a.warmup
            << " train_batch=" << a.batch << " infer_batch=" << a.infer_batch
            << "\n";
  const core::GnnPerfReport report = core::run_gnn_perf(ds, opts);
  return core::report_and_write(report, a.json_out, std::cout);
}

int cmd_bench(const Args& a) {
  if (a.dataset_spec.empty()) throw CliError("bench: --dataset is required");
  if (a.json) return cmd_bench_json(a);
  const std::string names =
      a.detectors.empty() ? "itac,must,parcoach,mpi-checker,ir2vec"
                          : a.detectors;

  Session session(a);
  const auto ds = make_dataset(a.dataset_spec);
  auto& registry = core::DetectorRegistry::global();

  Table t({"Detector", "Protocol", "Recall", "Precision", "F1", "Accuracy",
           "Conclusive", "Seconds"});
  for (const auto& name : split(names, ',')) {
    auto det = registry.create(trim(name), session.config(a));
    const auto report = det->trainable() ? session.engine.kfold(*det, ds)
                                         : session.engine.sweep(*det, ds);
    const ml::Confusion& c = report.confusion;
    t.add_row({std::string(det->name()), report.protocol,
               fmt_double(c.recall(), 3), fmt_double(c.precision(), 3),
               fmt_double(c.f1(), 3), fmt_double(c.accuracy(), 3),
               fmt_percent(c.conclusiveness()),
               fmt_double(report.wall_seconds, 2)});
  }
  std::cout << "=== " << ds.name << " (" << ds.size() << " cases) ===\n";
  t.print(std::cout);
  session.print_cache_stats();
  return 0;
}

void print_fuzz_divergences(const core::FuzzReport& report) {
  for (const auto& d : report.divergences) {
    std::cout << "DIVERGENCE [" << core::divergence_kind_name(d.kind) << "] "
              << d.detector << ": " << d.detail << "\n"
              << "  drawn:  " << d.tuple.to_string() << "\n"
              << "  shrunk: " << d.shrunk.to_string();
    if (!d.shrunk.dropped.empty()) {
      std::cout << " (-" << d.shrunk.dropped.size() << " stmts)";
    }
    std::cout << "\n  reproduce: mpiguard fuzz --repro '"
              << d.shrunk.to_string() << "' --schedules "
              << report.config.schedules << "\n";
  }
}

void print_fuzz_coverage(const core::FuzzReport& report, bool quiet) {
  print_fuzz_divergences(report);
  if (!quiet) {
    std::vector<std::string> head{"Injection", "Runs", "Single", "Swept"};
    for (const auto& key : report.config.detectors) head.push_back(key);
    Table t(head);
    for (const auto& [inject, stats] : report.per_inject) {
      std::vector<std::string> row{inject, std::to_string(stats.runs),
                                   std::to_string(stats.flagged_single),
                                   std::to_string(stats.flagged_swept)};
      for (const auto& key : report.config.detectors) {
        const auto it = stats.detector_hits.find(key);
        row.push_back(
            std::to_string(it == stats.detector_hits.end() ? 0 : it->second));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }
  std::cout << report.summary() << "\n";
}

/// `mpiguard fuzz`: the differential fuzz harness (core/fuzzer.hpp).
/// Exit 0 when the campaign is divergence-free, 2 otherwise — CI runs
/// `fuzz --quick` as a smoke step that fails on crashes/divergences but
/// never on machine speed.
int cmd_fuzz(const Args& a) {
  core::FuzzConfig cfg;
  cfg.seed = a.fuzz_seed;
  cfg.runs = a.quick ? 120 : a.fuzz_runs;
  cfg.schedules = a.quick ? 3 : a.fuzz_schedules;
  cfg.shrink = !a.no_shrink;
  cfg.corpus_path = a.corpus_path;
  cfg.corpus_dir = a.corpus_dir;
  if (a.fuzz_max_steps) cfg.max_steps = *a.fuzz_max_steps;
  if (!a.detectors.empty()) {
    cfg.detectors.clear();
    for (const auto& name : split(a.detectors, ',')) {
      cfg.detectors.emplace_back(trim(name));
    }
  }
  if (cfg.runs < 0 || cfg.schedules < 1) {
    throw CliError("fuzz: --runs must be >= 0 and --schedules >= 1");
  }

  core::DifferentialFuzzer fuzzer(cfg);

  if (!a.repro_tuple.empty()) {
    const auto tuple = core::FuzzTuple::parse(a.repro_tuple);
    if (!tuple) {
      throw CliError("fuzz: malformed --repro tuple: '" + a.repro_tuple +
                     "'");
    }
    core::FuzzReport report;
    report.config = cfg;
    fuzzer.check(*tuple, report);
    report.runs = 1;
    const auto swept = fuzzer.sweep(*tuple);
    std::cout << "tuple: " << tuple->to_string() << "\n"
              << "sweep: " << swept.summary() << "\n";
    for (const auto& rep : swept.reports) {
      std::cout << "  seed=" << rep.schedule_seed << ": " << rep.summary()
                << "\n";
    }
    if (a.json) std::cout << report.to_json();
    print_fuzz_divergences(report);
    return report.ok() ? 0 : 2;
  }

  const auto report = fuzzer.run();
  if (a.json) {
    std::cout << report.to_json();
  } else {
    print_fuzz_coverage(report, a.quiet);
  }
  if (!a.corpus_path.empty() && report.divergence_count > 0) {
    std::cout << "repro corpus written: " << a.corpus_path << "\n";
  }
  if (!a.corpus_dir.empty()) {
    std::cout << "distilled corpus written: " << a.corpus_dir << " ("
              << report.distilled_cases << " cases, "
              << report.distilled_shards << " shards)\n";
  }
  return report.ok() ? 0 : 2;
}

// ---- corpus subcommand ------------------------------------------------------

corpus::WriterOptions writer_options(const Args& a) {
  corpus::WriterOptions w;
  if (a.shard_mb > 0) w.max_shard_bytes = a.shard_mb << 20;
  return w;
}

int cmd_corpus_build(const Args& a) {
  if (a.out_path.empty()) throw CliError("corpus build: --out is required");
  if (a.dataset_spec.empty() == !a.fuzz_distill) {
    throw CliError(
        "corpus build: exactly one of --dataset / --fuzz is required");
  }
  corpus::WriteStats stats;
  if (a.fuzz_distill) {
    core::FuzzConfig cfg;
    cfg.seed = a.fuzz_seed;
    const core::DifferentialFuzzer fuzzer(cfg);
    stats = fuzzer.distill(a.out_path, *a.fuzz_distill, writer_options(a));
  } else {
    const auto ds = make_dataset(a.dataset_spec);
    corpus::CorpusWriter w(a.out_path, writer_options(a));
    for (const auto& c : ds.cases) w.add(c);
    stats = w.finish();
  }
  std::cout << "corpus built: " << a.out_path << " (" << stats.cases
            << " cases, " << stats.shards << " shards, " << stats.bytes
            << " bytes)\n";
  return 0;
}

int cmd_corpus_info(const Args& a, bool deep_verify) {
  if (a.dir.empty()) {
    throw CliError(std::string("corpus ") +
                   (deep_verify ? "verify" : "info") + ": --dir is required");
  }
  // Construction already validates headers, geometry, index entries and
  // whole-shard fingerprints; verify additionally decodes every record
  // (per-record checksum + metadata cross-check).
  const corpus::CorpusReader src(a.dir);
  if (deep_verify) {
    std::size_t n = 0;
    src.for_each([&](std::size_t, const datasets::Case&) { ++n; });
    std::cout << "corpus OK: " << a.dir << " (" << n << " cases decoded across "
              << src.shard_count() << " shards)\n";
    return 0;
  }
  Table t({"Shard", "Cases", "Bytes", "Fingerprint"});
  for (const auto& s : src.shards()) {
    std::ostringstream fp;
    fp << std::hex << std::setw(16) << std::setfill('0') << s.fingerprint;
    t.add_row({s.path.filename().string(), std::to_string(s.case_count),
               std::to_string(s.file_bytes), fp.str()});
  }
  t.print(std::cout);
  std::map<std::string, std::size_t> labels;
  std::size_t bugs = 0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    ++labels[src.label_name(i)];
    bugs += src.incorrect(i);
  }
  std::cout << src.size() << " case(s) (" << bugs << " incorrect) across "
            << src.shard_count() << " shard(s)\n";
  if (!a.quiet) {
    Table lt({"Label", "Cases"});
    for (const auto& [label, n] : labels) {
      lt.add_row({label, std::to_string(n)});
    }
    lt.print(std::cout);
  }
  return 0;
}

int cmd_corpus_merge(const Args& a) {
  if (a.out_path.empty()) throw CliError("corpus merge: --out is required");
  if (a.inputs.empty()) throw CliError("corpus merge: --inputs is required");
  corpus::CorpusWriter w(a.out_path, writer_options(a));
  std::uint64_t sources = 0;
  for (const auto& in : split(a.inputs, ',')) {
    const corpus::CorpusReader src(trim(in));
    src.for_each(
        [&](std::size_t, const datasets::Case& c) { w.add(c); });
    ++sources;
  }
  const corpus::WriteStats stats = w.finish();
  std::cout << "merged " << sources << " corpora into " << a.out_path << " ("
            << stats.cases << " cases, " << stats.shards << " shards)\n";
  return 0;
}

int cmd_corpus(const Args& a) {
  if (a.corpus_action == "build") return cmd_corpus_build(a);
  if (a.corpus_action == "info") return cmd_corpus_info(a, false);
  if (a.corpus_action == "verify") return cmd_corpus_info(a, true);
  if (a.corpus_action == "merge") return cmd_corpus_merge(a);
  throw CliError(a.corpus_action.empty()
                     ? "corpus: missing action (build|info|verify|merge)"
                     : "corpus: unknown action '" + a.corpus_action + "'");
}

int cmd_list() {
  Table t({"Registry key", "Display name", "Kind", "Trainable"});
  const auto& registry = core::DetectorRegistry::global();
  for (const auto& name : registry.names()) {
    const auto det = registry.create(name);
    t.add_row({name, std::string(det->name()),
               std::string(core::detector_kind_name(det->kind())),
               det->trainable() ? "yes" : "no"});
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.subcommand == "train") return cmd_train(args);
    if (args.subcommand == "predict") return cmd_predict(args);
    if (args.subcommand == "eval") return cmd_eval(args);
    if (args.subcommand == "bench") return cmd_bench(args);
    if (args.subcommand == "fuzz") return cmd_fuzz(args);
    if (args.subcommand == "corpus") return cmd_corpus(args);
    if (args.subcommand == "list") return cmd_list();
    if (args.subcommand == "--help" || args.subcommand == "-h" ||
        args.subcommand == "help") {
      std::cout << kUsage;
      return 0;
    }
    throw CliError("unknown subcommand: " + args.subcommand);
  } catch (const CliError& e) {
    if (e.what()[0] != '\0') std::cerr << "mpiguard: " << e.what() << "\n\n";
    std::cerr << kUsage;
    return 1;
  } catch (const io::FormatError& e) {
    std::cerr << "mpiguard: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mpiguard: " << e.what() << "\n";
    return 2;
  }
}
