// EncodingCache concurrency stress: the daemon shares ONE cache across
// every connection and the batch worker, so hammer a single instance
// from many threads — same key (single-flight compute), different keys,
// mixed feature/graph traffic, with the disk spill on — and assert the
// documented guarantees: references are stable, each encoding is
// computed exactly once, and the counters (relaxed atomics readable
// without the lock) add up exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "core/encoding_cache.hpp"
#include "datasets/corrbench.hpp"
#include "datasets/mbi.hpp"

namespace mpidetect {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;

  explicit TempDir(const std::string& name) {
    path = fs::temp_directory_path() / ("mpidetect_cache_" + name);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

datasets::Dataset tiny_mbi() {
  datasets::MbiConfig cfg;
  cfg.scale = 0.02;
  cfg.seed = 5;
  return datasets::generate_mbi(cfg);
}

datasets::Dataset tiny_corr() {
  datasets::CorrConfig cfg;
  cfg.scale = 0.05;
  cfg.seed = 5;
  return datasets::generate_corrbench(cfg);
}

constexpr auto kOpt = passes::OptLevel::Os;
constexpr auto kNorm = ir2vec::Normalization::Vector;
constexpr std::uint64_t kSeed = 0x12c0ffee;

TEST(CacheStressTest, ConcurrentSameKeyIsSingleFlightWithStableRefs) {
  const auto ds = tiny_mbi();
  core::EncodingCache cache;

  constexpr int kThreads = 8;
  constexpr int kIters = 16;
  std::vector<const core::FeatureSet*> fs_ptrs(kThreads, nullptr);
  std::vector<const core::GraphSet*> gs_ptrs(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto& fs = cache.features(ds, kOpt, kNorm, kSeed, 1);
        const auto& gs = cache.graphs(ds, kOpt, 1);
        // Every thread, every iteration: the SAME objects.
        if (fs_ptrs[t] == nullptr) fs_ptrs[t] = &fs;
        ASSERT_EQ(fs_ptrs[t], &fs);
        if (gs_ptrs[t] == nullptr) gs_ptrs[t] = &gs;
        ASSERT_EQ(gs_ptrs[t], &gs);
        ASSERT_EQ(fs.size(), ds.size());
        ASSERT_EQ(gs.size(), ds.size());
      }
    });
  }
  for (auto& th : threads) th.join();

  // Single-flight: one entry per kind, not one per thread.
  EXPECT_EQ(cache.feature_set_count(), 1u);
  EXPECT_EQ(cache.graph_set_count(), 1u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(fs_ptrs[t], fs_ptrs[0]);
    EXPECT_EQ(gs_ptrs[t], gs_ptrs[0]);
  }
}

TEST(CacheStressTest, ConcurrentDistinctKeysAllMaterialize) {
  const auto mbi = tiny_mbi();
  const auto corr = tiny_corr();
  core::EncodingCache cache;

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto& ds = (t % 2 == 0) ? mbi : corr;
      for (int i = 0; i < 8; ++i) {
        // Two normalizations of the same dataset are distinct keys too.
        const auto norm = (i % 2 == 0) ? ir2vec::Normalization::Vector
                                       : ir2vec::Normalization::None;
        ASSERT_EQ(cache.features(ds, kOpt, norm, kSeed, 1).size(), ds.size());
        ASSERT_EQ(cache.graphs(ds, kOpt, 1).size(), ds.size());
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.feature_set_count(), 4u);  // 2 datasets x 2 normalizations
  EXPECT_EQ(cache.graph_set_count(), 2u);
}

TEST(CacheStressTest, ConcurrentSpillTrafficCountsExactly) {
  TempDir dir("spill_stress");
  const auto mbi = tiny_mbi();
  const auto corr = tiny_corr();

  {
    // Cold cache: every distinct encoding is computed once and spilled
    // once, no matter how many threads ask.
    core::EncodingCache cache;
    cache.set_spill_dir(dir.path.string());
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        const auto& ds = (t % 2 == 0) ? mbi : corr;
        for (int i = 0; i < 4; ++i) {
          (void)cache.features(ds, kOpt, kNorm, kSeed, 1);
          (void)cache.graphs(ds, kOpt, 1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(cache.disk_hits(), 0u);
    EXPECT_EQ(cache.disk_writes(), 4u);  // 2 datasets x (features + graphs)
  }
  {
    // Warm disk, fresh process (second cache instance): each key is one
    // disk hit, later requests are memory hits, nothing is rewritten.
    core::EncodingCache cache;
    cache.set_spill_dir(dir.path.string());
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        const auto& ds = (t % 2 == 0) ? mbi : corr;
        for (int i = 0; i < 4; ++i) {
          ASSERT_EQ(cache.features(ds, kOpt, kNorm, kSeed, 1).size(),
                    ds.size());
          ASSERT_EQ(cache.graphs(ds, kOpt, 1).size(), ds.size());
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(cache.disk_hits(), 4u);
    EXPECT_EQ(cache.disk_writes(), 0u);
  }
}

TEST(CacheStressTest, CountersReadableWhileComputeHoldsTheLock) {
  // A stats probe (the daemon's STATS frame) must not block behind a
  // compute-on-miss holding the cache mutex: counters are atomics read
  // outside the lock. Run readers concurrently with cold encodes and
  // require they all finish while the lock is busy.
  TempDir dir("counter_probe");
  const auto mbi = tiny_mbi();
  const auto corr = tiny_corr();
  core::EncodingCache cache;
  cache.set_spill_dir(dir.path.string());

  std::atomic<bool> done{false};
  std::atomic<std::size_t> probes{0};
  std::thread prober([&] {
    while (!done.load()) {
      (void)cache.disk_hits();
      (void)cache.disk_writes();
      probes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  (void)cache.features(mbi, kOpt, kNorm, kSeed, 1);
  (void)cache.features(corr, kOpt, kNorm, kSeed, 1);
  (void)cache.graphs(mbi, kOpt, 1);
  done.store(true);
  prober.join();
  EXPECT_GT(probes.load(), 0u);
  EXPECT_EQ(cache.disk_writes(), 3u);
}

}  // namespace
}  // namespace mpidetect
