#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/cfg.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/check.hpp"

namespace mpidetect::ir {
namespace {

// Builds: define i32 @f(i32 a, i32 b) { return a + b; }
std::unique_ptr<Module> make_add_module() {
  auto m = std::make_unique<Module>("add");
  Function* f = m->create_function("f", Type::I32, {Type::I32, Type::I32});
  IRBuilder b(*m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* sum = b.add(f->arg(0), f->arg(1), "sum");
  b.ret(sum);
  return m;
}

// -------------------------------------------------------------- types
TEST(Type, NamesMatchLlvmSpelling) {
  EXPECT_EQ(type_name(Type::I32), "i32");
  EXPECT_EQ(type_name(Type::F64), "double");
  EXPECT_EQ(type_name(Type::Ptr), "ptr");
  EXPECT_EQ(type_name(Type::Void), "void");
}

TEST(Type, Sizes) {
  EXPECT_EQ(type_size(Type::I1), 1u);
  EXPECT_EQ(type_size(Type::I32), 4u);
  EXPECT_EQ(type_size(Type::I64), 8u);
  EXPECT_EQ(type_size(Type::F64), 8u);
  EXPECT_EQ(type_size(Type::Ptr), 8u);
}

TEST(Type, VoidHasNoSize) {
  EXPECT_THROW(type_size(Type::Void), ContractViolation);
}

TEST(Type, Predicates) {
  EXPECT_TRUE(is_integer(Type::I1));
  EXPECT_TRUE(is_integer(Type::I64));
  EXPECT_FALSE(is_integer(Type::F64));
  EXPECT_TRUE(is_float(Type::F64));
  EXPECT_FALSE(is_first_class(Type::Void));
}

// ------------------------------------------------------------- module
TEST(Module, ConstantsAreInterned) {
  Module m("t");
  EXPECT_EQ(m.get_i32(5), m.get_i32(5));
  EXPECT_NE(m.get_i32(5), m.get_i32(6));
  EXPECT_NE(m.get_i32(5), static_cast<Value*>(m.get_i64(5)));
  EXPECT_EQ(m.get_f64(1.5), m.get_f64(1.5));
}

TEST(Module, ValueIdsAreUnique) {
  auto m = make_add_module();
  const Function* f = m->find_function("f");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->arg(0)->id(), f->arg(1)->id());
}

TEST(Module, GetOrDeclareIsIdempotent) {
  Module m("t");
  Function* a = m.get_or_declare("MPI_Barrier", Type::I32, {Type::I32});
  Function* b = m.get_or_declare("MPI_Barrier", Type::I32, {Type::I32});
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a->is_declaration());
}

TEST(Module, GetOrDeclareSignatureMismatchThrows) {
  Module m("t");
  m.get_or_declare("g", Type::I32, {Type::I32});
  EXPECT_THROW(m.get_or_declare("g", Type::Void, {Type::I32}),
               ContractViolation);
}

TEST(Module, DuplicateDefinitionRejected) {
  Module m("t");
  m.create_function("f", Type::Void, {});
  EXPECT_THROW(m.create_function("f", Type::Void, {}), ContractViolation);
}

TEST(Module, InstructionCountSums) {
  auto m = make_add_module();
  EXPECT_EQ(m->instruction_count(), 2u);  // add + ret
}

// ------------------------------------------------------------- builder
TEST(Builder, BinopTypeMismatchRejected) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {Type::I32, Type::I64});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  EXPECT_THROW(b.add(f->arg(0), f->arg(1)), ContractViolation);
}

TEST(Builder, FloatOpOnIntRejected) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {Type::I32, Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  EXPECT_THROW(b.fadd(f->arg(0), f->arg(1)), ContractViolation);
}

TEST(Builder, CallArityChecked) {
  Module m("t");
  Function* callee = m.get_or_declare("MPI_Send", Type::I32,
                                      {Type::Ptr, Type::I32});
  Function* f = m.create_function("f", Type::Void, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  EXPECT_THROW(b.call(callee, {m.get_i32(0)}), ContractViolation);
}

TEST(Builder, CallArgTypeChecked) {
  Module m("t");
  Function* callee = m.get_or_declare("g", Type::Void, {Type::I32});
  Function* f = m.create_function("f", Type::Void, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  EXPECT_THROW(b.call(callee, {m.get_i64(0)}), ContractViolation);
}

TEST(Builder, VarargsAllowsExtraArguments) {
  Module m("t");
  Function* callee = m.get_or_declare("printf", Type::I32, {Type::Ptr}, true);
  Function* f = m.create_function("f", Type::Void, {Type::Ptr});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  EXPECT_NO_THROW(b.call(callee, {f->arg(0), m.get_i32(1), m.get_i32(2)}));
}

TEST(Builder, AllocaLoadStoreRoundTripTypes) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* slot = b.alloca_(Type::F64, 4, "buf");
  EXPECT_EQ(slot->type(), Type::Ptr);
  EXPECT_EQ(slot->alloc_type(), Type::F64);
  Instruction* ld = b.load(Type::F64, slot);
  EXPECT_EQ(ld->type(), Type::F64);
  EXPECT_NO_THROW(b.store(ld, slot));
  EXPECT_THROW(b.load(Type::Void, slot), ContractViolation);
}

TEST(Builder, CondBrRequiresBoolCondition) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {Type::I32});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* t = f->create_block("t");
  b.set_insert_point(e);
  EXPECT_THROW(b.cond_br(f->arg(0), t, t), ContractViolation);
}

TEST(Builder, PhiIncomingTypeChecked) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  b.set_insert_point(e);
  Instruction* p = b.phi(Type::I32);
  EXPECT_THROW(IRBuilder::add_incoming(p, m.get_i64(0), e),
               ContractViolation);
  EXPECT_NO_THROW(IRBuilder::add_incoming(p, m.get_i32(0), e));
}

// -------------------------------------------------------------- blocks
TEST(BasicBlock, TerminatorDetection) {
  auto m = make_add_module();
  const Function* f = m->find_function("f");
  const BasicBlock* e = f->entry();
  ASSERT_NE(e->terminator(), nullptr);
  EXPECT_EQ(e->terminator()->opcode(), Opcode::Ret);
}

TEST(BasicBlock, SuccessorsOfCondBr) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {Type::I1});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* t = f->create_block("then");
  BasicBlock* x = f->create_block("exit");
  b.set_insert_point(e);
  b.cond_br(f->arg(0), t, x);
  b.set_insert_point(t);
  b.br(x);
  b.set_insert_point(x);
  b.ret_void();
  const auto succs = e->successors();
  ASSERT_EQ(succs.size(), 2u);
  EXPECT_EQ(succs[0], t);
  EXPECT_EQ(succs[1], x);
  EXPECT_TRUE(x->successors().empty());
}

TEST(BasicBlock, TakeFrontBackPreserveOrder) {
  auto m = make_add_module();
  Function* f = m->find_function("f");
  BasicBlock* e = f->entry();
  auto front = e->take_front();
  EXPECT_EQ(front->opcode(), Opcode::Add);
  auto back = e->take_back();
  EXPECT_EQ(back->opcode(), Opcode::Ret);
  EXPECT_TRUE(e->empty());
}

// ----------------------------------------------------------------- cfg
TEST(Cfg, RpoStartsAtEntryAndCoversReachable) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {Type::I1});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* t = f->create_block("then");
  BasicBlock* x = f->create_block("exit");
  BasicBlock* dead = f->create_block("dead");
  b.set_insert_point(e);
  b.cond_br(f->arg(0), t, x);
  b.set_insert_point(t);
  b.br(x);
  b.set_insert_point(x);
  b.ret_void();
  b.set_insert_point(dead);
  b.ret_void();

  const auto rpo = reverse_post_order(*f);
  ASSERT_EQ(rpo.size(), 3u);
  EXPECT_EQ(rpo.front(), e);
  EXPECT_FALSE(is_reachable(*f, dead));
  EXPECT_TRUE(is_reachable(*f, x));
}

TEST(Cfg, PredecessorMap) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {Type::I1});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* t = f->create_block("then");
  BasicBlock* x = f->create_block("exit");
  b.set_insert_point(e);
  b.cond_br(f->arg(0), t, x);
  b.set_insert_point(t);
  b.br(x);
  b.set_insert_point(x);
  b.ret_void();

  const auto preds = predecessor_map(*f);
  EXPECT_TRUE(preds.at(e).empty());
  ASSERT_EQ(preds.at(x).size(), 2u);
}

// -------------------------------------------------------------- printer
TEST(Printer, ContainsSignatureAndBody) {
  auto m = make_add_module();
  const std::string text = to_string(*m);
  EXPECT_NE(text.find("define i32 @f(i32"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(Printer, DeclarationPrintedAsDeclare) {
  Module m("t");
  m.get_or_declare("MPI_Finalize", Type::I32, {});
  EXPECT_NE(to_string(m).find("declare i32 @MPI_Finalize()"),
            std::string::npos);
}

TEST(Printer, ConstantOperandSpelling) {
  Module m("t");
  EXPECT_EQ(operand_name(*m.get_i32(7)), "i32 7");
  EXPECT_EQ(operand_name(*m.get_bool(true)), "i1 1");
}

// ------------------------------------------------------------- verifier
TEST(Verifier, AcceptsWellFormedModule) {
  auto m = make_add_module();
  EXPECT_TRUE(verify(*m).empty());
  EXPECT_NO_THROW(verify_or_throw(*m));
}

TEST(Verifier, RejectsMissingTerminator) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {Type::I32, Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  b.add(f->arg(0), f->arg(1));
  const auto diags = verify(m);
  ASSERT_FALSE(diags.empty());
  EXPECT_NE(diags.front().find("terminator"), std::string::npos);
  EXPECT_THROW(verify_or_throw(m), ContractViolation);
}

TEST(Verifier, RejectsEmptyBlock) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  b.ret_void();
  f->create_block("empty");
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsCrossFunctionOperand) {
  Module m("t");
  Function* g = m.create_function("g", Type::I32, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(g->create_block("entry"));
  Instruction* v = b.add(g->arg(0), m.get_i32(1));
  b.ret(v);

  Function* f = m.create_function("f", Type::I32, {});
  b.set_insert_point(f->create_block("entry"));
  // Manually smuggle g's instruction in as an operand of f's ret.
  Instruction* r = b.ret(m.get_i32(0));
  r->set_operand(0, v);
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsRetTypeMismatch) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* r = b.ret(m.get_i32(0));
  r->set_operand(0, m.get_i64(0));
  EXPECT_FALSE(verify(m).empty());
}

}  // namespace
}  // namespace mpidetect::ir
