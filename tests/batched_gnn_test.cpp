// The batched GNN compute engine: blocked-vs-naive kernel
// bit-compatibility, the segment (per-graph) ops' gradients, graph
// mini-batching equivalence (batched forward == per-graph forwards),
// and the batched detector entry points.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <limits>

#include "core/detector.hpp"
#include "core/eval_engine.hpp"
#include "core/features.hpp"
#include "datasets/mbi.hpp"
#include "ml/gnn.hpp"
#include "ml/kernels.hpp"
#include "ml/quant.hpp"
#include "progmodel/lower.hpp"
#include "programl/graph.hpp"

namespace mpidetect::ml {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (double& x : m.data()) x = rng.normal();
  return m;
}

// ---- blocked vs naive kernels: exact match ---------------------------------

void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

TEST(BlockedKernels, MatmulMatchesNaiveBitForBit) {
  Rng rng(1);
  // Random shapes including degenerate rows/cols and sizes around the
  // unroll (4/8), panel (64) and small-product dispatch boundaries.
  const std::size_t dims[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64, 65, 130};
  for (const std::size_t m : {std::size_t{1}, std::size_t{9},
                              std::size_t{70}, std::size_t{301}}) {
    for (const std::size_t k : dims) {
      for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                  std::size_t{17}, std::size_t{64}}) {
        Matrix a = random_matrix(m, k, rng);
        Matrix b = random_matrix(k, n, rng);
        expect_bit_identical(a.matmul(b), a.matmul_naive(b));
      }
    }
  }
}

TEST(BlockedKernels, MatmulZeroRowsAndEmptyShapes) {
  Rng rng(2);
  // Whole zero rows exercise the skip paths; 0-row operands the loops'
  // empty bounds.
  Matrix a = random_matrix(40, 24, rng);
  for (std::size_t k = 0; k < 24; ++k) a.at(3, k) = 0.0;
  for (std::size_t k = 0; k < 24; ++k) a.at(17, k) = 0.0;
  Matrix b = random_matrix(24, 32, rng);
  expect_bit_identical(a.matmul(b), a.matmul_naive(b));

  Matrix empty_a(0, 8);
  Matrix b8 = random_matrix(8, 5, rng);
  const Matrix out = empty_a.matmul(b8);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 5u);
}

TEST(BlockedKernels, TransposedVariantsMatchNaiveBitForBit) {
  Rng rng(3);
  for (const std::size_t m : {std::size_t{1}, std::size_t{33},
                              std::size_t{260}}) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{129}}) {
      for (const std::size_t n : {std::size_t{1}, std::size_t{19},
                                  std::size_t{64}}) {
        Matrix a = random_matrix(m, k, rng);
        Matrix b = random_matrix(n, k, rng);   // nt: (m,k) x (n,k)^T
        expect_bit_identical(a.matmul_nt(b), a.matmul_naive(b.transpose()));
        Matrix g = random_matrix(m, n, rng);   // tn: (m,k)^T x (m,n)
        expect_bit_identical(a.matmul_tn(g),
                             a.transpose().matmul_naive(g));
      }
    }
  }
}

TEST(BlockedKernels, NaiveModeSwitchRoutesMatmul) {
  Rng rng(4);
  Matrix a = random_matrix(50, 40, rng);
  Matrix b = random_matrix(40, 30, rng);
  const Matrix blocked = a.matmul(b);
  kernels::ScopedNaiveMatmul naive(true);
  expect_bit_identical(a.matmul(b), blocked);  // same bits either way
}

TEST(BlockedKernels, ParallelMatchesSerialBitForBit) {
  Rng rng(5);
  // Big enough to cross kParallelMinFlops; on multi-core hosts this
  // runs on the kernel pool, and must still be bit-identical.
  Matrix a = random_matrix(600, 64, rng);
  Matrix b = random_matrix(64, 48, rng);
  Matrix expected;
  {
    kernels::ScopedKernelThreads serial(1);
    expected = a.matmul(b);
  }
  {
    kernels::ScopedKernelThreads wide(8);
    expect_bit_identical(a.matmul(b), expected);
  }
  expect_bit_identical(a.matmul_naive(b), expected);
}

// ---- segment ops: forward + gradients --------------------------------------

/// Finite-difference check (same scheme as autograd_test.cpp).
void gradcheck(const Var& leaf, const std::function<Var()>& f,
               double tol = 1e-5) {
  Var loss = f();
  backward(loss);
  const Matrix analytic = leaf->grad;
  const double eps = 1e-6;
  for (std::size_t i = 0; i < leaf->value.size(); ++i) {
    const double keep = leaf->value.data()[i];
    leaf->value.data()[i] = keep + eps;
    const double up = f()->value.at(0, 0);
    leaf->value.data()[i] = keep - eps;
    const double down = f()->value.at(0, 0);
    leaf->value.data()[i] = keep;
    EXPECT_NEAR(analytic.data()[i], (up - down) / (2 * eps), tol)
        << "coordinate " << i;
  }
}

Var sum_all(const Var& a) {
  Var ones_r = make_input(Matrix(1, a->value.rows(), 1.0));
  Var ones_c = make_input(Matrix(a->value.cols(), 1, 1.0));
  return matmul(matmul(ones_r, a), ones_c);
}

TEST(SegmentPool, MaxPoolMatchesPerSegmentMax) {
  Rng rng(6);
  Var a = make_input(random_matrix(7, 3, rng));
  const std::vector<std::uint32_t> seg{0, 0, 1, 1, 1, 2, 2};
  Var pooled = segment_max_pool_rows(a, seg, 3);
  ASSERT_EQ(pooled->value.rows(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(pooled->value.at(0, j),
                     std::max(a->value.at(0, j), a->value.at(1, j)));
  }
}

TEST(SegmentPool, SingleSegmentEqualsMaxPoolRows) {
  Rng rng(7);
  Matrix m = random_matrix(9, 4, rng);
  Var a1 = make_input(m);
  Var a2 = make_input(m);
  Var whole = max_pool_rows(a1);
  Var seg = segment_max_pool_rows(a2, std::vector<std::uint32_t>(9, 0), 1);
  expect_bit_identical(whole->value, seg->value);
}

TEST(SegmentPool, MaxPoolGradient) {
  Rng rng(8);
  Var a = make_param(random_matrix(6, 3, rng));
  const std::vector<std::uint32_t> seg{0, 1, 1, 0, 2, 2};
  gradcheck(a, [&] { return sum_all(segment_max_pool_rows(a, seg, 3)); });
}

TEST(SegmentPool, MeanPoolForwardAndGradient) {
  Rng rng(9);
  Var a = make_param(random_matrix(5, 2, rng));
  const std::vector<std::uint32_t> seg{0, 0, 0, 1, 1};
  Var pooled = segment_mean_pool_rows(a, seg, 2);
  EXPECT_NEAR(pooled->value.at(0, 0),
              (a->value.at(0, 0) + a->value.at(1, 0) + a->value.at(2, 0)) / 3,
              1e-12);
  a->zero_grad();
  gradcheck(a, [&] { return sum_all(segment_mean_pool_rows(a, seg, 2)); });
}

TEST(BatchedOps, CrossEntropyRowsMatchesSingleRow) {
  Rng rng(10);
  Matrix logits = random_matrix(1, 4, rng);
  Var a1 = make_param(logits);
  Var a2 = make_param(logits);
  Var single = cross_entropy(a1, 2);
  Var batched = cross_entropy_rows(a2, {2});
  EXPECT_DOUBLE_EQ(single->value.at(0, 0), batched->value.at(0, 0));
  backward(single);
  backward(batched);
  expect_bit_identical(a1->grad, a2->grad);
}

TEST(BatchedOps, CrossEntropyRowsGradient) {
  Rng rng(11);
  Var logits = make_param(random_matrix(3, 4, rng));
  gradcheck(logits, [&] { return cross_entropy_rows(logits, {1, 3, 0}); });
}

TEST(BatchedOps, FusedGatv2ScoresMatchesUnfusedChain) {
  Rng rng(12);
  Matrix hl = random_matrix(11, 6, rng);
  Matrix hr = random_matrix(11, 6, rng);
  Matrix at = random_matrix(6, 1, rng);
  Var hl1 = make_param(hl), hr1 = make_param(hr), at1 = make_param(at);
  Var hl2 = make_param(hl), hr2 = make_param(hr), at2 = make_param(at);
  Var unfused = matmul(leaky_relu(add(hl1, hr1)), at1);
  Var fused = gatv2_scores(hl2, hr2, at2);
  expect_bit_identical(unfused->value, fused->value);
  backward(sum_all(unfused));
  backward(sum_all(fused));
  expect_bit_identical(hl1->grad, hl2->grad);
  expect_bit_identical(hr1->grad, hr2->grad);
  expect_bit_identical(at1->grad, at2->grad);
}

TEST(BatchedOps, FusedScatterAddScaledMatchesUnfusedChain) {
  Rng rng(13);
  Matrix alpha = random_matrix(7, 1, rng);
  Matrix h = random_matrix(7, 5, rng);
  const std::vector<std::uint32_t> idx{0, 2, 2, 1, 3, 0, 3};
  Var al1 = make_param(alpha), h1 = make_param(h);
  Var al2 = make_param(alpha), h2 = make_param(h);
  Var unfused = scatter_add_rows(mul_rowwise(al1, h1), idx, 4);
  Var fused = scatter_add_scaled(al2, h2, idx, 4);
  expect_bit_identical(unfused->value, fused->value);
  backward(sum_all(unfused));
  backward(sum_all(fused));
  expect_bit_identical(al1->grad, al2->grad);
  expect_bit_identical(h1->grad, h2->grad);
}

TEST(BatchedOps, GatheredGatv2ScoresMatchesGatherThenScore) {
  Rng rng(16);
  Matrix hl = random_matrix(6, 5, rng);
  Matrix hr = random_matrix(6, 5, rng);
  Matrix at = random_matrix(5, 1, rng);
  const std::vector<std::uint32_t> dst{0, 1, 5, 5, 2};
  const std::vector<std::uint32_t> src{3, 3, 0, 4, 1};
  Var hl1 = make_param(hl), hr1 = make_param(hr), at1 = make_param(at);
  Var hl2 = make_param(hl), hr2 = make_param(hr), at2 = make_param(at);
  Var two_step =
      gatv2_scores(gather_rows(hl1, dst), gather_rows(hr1, src), at1);
  Var fused = gatv2_scores_gathered(hl2, dst, hr2, src, at2);
  expect_bit_identical(two_step->value, fused->value);
  backward(sum_all(two_step));
  backward(sum_all(fused));
  expect_bit_identical(hl1->grad, hl2->grad);
  expect_bit_identical(hr1->grad, hr2->grad);
  expect_bit_identical(at1->grad, at2->grad);
}

TEST(BatchedOps, GatheredScatterAddScaledMatchesGatherThenScatter) {
  Rng rng(17);
  Matrix alpha = random_matrix(5, 1, rng);
  Matrix h = random_matrix(6, 4, rng);
  const std::vector<std::uint32_t> src{3, 3, 0, 4, 1};
  const std::vector<std::uint32_t> dst{0, 1, 2, 2, 1};
  Var al1 = make_param(alpha), h1 = make_param(h);
  Var al2 = make_param(alpha), h2 = make_param(h);
  Var two_step = scatter_add_scaled(al1, gather_rows(h1, src), dst, 3);
  Var fused = scatter_add_scaled_gathered(al2, h2, src, dst, 3);
  expect_bit_identical(two_step->value, fused->value);
  backward(sum_all(two_step));
  backward(sum_all(fused));
  expect_bit_identical(al1->grad, al2->grad);
  expect_bit_identical(h1->grad, h2->grad);
}

TEST(BatchedOps, FusedBiasEluMatchesUnfusedChain) {
  Rng rng(14);
  Matrix a = random_matrix(9, 4, rng);
  Matrix bias = random_matrix(1, 4, rng);
  Var a1 = make_param(a), b1 = make_param(bias);
  Var a2 = make_param(a), b2 = make_param(bias);
  Var unfused = elu(add_row_broadcast(a1, b1));
  Var fused = bias_elu(a2, b2);
  expect_bit_identical(unfused->value, fused->value);
  backward(sum_all(unfused));
  backward(sum_all(fused));
  // The fused backward derives elu' from the stored expm1 output
  // instead of recomputing exp — values agree to 1 ulp, not bit-exactly.
  for (std::size_t i = 0; i < a1->grad.size(); ++i) {
    EXPECT_NEAR(a1->grad.data()[i], a2->grad.data()[i], 1e-14);
  }
  for (std::size_t i = 0; i < b1->grad.size(); ++i) {
    EXPECT_NEAR(b1->grad.data()[i], b2->grad.data()[i], 1e-14);
  }
}

TEST(BatchedOps, AddNMatchesAddChain) {
  Rng rng(18);
  Matrix m0 = random_matrix(5, 4, rng);
  Matrix m1 = random_matrix(5, 4, rng);
  Matrix m2 = random_matrix(5, 4, rng);
  Var a0 = make_param(m0), a1 = make_param(m1), a2 = make_param(m2);
  Var b0 = make_param(m0), b1 = make_param(m1), b2 = make_param(m2);
  Var chain = add(add(a0, a1), a2);
  Var fused = add_n({b0, b1, b2});
  expect_bit_identical(chain->value, fused->value);
  backward(sum_all(chain));
  backward(sum_all(fused));
  expect_bit_identical(a0->grad, b0->grad);
  expect_bit_identical(a1->grad, b1->grad);
  expect_bit_identical(a2->grad, b2->grad);
}

TEST(BatchedOps, NoGradGuardSkipsTape) {
  Rng rng(15);
  Var a = make_param(random_matrix(3, 3, rng));
  Var b = make_param(random_matrix(3, 3, rng));
  NoGradGuard guard;
  Var c = matmul(a, b);
  EXPECT_FALSE(c->requires_grad);
  EXPECT_TRUE(c->parents.empty());
}

// ---- graph mini-batching ----------------------------------------------------

programl::ProgramGraph tiny_graph(std::uint32_t t0, std::uint32_t t1,
                                  bool with_call = false) {
  programl::ProgramGraph g;
  g.nodes.push_back({programl::NodeType::Control, t0, "a"});
  g.nodes.push_back({programl::NodeType::Control, t1, "b"});
  g.nodes.push_back({programl::NodeType::Variable, 3, "v"});
  g.edges[0].push_back({0, 1});
  g.edges[1].push_back({2, 0});
  g.edges[1].push_back({2, 1});
  if (with_call) g.edges[2].push_back({0, 1});
  return g;
}

GnnConfig tiny_config() {
  GnnConfig cfg;
  cfg.embed_dim = 8;
  cfg.layers = {16, 8};
  cfg.fc_hidden = 8;
  cfg.classes = 2;
  cfg.epochs = 5;
  cfg.lr = 0.01;
  return cfg;
}

TEST(GraphBatch, DisjointUnionLayout) {
  std::vector<programl::ProgramGraph> graphs{tiny_graph(1, 2),
                                             tiny_graph(4, 5, true)};
  const programl::GraphBatch b = programl::make_batch(graphs);
  ASSERT_EQ(b.size, 2u);
  ASSERT_EQ(b.num_nodes(), 6u);
  EXPECT_EQ(b.tokens[0], 1u);
  EXPECT_EQ(b.tokens[3], 4u);
  EXPECT_EQ(b.segments, (std::vector<std::uint32_t>{0, 0, 0, 1, 1, 1}));
  // Second member's edges are offset by the first member's node count.
  ASSERT_EQ(b.edges[0].size(), 2u);
  EXPECT_EQ(b.edges[0][1].src, 3u);
  EXPECT_EQ(b.edges[0][1].dst, 4u);
  ASSERT_EQ(b.edges[2].size(), 1u);
  EXPECT_EQ(b.edges[2][0].src, 3u);
}

TEST(GraphBatch, BatchedForwardMatchesPerGraphForwards) {
  GnnModel model(tiny_config());
  std::vector<programl::ProgramGraph> graphs{
      tiny_graph(1, 2), tiny_graph(9, 10, true), tiny_graph(20, 21)};
  const programl::GraphBatch batch = programl::make_batch(graphs);
  Var batched = model.forward(batch);
  ASSERT_EQ(batched->value.rows(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    Var single = model.forward(graphs[i]);
    for (std::size_t j = 0; j < single->value.cols(); ++j) {
      EXPECT_NEAR(single->value.at(0, j), batched->value.at(i, j), 1e-9)
          << "graph " << i << " logit " << j;
    }
  }
}

TEST(GraphBatch, BatchedPredictProbaMatchesPerGraph) {
  GnnModel model(tiny_config());
  std::vector<programl::ProgramGraph> graphs;
  for (int i = 0; i < 7; ++i) {
    graphs.push_back(tiny_graph(static_cast<std::uint32_t>(2 * i),
                                static_cast<std::uint32_t>(2 * i + 1),
                                i % 2 == 0));
  }
  const auto batched = model.predict_proba(
      std::span<const programl::ProgramGraph>(graphs));
  ASSERT_EQ(batched.size(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto single = model.predict_proba(graphs[i]);
    ASSERT_EQ(single.size(), batched[i].size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_NEAR(single[j], batched[i][j], 1e-12);
    }
  }
}

TEST(GraphBatch, BatchedTrainingLearns) {
  GnnConfig cfg = tiny_config();
  cfg.batch_size = 4;
  cfg.epochs = 30;
  GnnModel model(cfg);
  std::vector<programl::ProgramGraph> graphs;
  std::vector<std::size_t> labels;
  for (int i = 0; i < 8; ++i) {
    graphs.push_back(tiny_graph(10, 11));
    labels.push_back(0);
    graphs.push_back(tiny_graph(20, 21));
    labels.push_back(1);
  }
  model.fit(graphs, labels);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    correct += (model.predict(graphs[i]) == labels[i]);
  }
  EXPECT_EQ(correct, graphs.size());
}

TEST(GraphBatch, MixedRelationPresence) {
  // One member has call edges, the other does not: the relation runs
  // over the union, and the edge-less member's logits must still match
  // its single-graph forward.
  GnnModel model(tiny_config());
  std::vector<programl::ProgramGraph> graphs{tiny_graph(1, 2, true),
                                             tiny_graph(5, 6, false)};
  const programl::GraphBatch batch = programl::make_batch(graphs);
  Var batched = model.forward(batch);
  Var alone = model.forward(graphs[1]);
  for (std::size_t j = 0; j < alone->value.cols(); ++j) {
    EXPECT_NEAR(alone->value.at(0, j), batched->value.at(1, j), 1e-9);
  }
}

// ---- batch edge cases -------------------------------------------------------

TEST(GraphBatchEdge, EmptyBatchIsWellFormed) {
  const programl::GraphBatch b =
      programl::make_batch(std::span<const programl::ProgramGraph>{});
  EXPECT_EQ(b.size, 0u);
  EXPECT_EQ(b.num_nodes(), 0u);
  EXPECT_TRUE(b.tokens.empty());
  EXPECT_TRUE(b.segments.empty());
  for (const auto& edges : b.edges) EXPECT_TRUE(edges.empty());
}

TEST(GraphBatchEdge, SingleNodeGraphSurvivesBatchAndInference) {
  programl::ProgramGraph g;
  g.nodes.push_back({programl::NodeType::Control, 1, "entry"});
  // No edges at all: the batch and the model must handle an isolated
  // node (message passing contributes nothing; pooling sees one row).
  const programl::GraphBatch b =
      programl::make_batch(std::span(&g, 1));
  ASSERT_EQ(b.size, 1u);
  ASSERT_EQ(b.num_nodes(), 1u);
  EXPECT_EQ(b.segments, (std::vector<std::uint32_t>{0}));

  GnnModel model(tiny_config());
  const Var batched = model.forward(b);
  ASSERT_EQ(batched->value.rows(), 1u);
  const Var single = model.forward(g);
  for (std::size_t j = 0; j < single->value.cols(); ++j) {
    EXPECT_NEAR(single->value.at(0, j), batched->value.at(0, j), 1e-12);
  }
  const auto proba = model.predict_proba(g);
  ASSERT_EQ(proba.size(), 2u);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

TEST(GraphBatchEdge, MixedSingleNodeAndRealGraphsAgreeWithPerGraph) {
  programl::ProgramGraph lone;
  lone.nodes.push_back({programl::NodeType::Variable, 7, "x"});
  std::vector<programl::ProgramGraph> graphs{tiny_graph(1, 2), lone,
                                             tiny_graph(4, 5, true)};
  GnnModel model(tiny_config());
  const programl::GraphBatch batch = programl::make_batch(graphs);
  const Var batched = model.forward(batch);
  ASSERT_EQ(batched->value.rows(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Var single = model.forward(graphs[i]);
    for (std::size_t j = 0; j < single->value.cols(); ++j) {
      EXPECT_NEAR(single->value.at(0, j), batched->value.at(i, j), 1e-9)
          << "graph " << i;
    }
  }
}

// ---- SIMD dispatch: every target bit-identical to scalar --------------------

// The wall the kernel-dispatch contract leans on (ml/kernels.hpp):
// every fp inner kernel, on every dispatch target this build carries,
// produces bit-identical results to the scalar reference — including on
// misaligned buffers (Matrix storage guarantees 8-byte alignment only),
// denormal inputs, and magnitudes near overflow.

std::uint64_t double_bits(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

std::uint32_t float_bits(float x) {
  std::uint32_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

/// The targets worth comparing on this machine: scalar plus whatever
/// fns_for resolves the others to (unsupported targets fall back to the
/// scalar table, which makes the comparison trivially true, not wrong).
const std::array<kernels::Isa, 4> kAllTargets = {
    kernels::Isa::Scalar, kernels::Isa::Avx2, kernels::Isa::Neon,
    kernels::Isa::Avx512};

/// Fills `n` doubles with a mix of ordinary, denormal, tiny and huge
/// magnitudes — the inputs where a reassociated or FMA-contracted
/// kernel would diverge from the scalar reference first.
void fill_adversarial(double* p, std::size_t n, Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 5) {
      case 0: p[i] = rng.normal(); break;
      case 1: p[i] = rng.normal() * 4.9e-324; break;  // denormal range
      case 2: p[i] = rng.normal() * 1e300; break;     // near overflow
      case 3: p[i] = rng.normal() * 1e-160; break;
      default: p[i] = -rng.normal(); break;
    }
  }
}

TEST(SimdDispatch, RowKernelsBitIdenticalAcrossTargetsMisaligned) {
  Rng rng(11);
  const kernels::KernelFns& ref = kernels::fns_for(kernels::Isa::Scalar);
  // +1 element, then use data()+1: 8-byte aligned but guaranteed NOT
  // 16/32-byte aligned — a kernel using aligned loads would fault or
  // (worse) silently read the wrong lanes.
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{7}, std::size_t{8}, std::size_t{9},
                              std::size_t{31}, std::size_t{64},
                              std::size_t{65}}) {
    std::vector<double> src_buf(8 * (n + 1)), coef(8), out_ref(n + 1),
        out_tgt(n + 1), out2_ref(n + 1), out2_tgt(n + 1), bias_buf(n + 1);
    std::array<const double*, 8> rows{};
    for (std::size_t r = 0; r < 8; ++r) {
      double* row = src_buf.data() + r * (n + 1) + 1;
      fill_adversarial(row, n, rng);
      rows[r] = row;
    }
    fill_adversarial(coef.data(), coef.size(), rng);
    fill_adversarial(bias_buf.data() + 1, n, rng);
    for (const kernels::Isa isa : kAllTargets) {
      const kernels::KernelFns& fns = kernels::fns_for(isa);

      const auto reset = [&] {
        Rng r2(23);
        fill_adversarial(out_ref.data() + 1, n, r2);
        std::copy(out_ref.begin(), out_ref.end(), out_tgt.begin());
      };
      const auto compare = [&](const char* what) {
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_EQ(double_bits(out_ref[j + 1]), double_bits(out_tgt[j + 1]))
              << what << " isa=" << kernels::isa_name(isa) << " n=" << n
              << " j=" << j;
        }
      };

      reset();
      ref.axpy8(out_ref.data() + 1, rows.data(), coef.data(), n);
      fns.axpy8(out_tgt.data() + 1, rows.data(), coef.data(), n);
      compare("axpy8");

      reset();
      ref.axpy4(out_ref.data() + 1, rows.data(), coef.data(), n);
      fns.axpy4(out_tgt.data() + 1, rows.data(), coef.data(), n);
      compare("axpy4");

      reset();
      {
        Rng r3(29);
        fill_adversarial(out2_ref.data() + 1, n, r3);
        std::copy(out2_ref.begin(), out2_ref.end(), out2_tgt.begin());
        ref.axpy4x2(out_ref.data() + 1, out2_ref.data() + 1, rows.data(),
                    coef.data(), coef.data() + 4, n);
        fns.axpy4x2(out_tgt.data() + 1, out2_tgt.data() + 1, rows.data(),
                    coef.data(), coef.data() + 4, n);
        compare("axpy4x2 row0");
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_EQ(double_bits(out2_ref[j + 1]), double_bits(out2_tgt[j + 1]))
              << "axpy4x2 row1 isa=" << kernels::isa_name(isa) << " n=" << n
              << " j=" << j;
        }
      }

      reset();
      ref.axpy1(out_ref.data() + 1, rows[0], coef[0], n);
      fns.axpy1(out_tgt.data() + 1, rows[0], coef[0], n);
      compare("axpy1");

      reset();
      ref.add1(out_ref.data() + 1, rows[1], n);
      fns.add1(out_tgt.data() + 1, rows[1], n);
      compare("add1");

      reset();
      ref.bias_elu_row(out_ref.data() + 1, rows[2], bias_buf.data() + 1, n);
      fns.bias_elu_row(out_tgt.data() + 1, rows[2], bias_buf.data() + 1, n);
      compare("bias_elu_row");

      // dot4 / gatv2_scores4: reductions over misaligned K-length rows.
      std::array<const double*, 4> quad{rows[0], rows[1], rows[2], rows[3]};
      std::array<const double*, 4> quad_r{rows[4], rows[5], rows[6], rows[7]};
      std::array<double, 4> dr{}, dt{};
      ref.dot4(rows[4], quad.data(), n, dr.data());
      fns.dot4(rows[4], quad.data(), n, dt.data());
      for (std::size_t c = 0; c < 4; ++c) {
        ASSERT_EQ(double_bits(dr[c]), double_bits(dt[c]))
            << "dot4 isa=" << kernels::isa_name(isa) << " n=" << n;
      }

      dr.fill(0.0);
      dt.fill(0.0);
      ref.gatv2_scores4(quad.data(), quad_r.data(), bias_buf.data() + 1, 0.2,
                        n, dr.data());
      fns.gatv2_scores4(quad.data(), quad_r.data(), bias_buf.data() + 1, 0.2,
                        n, dt.data());
      for (std::size_t c = 0; c < 4; ++c) {
        ASSERT_EQ(double_bits(dr[c]), double_bits(dt[c]))
            << "gatv2_scores4 isa=" << kernels::isa_name(isa) << " n=" << n;
      }
    }
  }
}

TEST(SimdDispatch, QmatmulRowBitIdenticalAcrossTargetsMisaligned) {
  Rng rng(13);
  for (const std::size_t K : {std::size_t{1}, std::size_t{5}, std::size_t{16},
                              std::size_t{33}}) {
    for (const std::size_t M : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                                std::size_t{9}, std::size_t{24},
                                std::size_t{65}}) {
      // Misaligned float buffers (data()+1: 4-byte aligned only) and an
      // activation row mixing denormals and large magnitudes.
      std::vector<float> a(K + 1), out_ref(M + 1), out_tgt(M + 1);
      std::vector<std::int8_t> w(K * M);
      for (std::size_t k = 0; k < K; ++k) {
        const double v = rng.normal();
        a[k + 1] = static_cast<float>(k % 4 == 0   ? v * 1e30
                                      : k % 4 == 1 ? v * 1e-42
                                                   : v);
      }
      for (auto& x : w) {
        x = static_cast<std::int8_t>(
            static_cast<int>(rng.uniform() * 255.0) - 127);
      }
      const kernels::KernelFns& ref = kernels::fns_for(kernels::Isa::Scalar);
      for (const kernels::Isa isa : kAllTargets) {
        kernels::fns_for(isa).qmatmul_row(out_tgt.data() + 1, a.data() + 1,
                                          w.data(), K, M);
        ref.qmatmul_row(out_ref.data() + 1, a.data() + 1, w.data(), K, M);
        for (std::size_t j = 0; j < M; ++j) {
          ASSERT_EQ(float_bits(out_ref[j + 1]), float_bits(out_tgt[j + 1]))
              << "qmatmul_row isa=" << kernels::isa_name(isa) << " K=" << K
              << " M=" << M << " j=" << j;
        }
      }
    }
  }
}

TEST(SimdDispatch, ForcedScalarFullModelBitIdentical) {
  // The whole-model wall: predict_proba under the live dispatch target
  // must equal the forced-scalar run bit for bit (not NEAR — the SIMD
  // kernels preserve accumulation order exactly).
  GnnModel model(tiny_config());
  std::vector<programl::ProgramGraph> graphs;
  for (int i = 0; i < 6; ++i) {
    graphs.push_back(tiny_graph(static_cast<std::uint32_t>(3 * i),
                                static_cast<std::uint32_t>(3 * i + 1),
                                i % 2 == 0));
  }
  const auto live =
      model.predict_proba(std::span<const programl::ProgramGraph>(graphs));
  kernels::ScopedForceScalar scalar(true);
  ASSERT_EQ(kernels::active_isa(), kernels::Isa::Scalar);
  const auto forced =
      model.predict_proba(std::span<const programl::ProgramGraph>(graphs));
  ASSERT_EQ(live.size(), forced.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    for (std::size_t j = 0; j < live[i].size(); ++j) {
      ASSERT_EQ(double_bits(live[i][j]), double_bits(forced[i][j]))
          << "graph " << i << " class " << j;
    }
  }
}

TEST(SimdDispatch, ThreadCountInvariantFullModel) {
  GnnModel model(tiny_config());
  std::vector<programl::ProgramGraph> graphs;
  for (int i = 0; i < 5; ++i) {
    graphs.push_back(tiny_graph(static_cast<std::uint32_t>(i),
                                static_cast<std::uint32_t>(i + 40)));
  }
  std::vector<std::vector<double>> serial;
  {
    kernels::ScopedKernelThreads one(1);
    serial = model.predict_proba(std::span<const programl::ProgramGraph>(graphs));
  }
  kernels::ScopedKernelThreads four(4);
  const auto wide =
      model.predict_proba(std::span<const programl::ProgramGraph>(graphs));
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    for (std::size_t j = 0; j < serial[i].size(); ++j) {
      ASSERT_EQ(double_bits(serial[i][j]), double_bits(wide[i][j]));
    }
  }
}

// ---- quantized serving image (ml/quant.hpp) --------------------------------

TEST(QuantizedInference, Bf16RoundIsRoundToNearestEven) {
  EXPECT_EQ(bf16_round(0.0f), 0.0f);
  EXPECT_EQ(bf16_round(1.0f), 1.0f);
  // 1 + 2^-7 is exactly representable in bf16 (7 mantissa bits).
  EXPECT_EQ(bf16_round(1.0078125f), 1.0078125f);
  // 1 + 2^-8 is the exact halfway point: ties-to-even keeps 1.0.
  EXPECT_EQ(bf16_round(1.00390625f), 1.0f);
  // Just above halfway rounds up to the next representable step.
  EXPECT_EQ(bf16_round(1.004f), 1.0078125f);
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_round(inf), inf);
  EXPECT_EQ(bf16_round(-inf), -inf);
  EXPECT_TRUE(std::isnan(bf16_round(std::numeric_limits<float>::quiet_NaN())));
  // Denormal floats survive (flushed toward bf16's coarser grid, never
  // to garbage).
  const float denorm = 1e-42f;
  const float r = bf16_round(denorm);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_GE(r, 0.0f);
}

TEST(QuantizedInference, QuantizeMatrixPerColumnSymmetric) {
  Matrix w(3, 2);
  w.at(0, 0) = 2.54;
  w.at(1, 0) = -1.27;
  w.at(2, 0) = 0.0;
  // Column 1 all zeros: scale must be the safe 1.0, codes all 0.
  const QuantizedMatrix q = QuantizedMatrix::quantize(w);
  ASSERT_EQ(q.rows, 3u);
  ASSERT_EQ(q.cols, 2u);
  EXPECT_FLOAT_EQ(q.scale[0], static_cast<float>(2.54 / 127.0));
  EXPECT_EQ(q.data[0 * 2 + 0], 127);  // the column max hits +127
  EXPECT_EQ(q.data[1 * 2 + 0], -64);  // -1.27 / (2.54/127) = -63.5 -> -64
  EXPECT_EQ(q.data[2 * 2 + 0], 0);
  EXPECT_EQ(q.scale[1], 1.0f);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(q.data[k * 2 + 1], 0);
}

TEST(QuantizedInference, TrainedModelToleranceAndAgreement) {
  GnnConfig cfg = tiny_config();
  cfg.batch_size = 4;
  cfg.epochs = 30;
  GnnModel model(cfg);
  std::vector<programl::ProgramGraph> graphs;
  std::vector<std::size_t> labels;
  for (int i = 0; i < 8; ++i) {
    graphs.push_back(tiny_graph(10, 11));
    labels.push_back(0);
    graphs.push_back(tiny_graph(20, 21));
    labels.push_back(1);
  }
  model.fit(graphs, labels);

  const QuantizedGnnModel qmodel(model);
  const auto fp =
      model.predict_proba(std::span<const programl::ProgramGraph>(graphs));
  const auto quant =
      qmodel.predict_proba(std::span<const programl::ProgramGraph>(graphs));
  ASSERT_EQ(fp.size(), quant.size());
  for (std::size_t i = 0; i < fp.size(); ++i) {
    ASSERT_EQ(fp[i].size(), quant[i].size());
    double sum = 0.0;
    std::size_t fp_arg = 0, q_arg = 0;
    for (std::size_t j = 0; j < fp[i].size(); ++j) {
      // The documented tolerance contract (docs/PERFORMANCE.md):
      // probabilities within 0.05, argmax identical.
      EXPECT_NEAR(fp[i][j], quant[i][j], 0.05) << "graph " << i;
      sum += quant[i][j];
      if (fp[i][j] > fp[i][fp_arg]) fp_arg = j;
      if (quant[i][j] > quant[i][q_arg]) q_arg = j;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(fp_arg, q_arg) << "prediction disagreement on graph " << i;
    EXPECT_EQ(q_arg, labels[i]);
  }
}

TEST(QuantizedInference, GuardedFallbackIsExactPartition) {
  // predict_proba_guarded's contract, characterized exactly: a graph
  // whose quantized argmax gap (top minus runner-up) is at most
  // 2 x kQuantProbaTolerance comes back bit-equal to the fp path (the
  // fallback fired); every other graph comes back bit-equal to the raw
  // quantized path (no needless fp work). Because any fp/quantized
  // argmax disagreement forces the quantized gap under that threshold,
  // agreement with fp is structural — assert it for every graph too.
  GnnConfig cfg = tiny_config();
  cfg.batch_size = 4;
  cfg.epochs = 30;
  GnnModel model(cfg);
  std::vector<programl::ProgramGraph> graphs;
  std::vector<std::size_t> labels;
  for (int i = 0; i < 8; ++i) {
    graphs.push_back(tiny_graph(10, 11));
    labels.push_back(0);
    graphs.push_back(tiny_graph(20, 21));
    labels.push_back(1);
  }
  const std::span<const programl::ProgramGraph> span(graphs);

  // Both an untrained model (weak, possibly borderline margins) and a
  // trained one (wide margins) must satisfy the partition.
  for (const bool trained : {false, true}) {
    if (trained) model.fit(graphs, labels);
    const QuantizedGnnModel qmodel(model);
    const auto fp = model.predict_proba(span);
    const auto raw = qmodel.predict_proba(span);
    const auto guarded = predict_proba_guarded(qmodel, model, span);
    ASSERT_EQ(guarded.size(), graphs.size());
    for (std::size_t i = 0; i < guarded.size(); ++i) {
      double top = -1.0, second = -1.0;
      std::size_t raw_arg = 0, fp_arg = 0, g_arg = 0;
      for (std::size_t j = 0; j < raw[i].size(); ++j) {
        if (raw[i][j] > top) {
          second = top;
          top = raw[i][j];
          raw_arg = j;
        } else if (raw[i][j] > second) {
          second = raw[i][j];
        }
        if (fp[i][j] > fp[i][fp_arg]) fp_arg = j;
        if (guarded[i][j] > guarded[i][g_arg]) g_arg = j;
      }
      const bool fell_back = top - second <= 2.0 * kQuantProbaTolerance;
      const auto& expected = fell_back ? fp[i] : raw[i];
      for (std::size_t j = 0; j < expected.size(); ++j) {
        ASSERT_EQ(double_bits(guarded[i][j]), double_bits(expected[j]))
            << (trained ? "trained" : "untrained") << " graph " << i;
      }
      EXPECT_EQ(g_arg, fp_arg)
          << (trained ? "trained" : "untrained") << " graph " << i;
      (void)raw_arg;
    }
  }
}

TEST(QuantizedInference, CrossDispatchBitIdentical) {
  // Within the quantized path, scalar and SIMD targets are ALSO
  // bit-identical (same k-ascending float accumulation): the tolerance
  // contract is fp-vs-quantized only, never target-vs-target.
  GnnModel model(tiny_config());
  std::vector<programl::ProgramGraph> graphs{
      tiny_graph(1, 2), tiny_graph(9, 10, true), tiny_graph(20, 21)};
  const QuantizedGnnModel qmodel(model);
  const auto live =
      qmodel.predict_proba(std::span<const programl::ProgramGraph>(graphs));
  kernels::ScopedForceScalar scalar(true);
  const auto forced =
      qmodel.predict_proba(std::span<const programl::ProgramGraph>(graphs));
  ASSERT_EQ(live.size(), forced.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    for (std::size_t j = 0; j < live[i].size(); ++j) {
      ASSERT_EQ(double_bits(live[i][j]), double_bits(forced[i][j]))
          << "graph " << i << " class " << j;
    }
  }
}

TEST(QuantizedInference, SingleGraphMatchesBatchedEntryPoint) {
  GnnModel model(tiny_config());
  const programl::ProgramGraph g = tiny_graph(6, 7, true);
  const QuantizedGnnModel qmodel(model);
  const auto single = qmodel.predict_proba(g);
  const auto batched =
      qmodel.predict_proba(std::span<const programl::ProgramGraph>(&g, 1));
  ASSERT_EQ(batched.size(), 1u);
  ASSERT_EQ(single.size(), batched[0].size());
  for (std::size_t j = 0; j < single.size(); ++j) {
    EXPECT_EQ(double_bits(single[j]), double_bits(batched[0][j]));
  }
}

TEST(QuantizedInference, ExtremeLogitSoftmaxIsFinite) {
  // A model whose weights are scaled far up produces extreme logits;
  // the quantized softmax (double, max-subtracted) must stay finite,
  // normalized, and argmax-stable.
  GnnModel model(tiny_config());
  std::vector<Matrix> scaled;
  for (const Matrix* p : model.parameters()) {
    Matrix m = *p;
    for (double& x : m.data()) x *= 200.0;
    scaled.push_back(std::move(m));
  }
  model.set_parameters(std::move(scaled));
  const QuantizedGnnModel qmodel(model);
  const auto proba = qmodel.predict_proba(tiny_graph(2, 3));
  double sum = 0.0;
  for (const double p : proba) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace mpidetect::ml

// ---- batched detector entry point ------------------------------------------

namespace mpidetect::core {
namespace {

TEST(GnnDetectorRun, BatchedRunMatchesPerCaseEvaluate) {
  datasets::MbiConfig mcfg;
  mcfg.scale = 0.01;
  const datasets::Dataset ds = datasets::generate_mbi(mcfg);

  DetectorConfig cfg;
  cfg.gnn.cfg.embed_dim = 8;
  cfg.gnn.cfg.layers = {16, 8};
  cfg.gnn.cfg.fc_hidden = 8;
  cfg.gnn.cfg.epochs = 2;
  cfg.gnn.cfg.infer_batch = 4;
  cfg.cache = std::make_shared<EncodingCache>();
  GnnDetector det(cfg);

  EvalEngine engine(1, cfg.cache);
  engine.fit_full(det, ds);

  const auto batched = det.run(ds.cases);
  ASSERT_EQ(batched.size(), ds.size());
  // The engine's per-case sweep and the batched run must agree verdict
  // for verdict (same outcome, same confidence).
  const auto swept = engine.sweep(det, ds);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(batched[i].outcome, swept.verdicts[i].outcome) << "case " << i;
    ASSERT_TRUE(batched[i].confidence.has_value());
    ASSERT_TRUE(swept.verdicts[i].confidence.has_value());
    EXPECT_NEAR(*batched[i].confidence, *swept.verdicts[i].confidence, 1e-12);
  }
}

TEST(GnnDetectorRun, AdHocBatchesDoNotAccumulateSpillFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("mpidetect_spill_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  datasets::MbiConfig mcfg;
  mcfg.scale = 0.01;
  const datasets::Dataset ds = datasets::generate_mbi(mcfg);

  DetectorConfig cfg;
  cfg.gnn.cfg.embed_dim = 8;
  cfg.gnn.cfg.layers = {16, 8};
  cfg.gnn.cfg.fc_hidden = 8;
  cfg.gnn.cfg.epochs = 1;
  cfg.cache = std::make_shared<EncodingCache>();
  cfg.cache->set_spill_dir(dir.string());
  GnnDetector det(cfg);
  EvalEngine engine(1, cfg.cache);
  engine.fit_full(det, ds);

  const auto count_files = [&] {
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      (void)e;
      ++n;
    }
    return n;
  };
  const std::size_t before = count_files();
  // Ad-hoc subsets have their own content fingerprint; their spill
  // files must be cleaned up with the in-memory entry when run()
  // discards the batch.
  (void)det.run(std::span<const datasets::Case>(ds.cases).subspan(0, 3));
  (void)det.run(std::span<const datasets::Case>(ds.cases).subspan(2, 4));
  EXPECT_EQ(count_files(), before);
  fs::remove_all(dir);
}

TEST(GnnDetectorRun, UnfittedThrows) {
  GnnDetector det;
  datasets::MbiConfig mcfg;
  mcfg.scale = 0.01;
  const datasets::Dataset ds = datasets::generate_mbi(mcfg);
  EXPECT_THROW(det.run(ds.cases), ContractViolation);
}

}  // namespace
}  // namespace mpidetect::core
