// The batched GNN compute engine: blocked-vs-naive kernel
// bit-compatibility, the segment (per-graph) ops' gradients, graph
// mini-batching equivalence (batched forward == per-graph forwards),
// and the batched detector entry points.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <functional>

#include "core/detector.hpp"
#include "core/eval_engine.hpp"
#include "core/features.hpp"
#include "datasets/mbi.hpp"
#include "ml/gnn.hpp"
#include "ml/kernels.hpp"
#include "progmodel/lower.hpp"
#include "programl/graph.hpp"

namespace mpidetect::ml {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (double& x : m.data()) x = rng.normal();
  return m;
}

// ---- blocked vs naive kernels: exact match ---------------------------------

void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

TEST(BlockedKernels, MatmulMatchesNaiveBitForBit) {
  Rng rng(1);
  // Random shapes including degenerate rows/cols and sizes around the
  // unroll (4/8), panel (64) and small-product dispatch boundaries.
  const std::size_t dims[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64, 65, 130};
  for (const std::size_t m : {std::size_t{1}, std::size_t{9},
                              std::size_t{70}, std::size_t{301}}) {
    for (const std::size_t k : dims) {
      for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                  std::size_t{17}, std::size_t{64}}) {
        Matrix a = random_matrix(m, k, rng);
        Matrix b = random_matrix(k, n, rng);
        expect_bit_identical(a.matmul(b), a.matmul_naive(b));
      }
    }
  }
}

TEST(BlockedKernels, MatmulZeroRowsAndEmptyShapes) {
  Rng rng(2);
  // Whole zero rows exercise the skip paths; 0-row operands the loops'
  // empty bounds.
  Matrix a = random_matrix(40, 24, rng);
  for (std::size_t k = 0; k < 24; ++k) a.at(3, k) = 0.0;
  for (std::size_t k = 0; k < 24; ++k) a.at(17, k) = 0.0;
  Matrix b = random_matrix(24, 32, rng);
  expect_bit_identical(a.matmul(b), a.matmul_naive(b));

  Matrix empty_a(0, 8);
  Matrix b8 = random_matrix(8, 5, rng);
  const Matrix out = empty_a.matmul(b8);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 5u);
}

TEST(BlockedKernels, TransposedVariantsMatchNaiveBitForBit) {
  Rng rng(3);
  for (const std::size_t m : {std::size_t{1}, std::size_t{33},
                              std::size_t{260}}) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{129}}) {
      for (const std::size_t n : {std::size_t{1}, std::size_t{19},
                                  std::size_t{64}}) {
        Matrix a = random_matrix(m, k, rng);
        Matrix b = random_matrix(n, k, rng);   // nt: (m,k) x (n,k)^T
        expect_bit_identical(a.matmul_nt(b), a.matmul_naive(b.transpose()));
        Matrix g = random_matrix(m, n, rng);   // tn: (m,k)^T x (m,n)
        expect_bit_identical(a.matmul_tn(g),
                             a.transpose().matmul_naive(g));
      }
    }
  }
}

TEST(BlockedKernels, NaiveModeSwitchRoutesMatmul) {
  Rng rng(4);
  Matrix a = random_matrix(50, 40, rng);
  Matrix b = random_matrix(40, 30, rng);
  const Matrix blocked = a.matmul(b);
  kernels::ScopedNaiveMatmul naive(true);
  expect_bit_identical(a.matmul(b), blocked);  // same bits either way
}

TEST(BlockedKernels, ParallelMatchesSerialBitForBit) {
  Rng rng(5);
  // Big enough to cross kParallelMinFlops; on multi-core hosts this
  // runs on the kernel pool, and must still be bit-identical.
  Matrix a = random_matrix(600, 64, rng);
  Matrix b = random_matrix(64, 48, rng);
  Matrix expected;
  {
    kernels::ScopedKernelThreads serial(1);
    expected = a.matmul(b);
  }
  {
    kernels::ScopedKernelThreads wide(8);
    expect_bit_identical(a.matmul(b), expected);
  }
  expect_bit_identical(a.matmul_naive(b), expected);
}

// ---- segment ops: forward + gradients --------------------------------------

/// Finite-difference check (same scheme as autograd_test.cpp).
void gradcheck(const Var& leaf, const std::function<Var()>& f,
               double tol = 1e-5) {
  Var loss = f();
  backward(loss);
  const Matrix analytic = leaf->grad;
  const double eps = 1e-6;
  for (std::size_t i = 0; i < leaf->value.size(); ++i) {
    const double keep = leaf->value.data()[i];
    leaf->value.data()[i] = keep + eps;
    const double up = f()->value.at(0, 0);
    leaf->value.data()[i] = keep - eps;
    const double down = f()->value.at(0, 0);
    leaf->value.data()[i] = keep;
    EXPECT_NEAR(analytic.data()[i], (up - down) / (2 * eps), tol)
        << "coordinate " << i;
  }
}

Var sum_all(const Var& a) {
  Var ones_r = make_input(Matrix(1, a->value.rows(), 1.0));
  Var ones_c = make_input(Matrix(a->value.cols(), 1, 1.0));
  return matmul(matmul(ones_r, a), ones_c);
}

TEST(SegmentPool, MaxPoolMatchesPerSegmentMax) {
  Rng rng(6);
  Var a = make_input(random_matrix(7, 3, rng));
  const std::vector<std::uint32_t> seg{0, 0, 1, 1, 1, 2, 2};
  Var pooled = segment_max_pool_rows(a, seg, 3);
  ASSERT_EQ(pooled->value.rows(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(pooled->value.at(0, j),
                     std::max(a->value.at(0, j), a->value.at(1, j)));
  }
}

TEST(SegmentPool, SingleSegmentEqualsMaxPoolRows) {
  Rng rng(7);
  Matrix m = random_matrix(9, 4, rng);
  Var a1 = make_input(m);
  Var a2 = make_input(m);
  Var whole = max_pool_rows(a1);
  Var seg = segment_max_pool_rows(a2, std::vector<std::uint32_t>(9, 0), 1);
  expect_bit_identical(whole->value, seg->value);
}

TEST(SegmentPool, MaxPoolGradient) {
  Rng rng(8);
  Var a = make_param(random_matrix(6, 3, rng));
  const std::vector<std::uint32_t> seg{0, 1, 1, 0, 2, 2};
  gradcheck(a, [&] { return sum_all(segment_max_pool_rows(a, seg, 3)); });
}

TEST(SegmentPool, MeanPoolForwardAndGradient) {
  Rng rng(9);
  Var a = make_param(random_matrix(5, 2, rng));
  const std::vector<std::uint32_t> seg{0, 0, 0, 1, 1};
  Var pooled = segment_mean_pool_rows(a, seg, 2);
  EXPECT_NEAR(pooled->value.at(0, 0),
              (a->value.at(0, 0) + a->value.at(1, 0) + a->value.at(2, 0)) / 3,
              1e-12);
  a->zero_grad();
  gradcheck(a, [&] { return sum_all(segment_mean_pool_rows(a, seg, 2)); });
}

TEST(BatchedOps, CrossEntropyRowsMatchesSingleRow) {
  Rng rng(10);
  Matrix logits = random_matrix(1, 4, rng);
  Var a1 = make_param(logits);
  Var a2 = make_param(logits);
  Var single = cross_entropy(a1, 2);
  Var batched = cross_entropy_rows(a2, {2});
  EXPECT_DOUBLE_EQ(single->value.at(0, 0), batched->value.at(0, 0));
  backward(single);
  backward(batched);
  expect_bit_identical(a1->grad, a2->grad);
}

TEST(BatchedOps, CrossEntropyRowsGradient) {
  Rng rng(11);
  Var logits = make_param(random_matrix(3, 4, rng));
  gradcheck(logits, [&] { return cross_entropy_rows(logits, {1, 3, 0}); });
}

TEST(BatchedOps, FusedGatv2ScoresMatchesUnfusedChain) {
  Rng rng(12);
  Matrix hl = random_matrix(11, 6, rng);
  Matrix hr = random_matrix(11, 6, rng);
  Matrix at = random_matrix(6, 1, rng);
  Var hl1 = make_param(hl), hr1 = make_param(hr), at1 = make_param(at);
  Var hl2 = make_param(hl), hr2 = make_param(hr), at2 = make_param(at);
  Var unfused = matmul(leaky_relu(add(hl1, hr1)), at1);
  Var fused = gatv2_scores(hl2, hr2, at2);
  expect_bit_identical(unfused->value, fused->value);
  backward(sum_all(unfused));
  backward(sum_all(fused));
  expect_bit_identical(hl1->grad, hl2->grad);
  expect_bit_identical(hr1->grad, hr2->grad);
  expect_bit_identical(at1->grad, at2->grad);
}

TEST(BatchedOps, FusedScatterAddScaledMatchesUnfusedChain) {
  Rng rng(13);
  Matrix alpha = random_matrix(7, 1, rng);
  Matrix h = random_matrix(7, 5, rng);
  const std::vector<std::uint32_t> idx{0, 2, 2, 1, 3, 0, 3};
  Var al1 = make_param(alpha), h1 = make_param(h);
  Var al2 = make_param(alpha), h2 = make_param(h);
  Var unfused = scatter_add_rows(mul_rowwise(al1, h1), idx, 4);
  Var fused = scatter_add_scaled(al2, h2, idx, 4);
  expect_bit_identical(unfused->value, fused->value);
  backward(sum_all(unfused));
  backward(sum_all(fused));
  expect_bit_identical(al1->grad, al2->grad);
  expect_bit_identical(h1->grad, h2->grad);
}

TEST(BatchedOps, GatheredGatv2ScoresMatchesGatherThenScore) {
  Rng rng(16);
  Matrix hl = random_matrix(6, 5, rng);
  Matrix hr = random_matrix(6, 5, rng);
  Matrix at = random_matrix(5, 1, rng);
  const std::vector<std::uint32_t> dst{0, 1, 5, 5, 2};
  const std::vector<std::uint32_t> src{3, 3, 0, 4, 1};
  Var hl1 = make_param(hl), hr1 = make_param(hr), at1 = make_param(at);
  Var hl2 = make_param(hl), hr2 = make_param(hr), at2 = make_param(at);
  Var two_step =
      gatv2_scores(gather_rows(hl1, dst), gather_rows(hr1, src), at1);
  Var fused = gatv2_scores_gathered(hl2, dst, hr2, src, at2);
  expect_bit_identical(two_step->value, fused->value);
  backward(sum_all(two_step));
  backward(sum_all(fused));
  expect_bit_identical(hl1->grad, hl2->grad);
  expect_bit_identical(hr1->grad, hr2->grad);
  expect_bit_identical(at1->grad, at2->grad);
}

TEST(BatchedOps, GatheredScatterAddScaledMatchesGatherThenScatter) {
  Rng rng(17);
  Matrix alpha = random_matrix(5, 1, rng);
  Matrix h = random_matrix(6, 4, rng);
  const std::vector<std::uint32_t> src{3, 3, 0, 4, 1};
  const std::vector<std::uint32_t> dst{0, 1, 2, 2, 1};
  Var al1 = make_param(alpha), h1 = make_param(h);
  Var al2 = make_param(alpha), h2 = make_param(h);
  Var two_step = scatter_add_scaled(al1, gather_rows(h1, src), dst, 3);
  Var fused = scatter_add_scaled_gathered(al2, h2, src, dst, 3);
  expect_bit_identical(two_step->value, fused->value);
  backward(sum_all(two_step));
  backward(sum_all(fused));
  expect_bit_identical(al1->grad, al2->grad);
  expect_bit_identical(h1->grad, h2->grad);
}

TEST(BatchedOps, FusedBiasEluMatchesUnfusedChain) {
  Rng rng(14);
  Matrix a = random_matrix(9, 4, rng);
  Matrix bias = random_matrix(1, 4, rng);
  Var a1 = make_param(a), b1 = make_param(bias);
  Var a2 = make_param(a), b2 = make_param(bias);
  Var unfused = elu(add_row_broadcast(a1, b1));
  Var fused = bias_elu(a2, b2);
  expect_bit_identical(unfused->value, fused->value);
  backward(sum_all(unfused));
  backward(sum_all(fused));
  // The fused backward derives elu' from the stored expm1 output
  // instead of recomputing exp — values agree to 1 ulp, not bit-exactly.
  for (std::size_t i = 0; i < a1->grad.size(); ++i) {
    EXPECT_NEAR(a1->grad.data()[i], a2->grad.data()[i], 1e-14);
  }
  for (std::size_t i = 0; i < b1->grad.size(); ++i) {
    EXPECT_NEAR(b1->grad.data()[i], b2->grad.data()[i], 1e-14);
  }
}

TEST(BatchedOps, AddNMatchesAddChain) {
  Rng rng(18);
  Matrix m0 = random_matrix(5, 4, rng);
  Matrix m1 = random_matrix(5, 4, rng);
  Matrix m2 = random_matrix(5, 4, rng);
  Var a0 = make_param(m0), a1 = make_param(m1), a2 = make_param(m2);
  Var b0 = make_param(m0), b1 = make_param(m1), b2 = make_param(m2);
  Var chain = add(add(a0, a1), a2);
  Var fused = add_n({b0, b1, b2});
  expect_bit_identical(chain->value, fused->value);
  backward(sum_all(chain));
  backward(sum_all(fused));
  expect_bit_identical(a0->grad, b0->grad);
  expect_bit_identical(a1->grad, b1->grad);
  expect_bit_identical(a2->grad, b2->grad);
}

TEST(BatchedOps, NoGradGuardSkipsTape) {
  Rng rng(15);
  Var a = make_param(random_matrix(3, 3, rng));
  Var b = make_param(random_matrix(3, 3, rng));
  NoGradGuard guard;
  Var c = matmul(a, b);
  EXPECT_FALSE(c->requires_grad);
  EXPECT_TRUE(c->parents.empty());
}

// ---- graph mini-batching ----------------------------------------------------

programl::ProgramGraph tiny_graph(std::uint32_t t0, std::uint32_t t1,
                                  bool with_call = false) {
  programl::ProgramGraph g;
  g.nodes.push_back({programl::NodeType::Control, t0, "a"});
  g.nodes.push_back({programl::NodeType::Control, t1, "b"});
  g.nodes.push_back({programl::NodeType::Variable, 3, "v"});
  g.edges[0].push_back({0, 1});
  g.edges[1].push_back({2, 0});
  g.edges[1].push_back({2, 1});
  if (with_call) g.edges[2].push_back({0, 1});
  return g;
}

GnnConfig tiny_config() {
  GnnConfig cfg;
  cfg.embed_dim = 8;
  cfg.layers = {16, 8};
  cfg.fc_hidden = 8;
  cfg.classes = 2;
  cfg.epochs = 5;
  cfg.lr = 0.01;
  return cfg;
}

TEST(GraphBatch, DisjointUnionLayout) {
  std::vector<programl::ProgramGraph> graphs{tiny_graph(1, 2),
                                             tiny_graph(4, 5, true)};
  const programl::GraphBatch b = programl::make_batch(graphs);
  ASSERT_EQ(b.size, 2u);
  ASSERT_EQ(b.num_nodes(), 6u);
  EXPECT_EQ(b.tokens[0], 1u);
  EXPECT_EQ(b.tokens[3], 4u);
  EXPECT_EQ(b.segments, (std::vector<std::uint32_t>{0, 0, 0, 1, 1, 1}));
  // Second member's edges are offset by the first member's node count.
  ASSERT_EQ(b.edges[0].size(), 2u);
  EXPECT_EQ(b.edges[0][1].src, 3u);
  EXPECT_EQ(b.edges[0][1].dst, 4u);
  ASSERT_EQ(b.edges[2].size(), 1u);
  EXPECT_EQ(b.edges[2][0].src, 3u);
}

TEST(GraphBatch, BatchedForwardMatchesPerGraphForwards) {
  GnnModel model(tiny_config());
  std::vector<programl::ProgramGraph> graphs{
      tiny_graph(1, 2), tiny_graph(9, 10, true), tiny_graph(20, 21)};
  const programl::GraphBatch batch = programl::make_batch(graphs);
  Var batched = model.forward(batch);
  ASSERT_EQ(batched->value.rows(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    Var single = model.forward(graphs[i]);
    for (std::size_t j = 0; j < single->value.cols(); ++j) {
      EXPECT_NEAR(single->value.at(0, j), batched->value.at(i, j), 1e-9)
          << "graph " << i << " logit " << j;
    }
  }
}

TEST(GraphBatch, BatchedPredictProbaMatchesPerGraph) {
  GnnModel model(tiny_config());
  std::vector<programl::ProgramGraph> graphs;
  for (int i = 0; i < 7; ++i) {
    graphs.push_back(tiny_graph(static_cast<std::uint32_t>(2 * i),
                                static_cast<std::uint32_t>(2 * i + 1),
                                i % 2 == 0));
  }
  const auto batched = model.predict_proba(
      std::span<const programl::ProgramGraph>(graphs));
  ASSERT_EQ(batched.size(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto single = model.predict_proba(graphs[i]);
    ASSERT_EQ(single.size(), batched[i].size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_NEAR(single[j], batched[i][j], 1e-12);
    }
  }
}

TEST(GraphBatch, BatchedTrainingLearns) {
  GnnConfig cfg = tiny_config();
  cfg.batch_size = 4;
  cfg.epochs = 30;
  GnnModel model(cfg);
  std::vector<programl::ProgramGraph> graphs;
  std::vector<std::size_t> labels;
  for (int i = 0; i < 8; ++i) {
    graphs.push_back(tiny_graph(10, 11));
    labels.push_back(0);
    graphs.push_back(tiny_graph(20, 21));
    labels.push_back(1);
  }
  model.fit(graphs, labels);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    correct += (model.predict(graphs[i]) == labels[i]);
  }
  EXPECT_EQ(correct, graphs.size());
}

TEST(GraphBatch, MixedRelationPresence) {
  // One member has call edges, the other does not: the relation runs
  // over the union, and the edge-less member's logits must still match
  // its single-graph forward.
  GnnModel model(tiny_config());
  std::vector<programl::ProgramGraph> graphs{tiny_graph(1, 2, true),
                                             tiny_graph(5, 6, false)};
  const programl::GraphBatch batch = programl::make_batch(graphs);
  Var batched = model.forward(batch);
  Var alone = model.forward(graphs[1]);
  for (std::size_t j = 0; j < alone->value.cols(); ++j) {
    EXPECT_NEAR(alone->value.at(0, j), batched->value.at(1, j), 1e-9);
  }
}

// ---- batch edge cases -------------------------------------------------------

TEST(GraphBatchEdge, EmptyBatchIsWellFormed) {
  const programl::GraphBatch b =
      programl::make_batch(std::span<const programl::ProgramGraph>{});
  EXPECT_EQ(b.size, 0u);
  EXPECT_EQ(b.num_nodes(), 0u);
  EXPECT_TRUE(b.tokens.empty());
  EXPECT_TRUE(b.segments.empty());
  for (const auto& edges : b.edges) EXPECT_TRUE(edges.empty());
}

TEST(GraphBatchEdge, SingleNodeGraphSurvivesBatchAndInference) {
  programl::ProgramGraph g;
  g.nodes.push_back({programl::NodeType::Control, 1, "entry"});
  // No edges at all: the batch and the model must handle an isolated
  // node (message passing contributes nothing; pooling sees one row).
  const programl::GraphBatch b =
      programl::make_batch(std::span(&g, 1));
  ASSERT_EQ(b.size, 1u);
  ASSERT_EQ(b.num_nodes(), 1u);
  EXPECT_EQ(b.segments, (std::vector<std::uint32_t>{0}));

  GnnModel model(tiny_config());
  const Var batched = model.forward(b);
  ASSERT_EQ(batched->value.rows(), 1u);
  const Var single = model.forward(g);
  for (std::size_t j = 0; j < single->value.cols(); ++j) {
    EXPECT_NEAR(single->value.at(0, j), batched->value.at(0, j), 1e-12);
  }
  const auto proba = model.predict_proba(g);
  ASSERT_EQ(proba.size(), 2u);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

TEST(GraphBatchEdge, MixedSingleNodeAndRealGraphsAgreeWithPerGraph) {
  programl::ProgramGraph lone;
  lone.nodes.push_back({programl::NodeType::Variable, 7, "x"});
  std::vector<programl::ProgramGraph> graphs{tiny_graph(1, 2), lone,
                                             tiny_graph(4, 5, true)};
  GnnModel model(tiny_config());
  const programl::GraphBatch batch = programl::make_batch(graphs);
  const Var batched = model.forward(batch);
  ASSERT_EQ(batched->value.rows(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Var single = model.forward(graphs[i]);
    for (std::size_t j = 0; j < single->value.cols(); ++j) {
      EXPECT_NEAR(single->value.at(0, j), batched->value.at(i, j), 1e-9)
          << "graph " << i;
    }
  }
}

}  // namespace
}  // namespace mpidetect::ml

// ---- batched detector entry point ------------------------------------------

namespace mpidetect::core {
namespace {

TEST(GnnDetectorRun, BatchedRunMatchesPerCaseEvaluate) {
  datasets::MbiConfig mcfg;
  mcfg.scale = 0.01;
  const datasets::Dataset ds = datasets::generate_mbi(mcfg);

  DetectorConfig cfg;
  cfg.gnn.cfg.embed_dim = 8;
  cfg.gnn.cfg.layers = {16, 8};
  cfg.gnn.cfg.fc_hidden = 8;
  cfg.gnn.cfg.epochs = 2;
  cfg.gnn.cfg.infer_batch = 4;
  cfg.cache = std::make_shared<EncodingCache>();
  GnnDetector det(cfg);

  EvalEngine engine(1, cfg.cache);
  engine.fit_full(det, ds);

  const auto batched = det.run(ds.cases);
  ASSERT_EQ(batched.size(), ds.size());
  // The engine's per-case sweep and the batched run must agree verdict
  // for verdict (same outcome, same confidence).
  const auto swept = engine.sweep(det, ds);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(batched[i].outcome, swept.verdicts[i].outcome) << "case " << i;
    ASSERT_TRUE(batched[i].confidence.has_value());
    ASSERT_TRUE(swept.verdicts[i].confidence.has_value());
    EXPECT_NEAR(*batched[i].confidence, *swept.verdicts[i].confidence, 1e-12);
  }
}

TEST(GnnDetectorRun, AdHocBatchesDoNotAccumulateSpillFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("mpidetect_spill_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  datasets::MbiConfig mcfg;
  mcfg.scale = 0.01;
  const datasets::Dataset ds = datasets::generate_mbi(mcfg);

  DetectorConfig cfg;
  cfg.gnn.cfg.embed_dim = 8;
  cfg.gnn.cfg.layers = {16, 8};
  cfg.gnn.cfg.fc_hidden = 8;
  cfg.gnn.cfg.epochs = 1;
  cfg.cache = std::make_shared<EncodingCache>();
  cfg.cache->set_spill_dir(dir.string());
  GnnDetector det(cfg);
  EvalEngine engine(1, cfg.cache);
  engine.fit_full(det, ds);

  const auto count_files = [&] {
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      (void)e;
      ++n;
    }
    return n;
  };
  const std::size_t before = count_files();
  // Ad-hoc subsets have their own content fingerprint; their spill
  // files must be cleaned up with the in-memory entry when run()
  // discards the batch.
  (void)det.run(std::span<const datasets::Case>(ds.cases).subspan(0, 3));
  (void)det.run(std::span<const datasets::Case>(ds.cases).subspan(2, 4));
  EXPECT_EQ(count_files(), before);
  fs::remove_all(dir);
}

TEST(GnnDetectorRun, UnfittedThrows) {
  GnnDetector det;
  datasets::MbiConfig mcfg;
  mcfg.scale = 0.01;
  const datasets::Dataset ds = datasets::generate_mbi(mcfg);
  EXPECT_THROW(det.run(ds.cases), ContractViolation);
}

}  // namespace
}  // namespace mpidetect::core
