// Differential fuzz harness coverage: seed-tuple round trips, repro
// corpus persistence (including corrupt-file rejection), campaign
// determinism, the simulator oracle, and greedy shrinking.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/fuzzer.hpp"
#include "io/serialize.hpp"
#include "support/check.hpp"

namespace mpidetect::core {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;

  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("mpidetect_fuzz_") + info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const char* name) const { return (path / name).string(); }
};

FuzzConfig quick_config() {
  FuzzConfig cfg;
  cfg.runs = 40;
  cfg.schedules = 3;
  // The two sweeping dynamic tools dominate runtime; the deterministic
  // ones cover the cross-check path.
  cfg.detectors = {"itac", "must"};
  return cfg;
}

FuzzTuple race_tuple() {
  FuzzTuple t;
  t.template_id = "master_worker";
  t.inject = datasets::Inject::WildcardRace;
  t.size_class = 2;
  t.program_seed = 1;
  t.schedule_seed = 5;
  return t;
}

// ----------------------------------------------------------- seed tuples

TEST(FuzzTuple, ToStringParseRoundTrip) {
  FuzzTuple t = race_tuple();
  t.nprocs = 3;
  t.opt = passes::OptLevel::Os;
  const auto parsed = FuzzTuple::parse(t.to_string());
  ASSERT_TRUE(parsed.has_value()) << t.to_string();
  EXPECT_TRUE(*parsed == t);
}

TEST(FuzzTuple, DroppedStatementsRoundTripThroughStringAndRecord) {
  FuzzTuple t = race_tuple();
  t.dropped = {2, 5, 11};
  const auto parsed = FuzzTuple::parse(t.to_string());
  ASSERT_TRUE(parsed.has_value()) << t.to_string();
  EXPECT_TRUE(*parsed == t);
  EXPECT_TRUE(FuzzTuple::from_record(t.to_record()) == t);
  // Drop lists must be strictly increasing.
  EXPECT_FALSE(FuzzTuple::parse("tpl=ring,drop=3.3").has_value());
  EXPECT_FALSE(FuzzTuple::parse("tpl=ring,drop=5.2").has_value());
  EXPECT_FALSE(FuzzTuple::parse("tpl=ring,drop=1..2").has_value());
  EXPECT_FALSE(FuzzTuple::parse("tpl=ring,drop=x").has_value());
}

TEST(FuzzTuple, ParseRejectsMalformedInput) {
  EXPECT_FALSE(FuzzTuple::parse("").has_value());
  EXPECT_FALSE(FuzzTuple::parse("garbage").has_value());
  EXPECT_FALSE(FuzzTuple::parse("inject=BadTag").has_value());  // no tpl
  EXPECT_FALSE(FuzzTuple::parse("tpl=ring,inject=NoSuchInject").has_value());
  EXPECT_FALSE(FuzzTuple::parse("tpl=ring,opt=O9").has_value());
  EXPECT_FALSE(FuzzTuple::parse("tpl=ring,size=7").has_value());
  EXPECT_FALSE(FuzzTuple::parse("tpl=ring,pseed=12x").has_value());
  EXPECT_FALSE(FuzzTuple::parse("tpl=ring,unknown=1").has_value());
}

TEST(FuzzTuple, RecordRoundTrip) {
  FuzzTuple t = race_tuple();
  t.opt = passes::OptLevel::O2;
  EXPECT_TRUE(FuzzTuple::from_record(t.to_record()) == t);
}

// ---------------------------------------------------------- repro corpus

TEST(FuzzCorpus, SaveLoadRoundTrip) {
  TempDir dir;
  std::vector<io::FuzzRecord> records;
  for (int i = 0; i < 3; ++i) {
    FuzzTuple t = race_tuple();
    t.program_seed = static_cast<std::uint64_t>(i);
    io::FuzzRecord r = t.to_record();
    r.detector = "simulator";
    r.divergence_kind = static_cast<std::uint8_t>(DivergenceKind::FalsePositive);
    r.detail = "message-race";
    records.push_back(std::move(r));
  }
  const std::string path = dir.file("corpus.mpfz");
  io::save_fuzz_corpus(path, records);
  const auto loaded = io::load_fuzz_corpus(path);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(loaded[i] == records[i]) << i;
  }
}

TEST(FuzzCorpus, CorruptFilesAreRejectedWithFormatError) {
  TempDir dir;
  FuzzTuple t = race_tuple();
  io::FuzzRecord rec = t.to_record();
  const std::string path = dir.file("corpus.mpfz");
  io::save_fuzz_corpus(path, std::span(&rec, 1));

  // Every single-byte corruption must either load to a valid corpus or
  // throw FormatError — never crash, loop, or mis-size an allocation.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(bytes.empty());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    const std::string mpath = dir.file("mutated.mpfz");
    std::ofstream(mpath, std::ios::binary).write(mutated.data(),
                                                 static_cast<std::streamsize>(
                                                     mutated.size()));
    try {
      (void)io::load_fuzz_corpus(mpath);
    } catch (const io::FormatError&) {
      // expected for most mutations
    }
  }

  // Truncations likewise.
  for (const std::size_t len : {0ul, 3ul, 8ul, bytes.size() - 1}) {
    const std::string tpath = dir.file("truncated.mpfz");
    std::ofstream(tpath, std::ios::binary)
        .write(bytes.data(), static_cast<std::streamsize>(len));
    EXPECT_THROW((void)io::load_fuzz_corpus(tpath), io::FormatError) << len;
  }

  // Trailing bytes are corruption too.
  const std::string xpath = dir.file("trailing.mpfz");
  std::ofstream(xpath, std::ios::binary)
      .write((bytes + "junk").data(),
             static_cast<std::streamsize>(bytes.size() + 4));
  EXPECT_THROW((void)io::load_fuzz_corpus(xpath), io::FormatError);

  EXPECT_THROW((void)io::load_fuzz_corpus(dir.file("absent.mpfz")),
               io::FormatError);
}

TEST(FuzzCorpus, UnknownTemplateIdIsRejected) {
  TempDir dir;
  io::FuzzRecord rec = race_tuple().to_record();
  rec.template_id = "no_such_template";
  const std::string path = dir.file("corpus.mpfz");
  io::save_fuzz_corpus(path, std::span(&rec, 1));
  EXPECT_THROW((void)io::load_fuzz_corpus(path), io::FormatError);
}

// -------------------------------------------------------------- fuzzer

TEST(Fuzzer, CampaignIsDeterministicForAFixedConfig) {
  // Everything except the wall-clock line must be byte-identical.
  const auto stable_json = [](const FuzzReport& r) {
    std::string s = r.to_json();
    const auto from = s.find("\"wall_seconds\"");
    const auto to = s.find('\n', from);
    return s.erase(from, to - from);
  };
  DifferentialFuzzer a(quick_config());
  DifferentialFuzzer b(quick_config());
  EXPECT_EQ(stable_json(a.run()), stable_json(b.run()));
}

// Integration oracle: the templates, the lowering, the optimiser and
// the simulator agree on every drawn case — no false positives on
// fault-free programs, no nondeterminism, no detector crashes.
TEST(Fuzzer, QuickCampaignIsDivergenceFree) {
  DifferentialFuzzer fuzzer(quick_config());
  const FuzzReport report = fuzzer.run();
  EXPECT_EQ(report.runs, quick_config().runs);
  for (const auto& d : report.divergences) {
    ADD_FAILURE() << divergence_kind_name(d.kind) << " [" << d.detector
                  << "] " << d.detail << " at " << d.tuple.to_string();
  }
  // Every drawn injection class is tallied.
  std::size_t tallied = 0;
  for (const auto& [name, stats] : report.per_inject) {
    (void)name;
    tallied += static_cast<std::size_t>(stats.runs);
  }
  EXPECT_EQ(tallied, static_cast<std::size_t>(report.runs));
}

TEST(Fuzzer, ForcedDrawPinsTheInjection) {
  DifferentialFuzzer fuzzer(quick_config());
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    const FuzzTuple t =
        fuzzer.draw(rng, datasets::Inject::WildcardRace);
    EXPECT_EQ(t.inject, datasets::Inject::WildcardRace);
    const auto* tpl = datasets::find_template(t.template_id);
    ASSERT_NE(tpl, nullptr);
    EXPECT_NE(std::find(tpl->supported.begin(), tpl->supported.end(),
                        t.inject),
              tpl->supported.end());
  }
}

TEST(Fuzzer, BuildCaseRejectsUnknownTemplates) {
  DifferentialFuzzer fuzzer(quick_config());
  FuzzTuple t = race_tuple();
  t.template_id = "no_such_template";
  EXPECT_THROW((void)fuzzer.build_case(t), ContractViolation);
}

TEST(Fuzzer, SignatureSeesTheInjectedRace) {
  DifferentialFuzzer fuzzer(quick_config());
  EXPECT_EQ(fuzzer.signature(race_tuple()), "message-race");
}

TEST(Fuzzer, ShrinkPreservesTheSignatureWhileReducing) {
  DifferentialFuzzer fuzzer(quick_config());
  const FuzzTuple t = race_tuple();
  const std::string sig = fuzzer.signature(t);
  ASSERT_FALSE(sig.empty());
  const FuzzTuple shrunk = fuzzer.shrink(t, sig);
  EXPECT_LE(shrunk.size_class, t.size_class);
  // The size-2 filler phases shrink away for this template.
  EXPECT_EQ(shrunk.size_class, 0);
  // Statement drops are recorded in the tuple itself, so the minimal
  // repro replays from its printed form alone.
  EXPECT_FALSE(shrunk.dropped.empty());
  EXPECT_TRUE(std::is_sorted(shrunk.dropped.begin(), shrunk.dropped.end()));
  EXPECT_EQ(fuzzer.signature(shrunk), sig);
  const auto reparsed = FuzzTuple::parse(shrunk.to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(*reparsed == shrunk);
  EXPECT_EQ(fuzzer.signature(*reparsed), sig);
}

TEST(Fuzzer, DivergentCampaignPersistsACorpus) {
  TempDir dir;
  FuzzConfig cfg = quick_config();
  cfg.runs = 0;  // no draws; we inject the check by hand
  cfg.corpus_path = dir.file("divergences.mpfz");
  DifferentialFuzzer fuzzer(cfg);
  FuzzReport report;
  report.config = cfg;
  // A race-injected tuple mislabeled as fault-free must diverge — this
  // exercises the same path a real false positive takes.
  FuzzTuple t = race_tuple();
  datasets::Case c = fuzzer.build_case(t);
  ASSERT_TRUE(c.incorrect);
  const std::string sig = fuzzer.signature(t);
  ASSERT_EQ(sig, "message-race");
  Divergence d;
  d.kind = DivergenceKind::FalsePositive;
  d.detector = "simulator";
  d.tuple = t;
  d.shrunk = fuzzer.shrink(t, sig);
  d.detail = sig;
  report.divergences.push_back(d);
  io::save_fuzz_corpus(cfg.corpus_path,
                       std::vector<io::FuzzRecord>{
                           [&] {
                             io::FuzzRecord r = d.shrunk.to_record();
                             r.detector = d.detector;
                             r.divergence_kind =
                                 static_cast<std::uint8_t>(d.kind);
                             r.detail = d.detail;
                             return r;
                           }()});
  const auto loaded = io::load_fuzz_corpus(cfg.corpus_path);
  ASSERT_EQ(loaded.size(), 1u);
  const FuzzTuple back = FuzzTuple::from_record(loaded.front());
  // The reloaded tuple reproduces the divergence bit-for-bit.
  EXPECT_EQ(fuzzer.signature(back), sig);
}

// ------------------------------------------------- widened MPI surface

struct WidenedPick {
  const char* tpl;
  datasets::Inject inject;
};

constexpr WidenedPick kWidenedPicks[] = {
    {"nbc_coll", datasets::Inject::NbcMismatch},
    {"nbc_coll", datasets::Inject::NbcRootMismatch},
    {"nbc_coll", datasets::Inject::NbcMissingWait},
    {"nbc_coll", datasets::Inject::NbcWriteBeforeWait},
    {"sendrecv_ring", datasets::Inject::SendrecvCycleBlocking},
    {"probe_poll", datasets::Inject::ProbeWildcardRace},
    {"waitany_pool", datasets::Inject::WaitanyInvalidRequest},
    {"thread_pingpong", datasets::Inject::ThreadRace},
};

FuzzTuple widened_tuple(const WidenedPick& pick) {
  FuzzTuple t;
  t.template_id = pick.tpl;
  t.inject = pick.inject;
  t.size_class = 1;
  t.program_seed = 3;
  t.schedule_seed = 2;
  return t;
}

TEST(FuzzTuple, WidenedInjectsRoundTripThroughStringAndRecord) {
  for (const WidenedPick& pick : kWidenedPicks) {
    const FuzzTuple t = widened_tuple(pick);
    const auto parsed = FuzzTuple::parse(t.to_string());
    ASSERT_TRUE(parsed.has_value()) << t.to_string();
    EXPECT_TRUE(*parsed == t) << t.to_string();
    EXPECT_TRUE(FuzzTuple::from_record(t.to_record()) == t) << t.to_string();
  }
}

TEST(Fuzzer, ForcedDrawReachesEveryWidenedInject) {
  // Every widened injection must be drawable: the fuzzer's inject range
  // extends to kLastInject and at least one template supports each.
  DifferentialFuzzer fuzzer(quick_config());
  Rng rng(17);
  for (const WidenedPick& pick : kWidenedPicks) {
    const FuzzTuple t = fuzzer.draw(rng, pick.inject);
    EXPECT_EQ(t.inject, pick.inject);
    const auto* tpl = datasets::find_template(t.template_id);
    ASSERT_NE(tpl, nullptr) << t.template_id;
    EXPECT_NE(std::find(tpl->supported.begin(), tpl->supported.end(),
                        t.inject),
              tpl->supported.end())
        << t.to_string();
  }
}

TEST(Fuzzer, WidenedSignaturesAreNonEmptyAndReplayStable) {
  // Each widened injection produces a simulator-visible divergence
  // signature, and rebuilding the case from the printed tuple
  // reproduces it exactly — the property every committed repro
  // corpus relies on.
  DifferentialFuzzer fuzzer(quick_config());
  for (const WidenedPick& pick : kWidenedPicks) {
    const FuzzTuple t = widened_tuple(pick);
    const std::string sig = fuzzer.signature(t);
    EXPECT_FALSE(sig.empty()) << t.to_string();
    const auto reparsed = FuzzTuple::parse(t.to_string());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(fuzzer.signature(*reparsed), sig) << t.to_string();
  }
}

TEST(Fuzzer, WidenedCorrectVariantsHaveNoSignature) {
  // The clean variant of every widened template is divergence-free:
  // no finding kind, no bad outcome, under the sweeping detectors.
  DifferentialFuzzer fuzzer(quick_config());
  for (const char* tpl : {"nbc_coll", "sendrecv_ring", "probe_poll",
                          "waitany_pool", "thread_pingpong"}) {
    FuzzTuple t;
    t.template_id = tpl;
    t.inject = datasets::Inject::None;
    t.size_class = 1;
    t.program_seed = 3;
    t.schedule_seed = 2;
    EXPECT_EQ(fuzzer.signature(t), "") << tpl;
  }
}

}  // namespace
}  // namespace mpidetect::core
