// Streamed-vs-in-memory equivalence properties: every streaming
// protocol (sweep_stream, kfold_stream, cross_stream) must reproduce
// its in-memory counterpart BIT-IDENTICALLY — same verdict outcomes,
// predicted labels, IEEE-754-identical confidences, same confusion
// matrices and per-label tallies — whether the cases come from a
// wrapped in-memory dataset or from .mpcs shards on disk. Out-of-core
// is a residency optimization, never a results change.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/eval_engine.hpp"
#include "corpus/corpus.hpp"
#include "datasets/spec.hpp"
#include "ir2vec/normalize.hpp"
#include "support/check.hpp"

namespace mpidetect {
namespace {

namespace fs = std::filesystem;

/// Unique per-test scratch directory, removed on destruction.
struct TempDir {
  fs::path path;

  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("mpidetect_ceval_") + info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Shards `ds` with a small per-shard cap so streamed runs cross shard
/// boundaries, and returns a validated reader over it.
std::unique_ptr<corpus::CorpusReader> shard(const fs::path& dir,
                                            const datasets::Dataset& ds) {
  corpus::WriterOptions opts;
  opts.max_cases_per_shard = 16;
  corpus::CorpusWriter w(dir, opts);
  for (const auto& c : ds.cases) w.add(c);
  const auto stats = w.finish();
  EXPECT_GT(stats.shards, 1u);
  return std::make_unique<corpus::CorpusReader>(dir);
}

core::DetectorConfig tiny_config() {
  core::DetectorConfig cfg;
  cfg.ir2vec.use_ga = false;
  cfg.gnn.cfg.embed_dim = 8;
  cfg.gnn.cfg.layers = {16, 8};
  cfg.gnn.cfg.fc_hidden = 8;
  cfg.gnn.cfg.epochs = 2;
  return cfg;
}

void expect_identical_reports(const core::EvalReport& a,
                              const core::EvalReport& b,
                              const char* what) {
  EXPECT_EQ(a.confusion.tp, b.confusion.tp) << what;
  EXPECT_EQ(a.confusion.tn, b.confusion.tn) << what;
  EXPECT_EQ(a.confusion.fp, b.confusion.fp) << what;
  EXPECT_EQ(a.confusion.fn, b.confusion.fn) << what;
  EXPECT_EQ(a.confusion.ce, b.confusion.ce) << what;
  EXPECT_EQ(a.confusion.to, b.confusion.to) << what;
  EXPECT_EQ(a.confusion.re, b.confusion.re) << what;
  EXPECT_EQ(a.per_label, b.per_label) << what;
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size()) << what;
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(a.verdicts[i].outcome, b.verdicts[i].outcome)
        << what << " case " << i;
    EXPECT_EQ(a.verdicts[i].predicted_label, b.verdicts[i].predicted_label)
        << what << " case " << i;
    // Bit-identical, not approximately equal: streaming must not change
    // a single float anywhere in the pipeline.
    EXPECT_EQ(a.verdicts[i].confidence, b.verdicts[i].confidence)
        << what << " case " << i;
  }
}

// ---- sweep ------------------------------------------------------------------

TEST(CorpusEval, StreamedSweepMatchesInMemory) {
  TempDir tmp;
  const auto ds = datasets::make_dataset("mbi:0.05@17");
  const auto reader = shard(tmp.path / "c", ds);
  const corpus::DatasetSource wrapped(ds);

  for (const char* key : {"parcoach", "mpi-checker", "itac"}) {
    core::EvalEngine mem_engine(2), stream_engine(2);
    auto det = core::DetectorRegistry::global().create(key);
    const auto in_memory = mem_engine.sweep(*det, ds);
    // Tiny window to force many refill cycles; from a wrapped dataset
    // and from real shards alike.
    core::StreamOptions sopts;
    sopts.window = 5;
    const auto via_wrap = stream_engine.sweep_stream(*det, wrapped, sopts);
    const auto via_disk = stream_engine.sweep_stream(*det, *reader, sopts);
    expect_identical_reports(in_memory, via_wrap, key);
    expect_identical_reports(in_memory, via_disk, key);
  }
}

// ---- k-fold -----------------------------------------------------------------

void check_kfold_equivalence(const char* key, const core::DetectorConfig& cfg,
                             int folds) {
  TempDir tmp;
  const auto ds = datasets::make_dataset("mbi:0.05@23");
  const auto reader = shard(tmp.path / "c", ds);
  const corpus::DatasetSource wrapped(ds);

  auto& registry = core::DetectorRegistry::global();
  core::EvalOptions opts = registry.create(key, cfg)->eval_defaults();
  opts.folds = folds;
  // The one knob that aligns the protocols: hashed fold assignment is
  // available in-memory precisely so the streamed path is comparable.
  opts.hash_folds = true;

  core::EvalEngine mem_engine(2);
  auto mem_det = registry.create(key, cfg);
  const auto in_memory = mem_engine.kfold(*mem_det, ds, opts);

  core::StreamOptions sopts;
  sopts.window = 7;
  core::EvalEngine stream_engine(2);
  auto wrap_det = registry.create(key, cfg);
  const auto via_wrap =
      stream_engine.kfold_stream(*wrap_det, wrapped, opts, sopts);
  auto disk_det = registry.create(key, cfg);
  const auto via_disk =
      stream_engine.kfold_stream(*disk_det, *reader, opts, sopts);

  expect_identical_reports(in_memory, via_wrap, key);
  expect_identical_reports(in_memory, via_disk, key);
}

TEST(CorpusEval, StreamedKfoldMatchesHashedKfoldIr2vec) {
  check_kfold_equivalence("ir2vec", tiny_config(), 4);
}

TEST(CorpusEval, StreamedKfoldMatchesHashedKfoldGnn) {
  check_kfold_equivalence("gnn", tiny_config(), 3);
}

TEST(CorpusEval, StreamedKfoldOfUntrainableDegeneratesToSweep) {
  TempDir tmp;
  const auto ds = datasets::make_dataset("mbi:0.05@29");
  const corpus::DatasetSource wrapped(ds);
  core::EvalEngine engine(2);
  auto det = core::DetectorRegistry::global().create("parcoach");
  const auto swept = engine.sweep_stream(*det, wrapped);
  auto report = engine.kfold_stream(*det, wrapped, det->eval_defaults());
  EXPECT_EQ(report.protocol, "kfold");
  expect_identical_reports(swept, report, "parcoach kfold degenerate");
}

// ---- cross ------------------------------------------------------------------

TEST(CorpusEval, StreamedCrossMatchesInMemory) {
  TempDir tmp;
  const auto train = datasets::make_dataset("mbi:0.05@31");
  const auto valid = datasets::make_dataset("corr:0.05@37");
  const auto train_reader = shard(tmp.path / "train", train);
  const auto valid_reader = shard(tmp.path / "valid", valid);

  auto& registry = core::DetectorRegistry::global();
  core::EvalEngine mem_engine(2);
  auto mem_det = registry.create("ir2vec", tiny_config());
  const auto in_memory = mem_engine.cross(*mem_det, train, valid);

  core::StreamOptions sopts;
  sopts.window = 9;
  core::EvalEngine stream_engine(2);
  auto disk_det = registry.create("ir2vec", tiny_config());
  const auto via_disk = stream_engine.cross_stream(*disk_det, *train_reader,
                                                   *valid_reader, sopts);
  expect_identical_reports(in_memory, via_disk, "ir2vec cross");
}

// ---- contract edges ---------------------------------------------------------

TEST(CorpusEval, MulticlassStreamingIsRejected) {
  const auto ds = datasets::make_dataset("mbi:0.02@41");
  const corpus::DatasetSource wrapped(ds);
  core::EvalEngine engine(2);
  auto det = core::DetectorRegistry::global().create("ir2vec", tiny_config());
  core::EvalOptions opts = det->eval_defaults();
  opts.multiclass = true;
  EXPECT_THROW(engine.kfold_stream(*det, wrapped, opts), ContractViolation);
}

TEST(CorpusEval, IndexNormalizationStreamingIsRejected) {
  const auto ds = datasets::make_dataset("mbi:0.02@43");
  const corpus::DatasetSource wrapped(ds);
  core::DetectorConfig cfg = tiny_config();
  // Index normalization standardizes over the WHOLE feature matrix —
  // inherently not streamable, and it must say so instead of silently
  // training a different model.
  cfg.normalization = ir2vec::Normalization::Index;
  core::EvalEngine engine(2);
  auto det = core::DetectorRegistry::global().create("ir2vec", cfg);
  EXPECT_THROW(engine.kfold_stream(*det, wrapped, det->eval_defaults()),
               ContractViolation);
}

}  // namespace
}  // namespace mpidetect
