#include <gtest/gtest.h>

#include <cmath>

#include "datasets/hypre.hpp"
#include "datasets/mbi.hpp"
#include "ir2vec/encoder.hpp"
#include "ir2vec/normalize.hpp"
#include "programl/graph.hpp"
#include "progmodel/lower.hpp"

namespace mpidetect {
namespace {

using datasets::generate_mbi;
using datasets::MbiConfig;

MbiConfig tiny() {
  MbiConfig cfg;
  cfg.scale = 0.01;
  return cfg;
}

double l2(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s);
}

// ----------------------------------------------------------------- ir2vec

TEST(Ir2vecVocab, DeterministicPerEntityAndSeed) {
  ir2vec::Vocabulary v1(7), v2(7), v3(8);
  EXPECT_EQ(v1.entity("opcode:add"), v2.entity("opcode:add"));
  EXPECT_NE(v1.entity("opcode:add"), v3.entity("opcode:add"));
  EXPECT_NE(v1.entity("opcode:add"), v1.entity("opcode:sub"));
}

TEST(Ir2vecVocab, DimensionsMatchPaper) {
  ir2vec::Vocabulary v;
  EXPECT_EQ(v.entity("anything").size(), ir2vec::kDim);
  EXPECT_EQ(ir2vec::kDim, 256u);
}

TEST(Ir2vecVocab, ConstantBuckets) {
  EXPECT_EQ(ir2vec::constant_bucket_name(-1), "neg");
  EXPECT_EQ(ir2vec::constant_bucket_name(0), "zero");
  EXPECT_EQ(ir2vec::constant_bucket_name(1), "one");
  EXPECT_EQ(ir2vec::constant_bucket_name(8), "small");
  EXPECT_EQ(ir2vec::constant_bucket_name(100), "medium");
  EXPECT_EQ(ir2vec::constant_bucket_name(100000), "large");
}

TEST(Ir2vecEncoder, ConcatIs512AndDeterministic) {
  const auto ds = generate_mbi(tiny());
  ir2vec::Vocabulary vocab;
  const auto m = progmodel::lower(ds.cases.front().program);
  const auto v1 = ir2vec::encode_concat(*m, vocab);
  const auto v2 = ir2vec::encode_concat(*m, vocab);
  EXPECT_EQ(v1.size(), 512u);
  EXPECT_EQ(v1, v2);
}

TEST(Ir2vecEncoder, SymbolicAndFlowAwareDiffer) {
  const auto ds = generate_mbi(tiny());
  ir2vec::Vocabulary vocab;
  const auto m = progmodel::lower(ds.cases.front().program);
  const auto sym = ir2vec::encode_symbolic(*m, vocab);
  const auto flow = ir2vec::encode_flow_aware(*m, vocab);
  EXPECT_GT(l2(sym, flow), 1e-6);
}

TEST(Ir2vecEncoder, DifferentProgramsDifferentVectors) {
  const auto ds = generate_mbi(tiny());
  ir2vec::Vocabulary vocab;
  ASSERT_GE(ds.size(), 2u);
  const auto m1 = progmodel::lower(ds.cases[0].program);
  const auto m2 = progmodel::lower(ds.cases[1].program);
  EXPECT_GT(l2(ir2vec::encode_concat(*m1, vocab),
               ir2vec::encode_concat(*m2, vocab)),
            1e-6);
}

TEST(Ir2vecEncoder, VectorGrowsWithProgramSize) {
  // Without normalization, longer code => larger vector norm — the bias
  // the paper's normalization study addresses.
  using progmodel::Expr;
  using progmodel::Program;
  using progmodel::Stmt;
  Program small;
  small.main_body.push_back(Stmt::decl_int("x", Expr::lit(1)));
  small.main_body.push_back(Stmt::ret(Expr::ref("x")));
  Program big = small;
  for (int i = 0; i < 50; ++i) {
    big.main_body.insert(big.main_body.begin() + 1,
                         Stmt::assign("x", Expr::add(Expr::ref("x"),
                                                     Expr::lit(i))));
  }
  ir2vec::Vocabulary vocab;
  const auto vs = ir2vec::encode_concat(*progmodel::lower(small), vocab);
  const auto vb = ir2vec::encode_concat(*progmodel::lower(big), vocab);
  double ns = 0, nb = 0;
  for (const double x : vs) ns += x * x;
  for (const double x : vb) nb += x * x;
  EXPECT_GT(nb, ns * 4);
}

TEST(Ir2vecNormalize, VectorBoundsToUnitRange) {
  std::vector<double> v{-4.0, 2.0, 1.0};
  ir2vec::normalize_vector(v, ir2vec::Normalization::Vector);
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
  EXPECT_DOUBLE_EQ(v[2], 0.25);
}

TEST(Ir2vecNormalize, NoneIsIdentity) {
  std::vector<double> v{-4.0, 2.0};
  const auto copy = v;
  ir2vec::normalize_vector(v, ir2vec::Normalization::None);
  EXPECT_EQ(v, copy);
}

TEST(Ir2vecNormalize, IndexStandardizesEachCoordinate) {
  std::vector<std::vector<double>> rows{{1.0, 10.0}, {3.0, 30.0}};
  ir2vec::normalize_dataset(rows, ir2vec::Normalization::Index);
  // Each column has mean 0 after standardization.
  EXPECT_NEAR(rows[0][0] + rows[1][0], 0.0, 1e-12);
  EXPECT_NEAR(rows[0][1] + rows[1][1], 0.0, 1e-12);
}

TEST(Ir2vecNormalize, ZeroVarianceColumnSurvives) {
  std::vector<std::vector<double>> rows{{5.0}, {5.0}};
  EXPECT_NO_THROW(
      ir2vec::normalize_dataset(rows, ir2vec::Normalization::Index));
  EXPECT_DOUBLE_EQ(rows[0][0], 5.0);
}

// ---------------------------------------------------------------- programl

TEST(Programl, GraphHasThreeNodeAndEdgeTypes) {
  EXPECT_EQ(programl::kNumNodeTypes, 3u);
  EXPECT_EQ(programl::kNumEdgeTypes, 3u);
  EXPECT_EQ(programl::node_type_name(programl::NodeType::Variable),
            "variable");
  EXPECT_EQ(programl::edge_type_name(programl::EdgeType::Call), "call");
}

TEST(Programl, BuildsNonEmptyGraphWithAllRelations) {
  const auto pair = datasets::make_hypre();
  const auto m = progmodel::lower(pair.ok);
  const auto g = programl::build_graph(*m);
  EXPECT_GT(g.num_nodes(), 50u);
  EXPECT_FALSE(g.edges_of(programl::EdgeType::Control).empty());
  EXPECT_FALSE(g.edges_of(programl::EdgeType::Data).empty());
  // Hypre has user-defined callees: call edges exist.
  EXPECT_FALSE(g.edges_of(programl::EdgeType::Call).empty());
}

TEST(Programl, CallNodesCarryCalleeIdentity) {
  const auto ds = generate_mbi(tiny());
  const auto m = progmodel::lower(ds.cases.front().program);
  const auto g = programl::build_graph(*m);
  bool has_mpi_call = false;
  for (const auto& n : g.nodes) {
    if (n.text.rfind("call:MPI_", 0) == 0) has_mpi_call = true;
  }
  EXPECT_TRUE(has_mpi_call);
}

TEST(Programl, TokensWithinVocab) {
  const auto ds = generate_mbi(tiny());
  const auto m = progmodel::lower(ds.cases.front().program);
  const auto g = programl::build_graph(*m);
  for (const auto& n : g.nodes) EXPECT_LT(n.token, programl::kVocabSize);
}

TEST(Programl, EdgeEndpointsValid) {
  const auto ds = generate_mbi(tiny());
  for (const auto& c : ds.cases) {
    const auto m = progmodel::lower(c.program);
    const auto g = programl::build_graph(*m);
    for (std::size_t t = 0; t < programl::kNumEdgeTypes; ++t) {
      for (const auto& e : g.edges[t]) {
        EXPECT_LT(e.src, g.num_nodes());
        EXPECT_LT(e.dst, g.num_nodes());
      }
    }
  }
}

TEST(Programl, ConstantsAreSharedNodes) {
  // Interned constants map to one node each: fewer constant nodes than
  // constant uses.
  const auto ds = generate_mbi(tiny());
  const auto m = progmodel::lower(ds.cases.front().program);
  const auto g = programl::build_graph(*m);
  std::size_t const_nodes = 0;
  for (const auto& n : g.nodes) {
    const_nodes += (n.type == programl::NodeType::Constant);
  }
  EXPECT_GT(const_nodes, 0u);
  EXPECT_LT(const_nodes, g.edges_of(programl::EdgeType::Data).size());
}

TEST(Programl, DotExportMentionsNodes) {
  const auto ds = generate_mbi(tiny());
  const auto m = progmodel::lower(ds.cases.front().program);
  const auto g = programl::build_graph(*m);
  const std::string dot = programl::to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("call:MPI_Init"), std::string::npos);
}

TEST(Programl, DeterministicForSameModule) {
  const auto ds = generate_mbi(tiny());
  const auto m = progmodel::lower(ds.cases.front().program);
  const auto g1 = programl::build_graph(*m);
  const auto g2 = programl::build_graph(*m);
  ASSERT_EQ(g1.num_nodes(), g2.num_nodes());
  for (std::size_t i = 0; i < g1.num_nodes(); ++i) {
    EXPECT_EQ(g1.nodes[i].token, g2.nodes[i].token);
  }
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
}

}  // namespace
}  // namespace mpidetect
