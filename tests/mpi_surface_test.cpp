// Conformance wall for the widened simulated MPI surface: nonblocking
// collectives, Sendrecv/Probe/Iprobe, the Waitany family, and per-rank
// thread blocks. Each section pins the observable semantics (completion
// ordering, deadlock freedom, reported finding kinds) under both the
// deterministic round-robin schedule and 16-seed random sweeps, and the
// replay section asserts byte-identical RunReports for every widened
// template at fixed seeds.
//
// The "branch-poison" idiom used throughout: the program checks a
// scalar the new primitive wrote (Waitany index, Iprobe flag, Waitsome
// outcount) and, on the unexpected value, executes MPI_Barrier on an
// invalid communicator — an InvalidParam finding. A clean report
// therefore proves the primitive produced the expected value inside
// the simulated program itself.
#include <gtest/gtest.h>

#include "datasets/dataset.hpp"
#include "datasets/templates.hpp"
#include "mpi/api.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/sweep.hpp"
#include "progmodel/ast.hpp"
#include "progmodel/lower.hpp"

namespace mpidetect::mpisim {
namespace {

using mpi::Func;
using progmodel::Arg;
using progmodel::Expr;
using progmodel::HandleKind;
using progmodel::Program;
using progmodel::Stmt;
using E = Expr;
using S = Stmt;
using A = Arg;

constexpr std::int32_t kInt = static_cast<std::int32_t>(mpi::Datatype::Int);
constexpr std::int32_t kSum = static_cast<std::int32_t>(mpi::ReduceOp::Sum);
constexpr std::int32_t kW = mpi::kCommWorld;
// i32 element count safely above the eager threshold (4096 bytes), so
// sends block until matched and completion timing is schedule-driven.
constexpr int kRendezvous = 1200;

std::vector<Stmt> preamble() {
  std::vector<Stmt> v;
  v.push_back(S::decl_int("rank"));
  v.push_back(S::decl_int("size"));
  v.push_back(S::mpi(Func::Init, {}));
  v.push_back(S::mpi(Func::CommRank, {A::val(kW), A::addr("rank")}));
  v.push_back(S::mpi(Func::CommSize, {A::val(kW), A::addr("size")}));
  return v;
}

RunReport run_program(Program p, int nprocs,
                      std::uint64_t max_steps = 2'000'000) {
  const auto m = progmodel::lower(p);
  MachineConfig cfg;
  cfg.nprocs = nprocs;
  cfg.max_steps = max_steps;
  return run(*m, cfg);
}

ScheduleSweepReport sweep_program(const Program& p, int nprocs,
                                  std::uint64_t seed = 1,
                                  int schedules = 16) {
  const auto m = progmodel::lower(p);
  MachineConfig cfg;
  cfg.nprocs = nprocs;
  cfg.max_steps = 2'000'000;
  ScheduleSweepOptions opts;
  opts.schedules = schedules;
  opts.seed = seed;
  return sweep_schedules(*m, cfg, opts);
}

/// Poison statement: a diagnosable InvalidParam the program executes
/// only when a checked value is wrong (MPI_Barrier on MPI_COMM_NULL).
Stmt poison() { return S::mpi(Func::Barrier, {A::val(mpi::kCommNull)}); }

/// if (E != expect) poison;
Stmt expect_eq(const char* var, std::int64_t expect) {
  return S::if_(E::eq(E::ref(var), E::lit(expect)), {}, {poison()});
}

Stmt send_stmt(std::string buf, int count, Expr dest, int tag) {
  return S::mpi(Func::Send, {A::buf(std::move(buf)), A::val(count),
                             A::val(kInt), A::val(std::move(dest)),
                             A::val(tag), A::val(kW)});
}

Stmt recv_stmt(std::string buf, int count, Expr src, int tag) {
  return S::mpi(Func::Recv, {A::buf(std::move(buf)), A::val(count),
                             A::val(kInt), A::val(std::move(src)),
                             A::val(tag), A::val(kW), A::null()});
}

// ===========================================================================
// Nonblocking collectives
// ===========================================================================

TEST(NbcSurface, IbarrierWaitCompletesCleanEverySchedule) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_handle("req", HandleKind::Request));
  p.main_body.push_back(S::mpi(Func::Ibarrier, {A::val(kW), A::addr("req")}));
  p.main_body.push_back(S::mpi(Func::Wait, {A::addr("req"), A::null()}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto sweep = sweep_program(p, 3);
  EXPECT_TRUE(sweep.clean()) << sweep.summary();
  EXPECT_EQ(sweep.count(Outcome::Completed), sweep.schedules);
}

TEST(NbcSurface, AllSevenNbcFuncsCompleteUnderWaitall) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("sb", ir::Type::I32, E::lit(32)));
  p.main_body.push_back(S::decl_buf("rb", ir::Type::I32, E::lit(32)));
  p.main_body.push_back(S::decl_req_array("reqs", 7));
  p.main_body.push_back(S::buf_store("sb", E::lit(0), E::lit(5)));
  p.main_body.push_back(
      S::mpi(Func::Ibarrier, {A::val(kW), A::buf_at("reqs", E::lit(0))}));
  p.main_body.push_back(S::mpi(Func::Ibcast,
                               {A::buf("sb"), A::val(4), A::val(kInt),
                                A::val(0), A::val(kW),
                                A::buf_at("reqs", E::lit(1))}));
  // Disjoint slices of sb/rb per round: an NBC owns its buffer until
  // completion, and this program never waits in between.
  p.main_body.push_back(
      S::mpi(Func::Ireduce, {A::buf_at("sb", E::lit(4)),
                             A::buf_at("rb", E::lit(0)), A::val(4),
                             A::val(kInt), A::val(kSum), A::val(0),
                             A::val(kW), A::buf_at("reqs", E::lit(2))}));
  p.main_body.push_back(
      S::mpi(Func::Iallreduce, {A::buf_at("sb", E::lit(8)),
                                A::buf_at("rb", E::lit(4)), A::val(4),
                                A::val(kInt), A::val(kSum), A::val(kW),
                                A::buf_at("reqs", E::lit(3))}));
  p.main_body.push_back(
      S::mpi(Func::Igather, {A::buf_at("sb", E::lit(12)), A::val(2),
                             A::val(kInt), A::buf_at("rb", E::lit(8)),
                             A::val(2), A::val(kInt), A::val(0), A::val(kW),
                             A::buf_at("reqs", E::lit(4))}));
  p.main_body.push_back(
      S::mpi(Func::Iscatter, {A::buf_at("sb", E::lit(16)), A::val(2),
                              A::val(kInt), A::buf_at("rb", E::lit(14)),
                              A::val(2), A::val(kInt), A::val(0), A::val(kW),
                              A::buf_at("reqs", E::lit(5))}));
  p.main_body.push_back(
      S::mpi(Func::Ialltoall, {A::buf_at("sb", E::lit(20)), A::val(2),
                               A::val(kInt), A::buf_at("rb", E::lit(18)),
                               A::val(2), A::val(kInt), A::val(kW),
                               A::buf_at("reqs", E::lit(6))}));
  p.main_body.push_back(
      S::mpi(Func::Waitall, {A::val(7), A::buf("reqs"), A::null()}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto sweep = sweep_program(p, 2);
  EXPECT_TRUE(sweep.clean()) << sweep.summary();
}

TEST(NbcSurface, MismatchedNbcFuncsReportedAndDeadlock) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::decl_buf("out", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::decl_handle("req", HandleKind::Request));
  std::vector<Stmt> r0{S::mpi(Func::Ibcast,
                              {A::buf("buf"), A::val(8), A::val(kInt),
                               A::val(0), A::val(kW), A::addr("req")})};
  std::vector<Stmt> rx{S::mpi(Func::Ireduce,
                              {A::buf("buf"), A::buf("out"), A::val(8),
                               A::val(kInt), A::val(kSum), A::val(0),
                               A::val(kW), A::addr("req")})};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(rx)));
  p.main_body.push_back(S::mpi(Func::Wait, {A::addr("req"), A::null()}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::CollectiveMismatch)) << rep.summary();
  EXPECT_EQ(rep.outcome, Outcome::Deadlock);
}

TEST(NbcSurface, NbcRootDisagreementReported) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::decl_handle("req", HandleKind::Request));
  p.main_body.push_back(
      S::mpi(Func::Ibcast, {A::buf("buf"), A::val(8), A::val(kInt),
                            A::val(E::mod(E::ref("rank"), E::lit(2))),
                            A::val(kW), A::addr("req")}));
  p.main_body.push_back(S::mpi(Func::Wait, {A::addr("req"), A::null()}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::ParamMismatch)) << rep.summary();
}

TEST(NbcSurface, UnwaitedNbcRequestIsReported) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_handle("req", HandleKind::Request));
  p.main_body.push_back(S::mpi(Func::Ibarrier, {A::val(kW), A::addr("req")}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto rep = run_program(p, 2);
  EXPECT_FALSE(rep.clean()) << rep.summary();
  EXPECT_TRUE(rep.has(FindingKind::ResourceLeak) ||
              rep.has(FindingKind::RequestError))
      << rep.summary();
}

TEST(NbcSurface, BufferWriteDuringNbcReported) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::decl_handle("req", HandleKind::Request));
  p.main_body.push_back(
      S::mpi(Func::Ibcast, {A::buf("buf"), A::val(8), A::val(kInt),
                            A::val(0), A::val(kW), A::addr("req")}));
  p.main_body.push_back(S::buf_store("buf", E::lit(0), E::lit(7)));
  p.main_body.push_back(S::mpi(Func::Wait, {A::addr("req"), A::null()}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::LocalConcurrency)) << rep.summary();
}

TEST(NbcSurface, CompletionIsInPostingOrderPerComm) {
  // Two NBC rounds on the same communicator; the program waits ONLY on
  // the second request, then writes to the first round's buffer. The
  // standard's in-order completion per communicator means round 1 must
  // be complete by then — any schedule that completed round 2 first
  // would flag LocalConcurrency on the write below.
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("b1", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::decl_buf("b2", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::decl_req_array("reqs", 2));
  p.main_body.push_back(
      S::mpi(Func::Ibcast, {A::buf("b1"), A::val(8), A::val(kInt), A::val(0),
                            A::val(kW), A::buf_at("reqs", E::lit(0))}));
  p.main_body.push_back(
      S::mpi(Func::Ibcast, {A::buf("b2"), A::val(8), A::val(kInt), A::val(0),
                            A::val(kW), A::buf_at("reqs", E::lit(1))}));
  p.main_body.push_back(S::mpi(Func::Wait,
                               {A::buf_at("reqs", E::lit(1)), A::null()}));
  p.main_body.push_back(S::buf_store("b1", E::lit(0), E::lit(3)));
  p.main_body.push_back(S::mpi(Func::Wait,
                               {A::buf_at("reqs", E::lit(0)), A::null()}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto sweep = sweep_program(p, 3);
  EXPECT_TRUE(sweep.clean()) << sweep.summary();
}

// ===========================================================================
// Sendrecv / Probe / Iprobe
// ===========================================================================

TEST(SendrecvSurface, RingShiftIsDeadlockFreeEverySchedule) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("sb", ir::Type::I32, E::lit(kRendezvous)));
  p.main_body.push_back(S::decl_buf("rb", ir::Type::I32, E::lit(kRendezvous)));
  p.main_body.push_back(S::decl_int(
      "right", E::mod(E::add(E::ref("rank"), E::lit(1)), E::ref("size"))));
  p.main_body.push_back(S::decl_int(
      "left", E::mod(E::add(E::ref("rank"),
                            E::sub(E::ref("size"), E::lit(1))),
                     E::ref("size"))));
  // Rendezvous-sized payload: a blocking hand-rolled version of this
  // exchange would deadlock, Sendrecv must not.
  p.main_body.push_back(S::mpi(
      Func::Sendrecv,
      {A::buf("sb"), A::val(kRendezvous), A::val(kInt), A::val(E::ref("right")),
       A::val(4), A::buf("rb"), A::val(kRendezvous), A::val(kInt),
       A::val(E::ref("left")), A::val(4), A::val(kW), A::null()}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto sweep = sweep_program(p, 3);
  EXPECT_TRUE(sweep.clean()) << sweep.summary();
  EXPECT_EQ(sweep.count(Outcome::Completed), sweep.schedules);
}

TEST(SendrecvSurface, HandRolledPairDeadlocksEverySchedule) {
  // The same ring with Ssend-then-Recv on every rank: cyclic wait.
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("sb", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::decl_buf("rb", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::decl_int(
      "right", E::mod(E::add(E::ref("rank"), E::lit(1)), E::ref("size"))));
  p.main_body.push_back(S::decl_int(
      "left", E::mod(E::add(E::ref("rank"),
                            E::sub(E::ref("size"), E::lit(1))),
                     E::ref("size"))));
  p.main_body.push_back(S::mpi(Func::Ssend,
                               {A::buf("sb"), A::val(8), A::val(kInt),
                                A::val(E::ref("right")), A::val(4),
                                A::val(kW)}));
  p.main_body.push_back(recv_stmt("rb", 8, E::ref("left"), 4));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto sweep = sweep_program(p, 3);
  EXPECT_EQ(sweep.count(Outcome::Deadlock), sweep.schedules)
      << sweep.summary();
}

TEST(SendrecvSurface, ProcNullHalvesAreNoOps) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("sb", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::decl_buf("rb", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::mpi(
      Func::Sendrecv,
      {A::buf("sb"), A::val(4), A::val(kInt), A::val(mpi::kProcNull),
       A::val(0), A::buf("rb"), A::val(4), A::val(kInt),
       A::val(mpi::kProcNull), A::val(0), A::val(kW), A::null()}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(ProbeSurface, ProbeThenRecvCompletesClean) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  std::vector<Stmt> r0{
      S::mpi(Func::Probe, {A::val(1), A::val(3), A::val(kW), A::null()}),
      recv_stmt("buf", 4, E::lit(1), 3)};
  std::vector<Stmt> r1{S::buf_store("buf", E::lit(0), E::lit(1)),
                       send_stmt("buf", 4, E::lit(0), 3)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto sweep = sweep_program(p, 2);
  EXPECT_TRUE(sweep.clean()) << sweep.summary();
}

TEST(ProbeSurface, WildcardProbeWithTwoSendersReportsRace) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::decl_int("w"));
  std::vector<Stmt> r0{S::for_(
      "w", E::lit(1), E::ref("size"),
      {S::mpi(Func::Probe, {A::val(mpi::kAnySource), A::val(0), A::val(kW),
                            A::null()}),
       recv_stmt("buf", 4, E::lit(mpi::kAnySource), 0)})};
  std::vector<Stmt> rx{S::buf_store("buf", E::lit(0), E::ref("rank")),
                       send_stmt("buf", 4, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(rx)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto sweep = sweep_program(p, 3);
  EXPECT_TRUE(sweep.has(FindingKind::MessageRace)) << sweep.summary();
  // Committed witness: the deterministic round-robin schedule (seed 0)
  // already exhibits the race — both workers have sent by the time the
  // master's probe is woken.
  ASSERT_TRUE(sweep.first_witness_seed.has_value());
  EXPECT_EQ(*sweep.first_witness_seed, 0u);
}

TEST(ProbeSurface, IprobeFlagReflectsMessageAvailability) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::decl_int("flag", E::lit(7)));
  std::vector<Stmt> r0;
  // No message can exist yet: rank 1 sends only after our release.
  r0.push_back(S::mpi(Func::Iprobe, {A::val(1), A::val(2), A::val(kW),
                                     A::addr("flag"), A::null()}));
  r0.push_back(expect_eq("flag", 0));
  r0.push_back(send_stmt("buf", 4, E::lit(1), 9));  // release
  // Blocking probe guarantees arrival; Iprobe must now say so.
  r0.push_back(
      S::mpi(Func::Probe, {A::val(1), A::val(2), A::val(kW), A::null()}));
  r0.push_back(S::mpi(Func::Iprobe, {A::val(1), A::val(2), A::val(kW),
                                     A::addr("flag"), A::null()}));
  r0.push_back(expect_eq("flag", 1));
  r0.push_back(recv_stmt("buf", 4, E::lit(1), 2));
  std::vector<Stmt> r1{recv_stmt("buf", 4, E::lit(0), 9),
                       send_stmt("buf", 4, E::lit(0), 2)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto sweep = sweep_program(p, 2);
  EXPECT_TRUE(sweep.clean()) << sweep.summary();
}

// ===========================================================================
// Waitany / Waitsome / Testall
// ===========================================================================

TEST(WaitFamily, WaitanyReportsTheCompletedIndex) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("b0", ir::Type::I32, E::lit(kRendezvous)));
  p.main_body.push_back(S::decl_buf("b1", ir::Type::I32, E::lit(kRendezvous)));
  p.main_body.push_back(S::decl_req_array("reqs", 2));
  p.main_body.push_back(S::decl_int("idx", E::lit(-1)));
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Irecv,
                      {A::buf("b0"), A::val(kRendezvous), A::val(kInt),
                       A::val(1), A::val(5), A::val(kW),
                       A::buf_at("reqs", E::lit(0))}));
  r0.push_back(S::mpi(Func::Irecv,
                      {A::buf("b1"), A::val(kRendezvous), A::val(kInt),
                       A::val(1), A::val(6), A::val(kW),
                       A::buf_at("reqs", E::lit(1))}));
  // Rank 1 releases only the tag-6 message before our first Waitany, so
  // index 1 is the unique possible completion.
  r0.push_back(S::mpi(Func::Waitany, {A::val(2), A::buf("reqs"),
                                      A::addr("idx"), A::null()}));
  r0.push_back(expect_eq("idx", 1));
  r0.push_back(send_stmt("b1", 4, E::lit(1), 9));  // release tag-5 send
  r0.push_back(S::mpi(Func::Waitany, {A::val(2), A::buf("reqs"),
                                      A::addr("idx"), A::null()}));
  r0.push_back(expect_eq("idx", 0));
  // Pool empty: Waitany returns immediately with MPI_UNDEFINED.
  r0.push_back(S::mpi(Func::Waitany, {A::val(2), A::buf("reqs"),
                                      A::addr("idx"), A::null()}));
  r0.push_back(expect_eq("idx", mpi::kUndefined));
  std::vector<Stmt> r1;
  r1.push_back(send_stmt("b1", kRendezvous, E::lit(0), 6));
  r1.push_back(recv_stmt("b1", 4, E::lit(0), 9));
  r1.push_back(send_stmt("b0", kRendezvous, E::lit(0), 5));
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto sweep = sweep_program(p, 2);
  EXPECT_TRUE(sweep.clean()) << sweep.summary();
}

TEST(WaitFamily, WaitsomeDrainsEverythingCompleted) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("b0", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::decl_buf("b1", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::decl_buf("inds", ir::Type::I32, E::lit(2)));
  p.main_body.push_back(S::decl_req_array("reqs", 2));
  p.main_body.push_back(S::decl_int("done", E::lit(0)));
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Irecv,
                      {A::buf("b0"), A::val(4), A::val(kInt), A::val(1),
                       A::val(0), A::val(kW), A::buf_at("reqs", E::lit(0))}));
  r0.push_back(S::mpi(Func::Irecv,
                      {A::buf("b1"), A::val(4), A::val(kInt), A::val(1),
                       A::val(1), A::val(kW), A::buf_at("reqs", E::lit(1))}));
  r0.push_back(S::mpi(Func::Barrier, {A::val(kW)}));
  // Both eager sends were posted before rank 1's barrier arrival, so
  // both requests are complete here and Waitsome must drain both.
  r0.push_back(S::mpi(Func::Waitsome,
                      {A::val(2), A::buf("reqs"), A::addr("done"),
                       A::buf("inds"), A::null()}));
  r0.push_back(expect_eq("done", 2));
  std::vector<Stmt> r1;
  r1.push_back(S::buf_store("b0", E::lit(0), E::lit(1)));
  r1.push_back(send_stmt("b0", 4, E::lit(0), 0));
  r1.push_back(send_stmt("b0", 4, E::lit(0), 1));
  r1.push_back(S::mpi(Func::Barrier, {A::val(kW)}));
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto sweep = sweep_program(p, 2);
  EXPECT_TRUE(sweep.clean()) << sweep.summary();
}

TEST(WaitFamily, TestallFlagTracksCompletion) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("b0", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::decl_req_array("reqs", 1));
  p.main_body.push_back(S::decl_int("flag", E::lit(7)));
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Irecv,
                      {A::buf("b0"), A::val(4), A::val(kInt), A::val(1),
                       A::val(0), A::val(kW), A::buf_at("reqs", E::lit(0))}));
  // Rank 1 has not been released: the request cannot be complete.
  r0.push_back(S::mpi(Func::Testall, {A::val(1), A::buf("reqs"),
                                      A::addr("flag"), A::null()}));
  r0.push_back(expect_eq("flag", 0));
  r0.push_back(send_stmt("b0", 4, E::lit(1), 9));  // release
  r0.push_back(S::mpi(Func::Wait,
                      {A::buf_at("reqs", E::lit(0)), A::null()}));
  // Everything consumed: Testall on an all-null array reports done.
  r0.push_back(S::mpi(Func::Testall, {A::val(1), A::buf("reqs"),
                                      A::addr("flag"), A::null()}));
  r0.push_back(expect_eq("flag", 1));
  std::vector<Stmt> r1{recv_stmt("b0", 4, E::lit(0), 9),
                       send_stmt("b0", 4, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto sweep = sweep_program(p, 2);
  EXPECT_TRUE(sweep.clean()) << sweep.summary();
}

TEST(WaitFamily, WaitanyOnGarbageHandleReportsRequestError) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("b0", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::decl_req_array("reqs", 2));
  p.main_body.push_back(S::decl_int("idx"));
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Irecv,
                      {A::buf("b0"), A::val(4), A::val(kInt), A::val(1),
                       A::val(0), A::val(kW), A::buf_at("reqs", E::lit(0))}));
  r0.push_back(S::buf_store("reqs", E::lit(0), E::lit(987654)));
  r0.push_back(S::mpi(Func::Waitany, {A::val(2), A::buf("reqs"),
                                      A::addr("idx"), A::null()}));
  std::vector<Stmt> r1{S::buf_store("b0", E::lit(0), E::lit(1)),
                       send_stmt("b0", 4, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::RequestError)) << rep.summary();
}

// ===========================================================================
// Per-rank thread blocks
// ===========================================================================

Program thread_program(bool race) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("shared", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::buf_store("shared", E::lit(0), E::lit(1)));
  std::vector<Stmt> t0;
  t0.push_back(S::decl_handle("treq", HandleKind::Request));
  t0.push_back(S::mpi(Func::Irecv,
                      {A::buf("shared"), A::val(8), A::val(kInt), A::val(1),
                       A::val(0), A::val(kW), A::addr("treq")}));
  t0.push_back(S::mpi(Func::Wait, {A::addr("treq"), A::null()}));
  std::vector<Stmt> t1;
  t1.push_back(S::decl_buf("mine", ir::Type::I32, E::lit(8)));
  t1.push_back(S::buf_store("mine", E::lit(0), E::lit(2)));
  if (race) {
    t1.push_back(S::buf_store("shared", E::lit(0), E::lit(9)));
  }
  t1.push_back(send_stmt("mine", 8, E::lit(1), 1));
  std::vector<Stmt> r0{S::thread_block_shared("shared", std::move(t0),
                                              std::move(t1))};
  std::vector<Stmt> r1{send_stmt("shared", 8, E::lit(0), 0),
                       recv_stmt("shared", 8, E::lit(0), 1)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  return p;
}

TEST(Threads, ThreadBlockJoinsCleanEverySchedule) {
  const auto sweep = sweep_program(thread_program(false), 2);
  EXPECT_TRUE(sweep.clean()) << sweep.summary();
  EXPECT_EQ(sweep.count(Outcome::Completed), sweep.schedules);
}

TEST(Threads, SharedBufferRaceReported) {
  const auto rep = run_program(thread_program(true), 2);
  EXPECT_TRUE(rep.has(FindingKind::LocalConcurrency)) << rep.summary();
  const auto sweep = sweep_program(thread_program(true), 2);
  EXPECT_TRUE(sweep.has(FindingKind::LocalConcurrency)) << sweep.summary();
  // Committed witness: round-robin runs the forked contexts in fork
  // order within one scheduling round, so seed 0 exhibits the race.
  EXPECT_EQ(sweep.findings.at(FindingKind::LocalConcurrency).first_seed, 0u);
}

TEST(Threads, InterleavingIsDeterministicPerSeed) {
  const auto m1 = progmodel::lower(thread_program(false));
  const auto m2 = progmodel::lower(thread_program(false));
  MachineConfig cfg;
  cfg.nprocs = 2;
  cfg.max_steps = 2'000'000;
  ScheduleSweepOptions opts;
  opts.schedules = 16;
  opts.seed = 99;
  const auto s1 = sweep_schedules(*m1, cfg, opts);
  const auto s2 = sweep_schedules(*m2, cfg, opts);
  ASSERT_EQ(s1.reports.size(), s2.reports.size());
  for (std::size_t i = 0; i < s1.reports.size(); ++i) {
    EXPECT_EQ(s1.reports[i], s2.reports[i]) << "schedule slot " << i;
  }
}

// ===========================================================================
// Widened templates: detection wall + byte-identical replay
// ===========================================================================

datasets::Case build_case(std::string_view tpl_id, datasets::Inject inj,
                          std::uint64_t seed) {
  const datasets::Template* tpl = datasets::find_template(tpl_id);
  EXPECT_NE(tpl, nullptr) << tpl_id;
  Rng rng(seed);
  datasets::BuildContext ctx;
  ctx.rng = &rng;
  ctx.inject = inj;
  ctx.size_class = 1;
  datasets::Case c;
  c.program = tpl->fn(ctx);
  c.incorrect = inj != datasets::Inject::None;
  return c;
}

struct InjectExpectation {
  std::string_view tpl;
  datasets::Inject inject;
};

const InjectExpectation kWidenedInjects[] = {
    {"nbc_coll", datasets::Inject::NbcMismatch},
    {"nbc_coll", datasets::Inject::NbcRootMismatch},
    {"nbc_coll", datasets::Inject::NbcMissingWait},
    {"nbc_coll", datasets::Inject::NbcWriteBeforeWait},
    {"sendrecv_ring", datasets::Inject::SendrecvCycleBlocking},
    {"probe_poll", datasets::Inject::ProbeWildcardRace},
    {"waitany_pool", datasets::Inject::WaitanyInvalidRequest},
    {"thread_pingpong", datasets::Inject::ThreadRace},
};

TEST(WidenedTemplates, EveryWidenedInjectIsFlaggedUnder16Seeds) {
  for (const auto& [tpl, inject] : kWidenedInjects) {
    const auto c = build_case(tpl, inject, 7);
    const auto sweep = sweep_program(c.program, c.program.nprocs, 1, 16);
    EXPECT_FALSE(sweep.clean())
        << tpl << "/" << datasets::inject_name(inject) << ": "
        << sweep.summary();
  }
}

TEST(WidenedTemplates, CorrectVariantsRunCleanUnder16Seeds) {
  for (const char* tpl : {"nbc_coll", "sendrecv_ring", "probe_poll",
                          "waitany_pool", "thread_pingpong"}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      const auto c = build_case(tpl, datasets::Inject::None, seed);
      const auto sweep = sweep_program(c.program, c.program.nprocs, 1, 16);
      EXPECT_TRUE(sweep.clean()) << tpl << " seed " << seed << ": "
                                 << sweep.summary();
    }
  }
}

TEST(WidenedTemplates, SameSeedReplayIsByteIdentical) {
  for (const auto& [tpl, inject] : kWidenedInjects) {
    const auto c1 = build_case(tpl, inject, 11);
    const auto c2 = build_case(tpl, inject, 11);
    const auto s1 = sweep_program(c1.program, c1.program.nprocs, 5, 8);
    const auto s2 = sweep_program(c2.program, c2.program.nprocs, 5, 8);
    ASSERT_EQ(s1.reports.size(), s2.reports.size());
    for (std::size_t i = 0; i < s1.reports.size(); ++i) {
      EXPECT_EQ(s1.reports[i], s2.reports[i])
          << tpl << "/" << datasets::inject_name(inject) << " slot " << i;
    }
  }
}

}  // namespace
}  // namespace mpidetect::mpisim
