// Corpus-format torture tests: the .mpcs shard format must round-trip
// cases bit-identically, reject every corrupt byte of a shard at open
// (header checksum + zero padding + whole-shard content fingerprint
// leave no byte uncovered), reject truncation, trailing bytes, future
// versions and fingerprint mismatches with io::FormatError — never a
// crash, a hang or a silently different case — and catch post-open file
// modification on load(). Plus the fuzzer's out-of-core guarantees:
// divergences stream to disk under a bounded in-memory cap, and corpus
// distillation is deterministic across run() and distill().
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/fuzzer.hpp"
#include "corpus/corpus.hpp"
#include "corpus/record.hpp"
#include "datasets/mbi.hpp"
#include "io/fuzz_io.hpp"
#include "io/serialize.hpp"
#include "support/check.hpp"

namespace mpidetect {
namespace {

namespace fs = std::filesystem;

/// Unique per-test scratch directory, removed on destruction.
struct TempDir {
  fs::path path;

  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("mpidetect_corpus_") + info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path dir(const char* name) const { return path / name; }
};

datasets::Dataset small_mbi(double scale = 0.05, std::uint64_t seed = 99) {
  datasets::MbiConfig cfg;
  cfg.scale = scale;
  cfg.seed = seed;
  return datasets::generate_mbi(cfg);
}

corpus::WriteStats write_corpus(const fs::path& dir,
                                const datasets::Dataset& ds,
                                corpus::WriterOptions opts = {}) {
  corpus::CorpusWriter w(dir, opts);
  for (const auto& c : ds.cases) w.add(c);
  return w.finish();
}

std::vector<char> read_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const fs::path& p, const std::vector<char>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << p;
}

void put_u64_le(std::vector<char>& b, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

/// Rewrites the header checksum over bytes [0, kHeaderHashedBytes) so a
/// deliberate header patch reaches the check it is aimed at instead of
/// tripping the checksum first.
void reseal_header(std::vector<char>& bytes) {
  ASSERT_GE(bytes.size(), corpus::kSectorSize);
  const std::uint64_t fp = corpus::fnv1a64_bytes(
      corpus::kFnvOffsetBasis, bytes.data(), corpus::kHeaderHashedBytes);
  put_u64_le(bytes, corpus::kHeaderHashedBytes, fp);
}

fs::path only_shard(const fs::path& dir) {
  return dir / "shard-000000.mpcs";
}

// ---- round trips ------------------------------------------------------------

TEST(CorpusFormat, RoundTripIsBitIdentical) {
  TempDir tmp;
  const auto ds = small_mbi();
  const auto stats = write_corpus(tmp.dir("c"), ds);
  EXPECT_EQ(stats.cases, ds.size());
  EXPECT_GE(stats.shards, 1u);

  const corpus::CorpusReader r(tmp.dir("c"));
  const corpus::DatasetSource ref(ds);
  ASSERT_EQ(r.size(), ds.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    // Metadata answered from the index alone must agree with the
    // in-memory source...
    EXPECT_EQ(r.incorrect(i), ref.incorrect(i)) << "case " << i;
    EXPECT_EQ(r.label_name(i), ref.label_name(i)) << "case " << i;
    EXPECT_EQ(r.case_id(i), ref.case_id(i)) << "case " << i;
    // ...and the decoded case must re-encode to the exact same bytes —
    // bit identity, not structural similarity.
    EXPECT_EQ(corpus::encode_case(r.load(i)),
              corpus::encode_case(ds.cases[i]))
        << "case " << i << " (" << ds.cases[i].name << ")";
  }
}

TEST(CorpusFormat, CrossShardIterationFollowsInsertionOrder) {
  TempDir tmp;
  const auto ds = small_mbi();
  corpus::WriterOptions opts;
  opts.max_cases_per_shard = 7;  // force many shards
  const auto stats = write_corpus(tmp.dir("c"), ds, opts);
  ASSERT_GT(stats.shards, 3u);

  const corpus::CorpusReader r(tmp.dir("c"));
  ASSERT_EQ(r.shard_count(), stats.shards);

  std::vector<std::string> seen;
  r.for_each([&](std::size_t i, const datasets::Case& c) {
    EXPECT_EQ(i, seen.size());
    seen.push_back(c.name);
  });
  ASSERT_EQ(seen.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(seen[i], ds.cases[i].name) << "global ordinal " << i;
  }

  // (shard, ordinal) addressing agrees with global ordinals.
  std::size_t global = 0;
  for (std::size_t s = 0; s < r.shard_count(); ++s) {
    for (std::size_t k = 0; k < r.shards()[s].case_count; ++k, ++global) {
      EXPECT_EQ(r.global_index(s, k), global);
      EXPECT_EQ(r.at(s, k).name, ds.cases[global].name);
    }
  }
  EXPECT_EQ(global, ds.size());
}

TEST(CorpusFormat, RandomAccessModeReadsAcrossShards) {
  TempDir tmp;
  const auto ds = small_mbi();
  corpus::WriterOptions opts;
  opts.max_cases_per_shard = 5;
  write_corpus(tmp.dir("c"), ds, opts);

  const corpus::CorpusReader r(tmp.dir("c"), /*sequential=*/false);
  // Zig-zag across shard boundaries; every access must see its case.
  for (std::size_t i = 0; i < r.size(); ++i) {
    const std::size_t j = (i % 2 == 0) ? i / 2 : r.size() - 1 - i / 2;
    EXPECT_EQ(r.load(j).name, ds.cases[j].name);
  }
  r.release_mappings();
  EXPECT_EQ(r.load(0).name, ds.cases[0].name);  // remaps on demand
}

TEST(CorpusFormat, ShardRotationRespectsByteBound) {
  TempDir tmp;
  const auto ds = small_mbi();
  corpus::WriterOptions opts;
  opts.max_shard_bytes = 32 << 10;  // far below the corpus total
  const auto stats = write_corpus(tmp.dir("c"), ds, opts);
  ASSERT_GT(stats.shards, 1u);

  const corpus::CorpusReader r(tmp.dir("c"));
  for (const auto& s : r.shards()) {
    EXPECT_GE(s.case_count, 1u) << s.path;
  }
  std::size_t total = 0;
  for (const auto& s : r.shards()) total += s.case_count;
  EXPECT_EQ(total, ds.size());
}

TEST(CorpusFormat, EmptyCorpusRoundTrips) {
  TempDir tmp;
  corpus::CorpusWriter w(tmp.dir("c"));
  const auto stats = w.finish();
  EXPECT_EQ(stats.cases, 0u);
  EXPECT_EQ(stats.shards, 1u);

  const corpus::CorpusReader r(tmp.dir("c"));
  EXPECT_EQ(r.size(), 0u);
  r.for_each([](std::size_t, const datasets::Case&) {
    FAIL() << "iterated a case in an empty corpus";
  });
}

TEST(CorpusFormat, SingleCaseShardRoundTrips) {
  TempDir tmp;
  const auto ds = small_mbi();
  corpus::CorpusWriter w(tmp.dir("c"));
  w.add(ds.cases.front());
  const auto stats = w.finish();
  EXPECT_EQ(stats.cases, 1u);
  EXPECT_EQ(stats.shards, 1u);

  const corpus::CorpusReader r(tmp.dir("c"));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(corpus::encode_case(r.load(0)),
            corpus::encode_case(ds.cases.front()));
}

TEST(CorpusFormat, FinishIsIdempotentAndAbandonLeavesNothing) {
  TempDir tmp;
  const auto ds = small_mbi();
  {
    corpus::CorpusWriter w(tmp.dir("done"));
    w.add(ds.cases.front());
    const auto s1 = w.finish();
    const auto s2 = w.finish();
    EXPECT_EQ(s1.cases, s2.cases);
    EXPECT_EQ(s1.shards, s2.shards);
  }
  {
    corpus::CorpusWriter w(tmp.dir("abandoned"));
    w.add(ds.cases.front());
    // no finish(): destructor must abort the temp shard
  }
  std::size_t leftovers = 0;
  for (const auto& e : fs::directory_iterator(tmp.dir("abandoned"))) {
    ++leftovers;
    ADD_FAILURE() << "abandoned writer left " << e.path();
  }
  EXPECT_EQ(leftovers, 0u);
}

// ---- corruption -------------------------------------------------------------

/// One small (single-case) shard as raw bytes, plus its directory.
struct SmallShard {
  TempDir tmp;
  fs::path dir;
  fs::path shard;
  std::vector<char> bytes;

  SmallShard() : dir(tmp.dir("c")) {
    const auto ds = small_mbi();
    corpus::CorpusWriter w(dir);
    w.add(ds.cases.front());
    w.finish();
    shard = only_shard(dir);
    bytes = read_bytes(shard);
  }
};

TEST(CorpusTorture, EveryFlippedByteIsRejectedAtOpen) {
  SmallShard s;
  ASSERT_GT(s.bytes.size(), corpus::kSectorSize);
  // Flip every single byte of the shard in turn: the header checksum,
  // the explicit zero-padding check and the whole-shard content
  // fingerprint must leave NO byte whose corruption goes unnoticed.
  for (std::size_t off = 0; off < s.bytes.size(); ++off) {
    auto corrupted = s.bytes;
    corrupted[off] = static_cast<char>(corrupted[off] ^ 0x5a);
    write_bytes(s.shard, corrupted);
    EXPECT_THROW(corpus::CorpusReader r(s.dir), io::FormatError)
        << "flipped byte at offset " << off << " was accepted";
  }
  write_bytes(s.shard, s.bytes);
  EXPECT_NO_THROW(corpus::CorpusReader r(s.dir));
}

TEST(CorpusTorture, TruncationIsRejectedAtOpen) {
  SmallShard s;
  const std::size_t full = s.bytes.size();
  // Header cut short, payload cut mid-sector, index cut mid-entry, and
  // a one-byte tail loss.
  const std::size_t cuts[] = {0,
                              4,
                              corpus::kSectorSize - 1,
                              corpus::kSectorSize,
                              corpus::kSectorSize + 17,
                              full - corpus::kIndexEntrySize,
                              full - 1};
  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, full);
    auto truncated = s.bytes;
    truncated.resize(cut);
    write_bytes(s.shard, truncated);
    EXPECT_THROW(corpus::CorpusReader r(s.dir), io::FormatError)
        << "truncation to " << cut << " bytes was accepted";
  }
}

TEST(CorpusTorture, TrailingBytesAreRejectedAtOpen) {
  SmallShard s;
  auto padded = s.bytes;
  padded.push_back('\0');
  write_bytes(s.shard, padded);
  EXPECT_THROW(corpus::CorpusReader r(s.dir), io::FormatError);
}

TEST(CorpusTorture, FutureVersionIsRejectedAtOpen) {
  SmallShard s;
  auto patched = s.bytes;
  patched[4] = static_cast<char>(corpus::kShardVersion + 1);
  reseal_header(patched);  // reach the version check, not the checksum
  write_bytes(s.shard, patched);
  EXPECT_THROW(corpus::CorpusReader r(s.dir), io::FormatError);
}

TEST(CorpusTorture, ContentFingerprintMismatchIsRejectedAtOpen) {
  SmallShard s;
  auto patched = s.bytes;
  // Forge the stored content fingerprint (header offset 48) and reseal
  // the header so ONLY the content check can catch it.
  put_u64_le(patched, 48, 0xdeadbeefdeadbeefULL);
  reseal_header(patched);
  write_bytes(s.shard, patched);
  EXPECT_THROW(corpus::CorpusReader r(s.dir), io::FormatError);
}

TEST(CorpusTorture, PostOpenModificationIsCaughtOnLoad) {
  SmallShard s;
  const corpus::CorpusReader r(s.dir);
  ASSERT_EQ(r.size(), 1u);
  // Corrupt a payload byte AFTER open-time validation passed; the
  // per-record checksum re-verified on load() must catch it.
  auto corrupted = s.bytes;
  corrupted[corpus::kSectorSize + 64] ^= 0x01;
  write_bytes(s.shard, corrupted);
  EXPECT_THROW(r.load(0), io::FormatError);
}

TEST(CorpusTorture, MissingAndEmptyDirectoriesAreRejected) {
  TempDir tmp;
  EXPECT_THROW(corpus::CorpusReader r(tmp.dir("nonexistent")),
               io::FormatError);
  fs::create_directories(tmp.dir("hollow"));
  EXPECT_THROW(corpus::CorpusReader r(tmp.dir("hollow")), io::FormatError);
}

// ---- fold assignment --------------------------------------------------------

TEST(CorpusFold, HashedFoldsAreStableInRangeAndNonDegenerate) {
  std::map<std::size_t, std::size_t> histogram;
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    const std::size_t f = corpus::fold_of(id, 5, 42);
    EXPECT_LT(f, 5u);
    EXPECT_EQ(f, corpus::fold_of(id, 5, 42));  // pure function of inputs
    ++histogram[f];
  }
  ASSERT_EQ(histogram.size(), 5u);  // every fold populated
  for (const auto& [fold, n] : histogram) {
    EXPECT_GT(n, 100u) << "fold " << fold << " is degenerate";
  }
  // The seed reshuffles assignments.
  std::size_t moved = 0;
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    moved += corpus::fold_of(id, 5, 42) != corpus::fold_of(id, 5, 43);
  }
  EXPECT_GT(moved, 500u);
}

// ---- fuzzer out-of-core guarantees -----------------------------------------

TEST(FuzzStreaming, IncrementalRepWriterMatchesOneShotSave) {
  TempDir tmp;
  std::vector<io::FuzzRecord> records(3);
  records[0].template_id = "master_worker";
  records[1].template_id = "master_worker";
  records[1].dropped = {2, 5};
  records[2].template_id = "master_worker";
  records[2].detail = "nondeterministic";

  const fs::path one_shot = tmp.path / "one_shot.mpfz";
  const fs::path streamed = tmp.path / "streamed.mpfz";
  io::save_fuzz_corpus(one_shot, records);
  {
    io::FuzzCorpusWriter w(streamed);
    for (const auto& r : records) w.add(r);
    EXPECT_FALSE(fs::exists(streamed));  // published only by close()
    w.close();
  }
  EXPECT_EQ(read_bytes(streamed), read_bytes(one_shot));
  EXPECT_EQ(io::load_fuzz_corpus(streamed), records);

  {
    io::FuzzCorpusWriter w(tmp.path / "abandoned.mpfz");
    w.add(records[0]);
    // destructor without close(): no file, no temp litter
  }
  EXPECT_FALSE(fs::exists(tmp.path / "abandoned.mpfz"));
  EXPECT_FALSE(fs::exists(tmp.path / "abandoned.mpfz.tmp"));
}

/// Registers (once) a detector that always throws, so a campaign yields
/// one deterministic ToolError divergence per run.
void register_throwing_detector() {
  auto& registry = core::DetectorRegistry::global();
  if (registry.contains("test-thrower")) return;
  class Thrower final : public core::Detector {
   public:
    std::string_view name() const override { return "test-thrower"; }
    core::DetectorKind kind() const override {
      return core::DetectorKind::Static;
    }
    std::unique_ptr<core::Detector> clone() const override {
      return std::make_unique<Thrower>();
    }
    core::Verdict evaluate(const datasets::Dataset&, std::size_t) override {
      throw std::runtime_error("synthetic tool failure");
    }
  };
  registry.add("test-thrower",
               [](const core::DetectorConfig&) -> std::unique_ptr<core::Detector> {
                 return std::make_unique<Thrower>();
               });
}

TEST(FuzzStreaming, DivergenceCapBoundsMemoryWhileCorpusKeepsAll) {
  TempDir tmp;
  register_throwing_detector();

  core::FuzzConfig cfg;
  cfg.seed = 7;
  cfg.runs = 12;
  cfg.schedules = 2;
  cfg.shrink = false;
  cfg.detectors = {"test-thrower"};
  cfg.max_kept_divergences = 3;
  cfg.corpus_path = (tmp.path / "div.mpfz").string();
  cfg.corpus_dir = tmp.dir("distilled").string();

  core::DifferentialFuzzer fuzzer(cfg);
  const auto report = fuzzer.run();

  // One ToolError per run: the full count is reported, the in-memory
  // list is capped, and the on-disk stream still carries every record.
  EXPECT_EQ(report.divergence_count, 12u);
  EXPECT_EQ(report.divergences.size(), 3u);
  EXPECT_FALSE(report.ok());
  const auto streamed = io::load_fuzz_corpus(cfg.corpus_path);
  EXPECT_EQ(streamed.size(), 12u);

  // Every draw was distilled, divergent or not, into a readable corpus.
  EXPECT_EQ(report.distilled_cases, 12u);
  const corpus::CorpusReader distilled(cfg.corpus_dir);
  EXPECT_EQ(distilled.size(), 12u);
}

TEST(FuzzStreaming, DistillMatchesCampaignDistillation) {
  TempDir tmp;
  core::FuzzConfig cfg;
  cfg.seed = 11;
  cfg.runs = 15;
  cfg.schedules = 2;
  core::DifferentialFuzzer fuzzer(cfg);

  // The fast path (no sweeps, no detectors) must produce byte-identical
  // shards to a full campaign with --corpus-dir: same draw sequence,
  // same records, same rotation.
  const auto stats = fuzzer.distill(tmp.dir("fast"), cfg.runs);
  EXPECT_EQ(stats.cases, 15u);

  core::FuzzConfig campaign = cfg;
  campaign.corpus_dir = tmp.dir("campaign").string();
  core::DifferentialFuzzer full(campaign);
  const auto report = full.run();
  EXPECT_EQ(report.distilled_cases, stats.cases);
  EXPECT_EQ(report.distilled_shards, stats.shards);

  const corpus::CorpusReader a(tmp.dir("fast"));
  const corpus::CorpusReader b(tmp.dir("campaign"));
  ASSERT_EQ(a.shard_count(), b.shard_count());
  for (std::size_t s = 0; s < a.shard_count(); ++s) {
    EXPECT_EQ(read_bytes(a.shards()[s].path), read_bytes(b.shards()[s].path))
        << "shard " << s;
  }
}

// Sanitizers inflate resident memory unpredictably; the RSS ceiling is
// only meaningful in a plain build (the hard gate for the scale claim
// lives in BENCH_corpus.json via bench/corpus_stream).
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define MPIDETECT_RSS_TEST 1
#else
#define MPIDETECT_RSS_TEST 0
#endif

#if MPIDETECT_RSS_TEST
std::size_t peak_rss_bytes() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
}

TEST(FuzzStreaming, SequentialReadKeepsResidencyBelowCorpusSize) {
  TempDir tmp;
  core::FuzzConfig cfg;
  cfg.seed = 3;
  core::DifferentialFuzzer fuzzer(cfg);
  corpus::WriterOptions wopts;
  wopts.max_shard_bytes = 1 << 20;  // many small shards
  const auto stats = fuzzer.distill(tmp.dir("c"), 1500, wopts);
  ASSERT_GE(stats.cases, 1500u);
  ASSERT_GT(stats.shards, 3u);

  const std::size_t before = peak_rss_bytes();
  const corpus::CorpusReader r(tmp.dir("c"));
  std::size_t n = 0;
  r.for_each([&](std::size_t, const datasets::Case&) { ++n; });
  EXPECT_EQ(n, stats.cases);
  const std::size_t grew = peak_rss_bytes() - before;

  // Sequential iteration keeps at most one shard (1 MiB) mapped; the
  // whole corpus is several times larger. Generous slack for allocator
  // noise — the point is "bounded by a shard, not by the corpus".
  EXPECT_LT(grew, stats.bytes / 2)
      << "streaming a " << stats.bytes << "-byte corpus grew RSS by " << grew;
}
#endif  // MPIDETECT_RSS_TEST

// ---- record format versioning ----------------------------------------------
// MPCR v2 widened the statement/function enum ranges (ThreadBlock,
// nonblocking collectives, Sendrecv/Probe, wait family) without touching
// the layout. A v1 record must decode byte-identically under the v1
// caps, and a v1 record carrying v2-only enum values is corrupt — it
// must fail loudly, never crash or decode to garbage.

using progmodel::Arg;
using progmodel::Expr;
using progmodel::Stmt;
using mpi::Func;

datasets::Case record_fixture(std::vector<Stmt> main_body) {
  datasets::Case c;
  c.name = "fixture";
  c.suite = datasets::Suite::Mbi;
  c.mbi_label = mpi::MbiLabel::Correct;
  c.incorrect = false;
  c.program.name = "fixture";
  c.program.nprocs = 2;
  c.program.main_body = std::move(main_body);
  c.source_lines = c.program.line_count();
  return c;
}

std::vector<Stmt> legacy_body() {
  std::vector<Stmt> v;
  v.push_back(Stmt::decl_int("rank"));
  v.push_back(Stmt::decl_buf("buf", ir::Type::I32, Expr::lit(4)));
  v.push_back(Stmt::mpi(Func::Init, {}));
  v.push_back(Stmt::mpi(Func::CommRank,
                        {Arg::val(mpi::kCommWorld), Arg::addr("rank")}));
  v.push_back(Stmt::if_(
      Expr::eq(Expr::ref("rank"), Expr::lit(0)),
      {Stmt::mpi(Func::Send,
                 {Arg::buf("buf"), Arg::val(4),
                  Arg::val(static_cast<std::int64_t>(mpi::Datatype::Int)),
                  Arg::val(1), Arg::val(0), Arg::val(mpi::kCommWorld)})},
      {Stmt::mpi(Func::Recv,
                 {Arg::buf("buf"), Arg::val(4),
                  Arg::val(static_cast<std::int64_t>(mpi::Datatype::Int)),
                  Arg::val(0), Arg::val(0), Arg::val(mpi::kCommWorld),
                  Arg::null()})}));
  v.push_back(Stmt::mpi(Func::Finalize, {}));
  v.push_back(Stmt::ret(Expr::lit(0)));
  return v;
}

/// Record layout: 4-byte magic "MPCR", then the u32 version
/// little-endian at offset 4.
void patch_record_version(std::vector<char>& bytes, std::uint32_t v) {
  ASSERT_GE(bytes.size(), 8u);
  for (int i = 0; i < 4; ++i) {
    bytes[4 + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

TEST(RecordVersioning, WriterEmitsVersion2) {
  const auto bytes = corpus::encode_case(record_fixture(legacy_body()));
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(std::string_view(bytes.data(), 4), "MPCR");
  EXPECT_EQ(bytes[4], 2);
  EXPECT_EQ(bytes[5], 0);
  EXPECT_EQ(bytes[6], 0);
  EXPECT_EQ(bytes[7], 0);
}

TEST(RecordVersioning, V1LegacyRecordDecodesByteIdentically) {
  const auto c = record_fixture(legacy_body());
  const auto v2 = corpus::encode_case(c);
  auto v1 = v2;
  patch_record_version(v1, 1);
  // Only the header differs: a v1 record is the same layout.
  const auto back = corpus::decode_case(v1.data(), v1.size(), "v1-fixture");
  // Re-encoding the decoded case (writers always emit v2) must
  // reproduce the original v2 bytes exactly.
  EXPECT_EQ(corpus::encode_case(back), v2);
}

TEST(RecordVersioning, V1RejectsThreadBlockStatements) {
  auto body = legacy_body();
  body.insert(body.end() - 2,
              Stmt::thread_block({Stmt::decl_int("a")},
                                 {Stmt::decl_int("b")}));
  auto bytes = corpus::encode_case(record_fixture(std::move(body)));
  patch_record_version(bytes, 1);
  EXPECT_THROW(corpus::decode_case(bytes.data(), bytes.size(), "v1-fixture"),
               io::FormatError);
}

TEST(RecordVersioning, V1RejectsWidenedFuncs) {
  auto body = legacy_body();
  body.insert(body.end() - 2, Stmt::decl_handle("req",
                                                progmodel::HandleKind::Request));
  body.insert(body.end() - 2,
              Stmt::mpi(Func::Ibarrier,
                        {Arg::val(mpi::kCommWorld), Arg::addr("req")}));
  body.insert(body.end() - 2,
              Stmt::mpi(Func::Wait, {Arg::addr("req"), Arg::null()}));
  auto bytes = corpus::encode_case(record_fixture(std::move(body)));
  patch_record_version(bytes, 1);
  EXPECT_THROW(corpus::decode_case(bytes.data(), bytes.size(), "v1-fixture"),
               io::FormatError);
}

TEST(RecordVersioning, FutureRecordVersionIsRejected) {
  auto bytes = corpus::encode_case(record_fixture(legacy_body()));
  patch_record_version(bytes, 3);
  EXPECT_THROW(corpus::decode_case(bytes.data(), bytes.size(), "v3-fixture"),
               io::FormatError);
}

TEST(RecordVersioning, WidenedCaseRoundTripsBitIdentically) {
  auto body = legacy_body();
  body.insert(body.end() - 2,
              Stmt::decl_buf("sb", ir::Type::I32, Expr::lit(4)));
  body.insert(body.end() - 2, Stmt::decl_req_array("reqs", 2));
  body.insert(body.end() - 2,
              Stmt::mpi(Func::Ibarrier, {Arg::val(mpi::kCommWorld),
                                         Arg::buf_at("reqs", Expr::lit(0))}));
  body.insert(body.end() - 2,
              Stmt::mpi(Func::Sendrecv,
                        {Arg::buf("sb"), Arg::val(4),
                         Arg::val(static_cast<std::int64_t>(mpi::Datatype::Int)),
                         Arg::val(mpi::kProcNull), Arg::val(0), Arg::buf("buf"),
                         Arg::val(4),
                         Arg::val(static_cast<std::int64_t>(mpi::Datatype::Int)),
                         Arg::val(mpi::kProcNull), Arg::val(0),
                         Arg::val(mpi::kCommWorld), Arg::null()}));
  body.insert(body.end() - 2,
              Stmt::mpi(Func::Waitall, {Arg::val(1), Arg::buf("reqs"),
                                        Arg::null()}));
  body.insert(body.end() - 2,
              Stmt::thread_block_shared("sb", {Stmt::decl_int("a")},
                                        {Stmt::buf_store("sb", Expr::lit(0),
                                                         Expr::lit(1))}));
  const auto c = record_fixture(std::move(body));
  const auto bytes = corpus::encode_case(c);
  const auto back = corpus::decode_case(bytes.data(), bytes.size(), "v2");
  EXPECT_EQ(corpus::encode_case(back), bytes);
}

}  // namespace
}  // namespace mpidetect
