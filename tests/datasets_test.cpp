#include <gtest/gtest.h>

#include <set>

#include "datasets/corrbench.hpp"
#include "datasets/hypre.hpp"
#include "datasets/mbi.hpp"
#include "datasets/templates.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "mpisim/machine.hpp"
#include "passes/pipelines.hpp"
#include "progmodel/lower.hpp"

namespace mpidetect::datasets {
namespace {

MbiConfig quick_mbi() {
  MbiConfig cfg;
  cfg.scale = 0.05;
  return cfg;
}

CorrConfig quick_corr() {
  CorrConfig cfg;
  cfg.scale = 0.2;
  return cfg;
}

mpisim::RunReport simulate(const Case& c) {
  const auto m = progmodel::lower(c.program);
  mpisim::MachineConfig cfg;
  cfg.nprocs = c.program.nprocs;
  cfg.max_steps = 200'000;
  return mpisim::run(*m, cfg);
}

// ----------------------------------------------------------------- registry

TEST(Templates, EveryInjectionHasATemplate) {
  for (int i = 0; i <= static_cast<int>(Inject::MissingFinalizeCall); ++i) {
    const auto inj = static_cast<Inject>(i);
    EXPECT_FALSE(templates_for(inj).empty()) << inject_name(inj);
  }
}

TEST(Templates, EveryMbiLabelHasInjections) {
  for (const auto l : mpi::mbi_error_labels()) {
    EXPECT_FALSE(injections_for(l).empty());
  }
}

TEST(Templates, EveryCorrLabelHasInjections) {
  for (const auto l : mpi::corr_error_labels()) {
    EXPECT_FALSE(injections_for(l).empty());
  }
}

TEST(Templates, RegistryAdvertisesOnlySupportedInjections) {
  for (const Template& t : all_templates()) {
    for (const Inject inj : t.supported) {
      const auto compat = templates_for(inj);
      bool found = false;
      for (const Template* c : compat) found |= (c == &t);
      EXPECT_TRUE(found) << t.id;
    }
  }
}

// ------------------------------------------------------------------ shapes

TEST(Mbi, PaperScaleCounts) {
  const MbiConfig cfg;  // paper defaults
  std::size_t total_incorrect = 0;
  for (const auto& [l, n] : cfg.counts) {
    (void)l;
    total_incorrect += n;
  }
  EXPECT_EQ(total_incorrect, 1116u);
  EXPECT_EQ(cfg.correct, 745u);
}

TEST(Corr, PaperScaleCounts) {
  const CorrConfig cfg;
  std::size_t total_incorrect = 0;
  for (const auto& [l, n] : cfg.counts) {
    (void)l;
    total_incorrect += n;
  }
  EXPECT_EQ(total_incorrect, 214u);
  EXPECT_EQ(cfg.correct, 202u);
}

TEST(Mbi, GeneratedCountsMatchConfig) {
  const auto ds = generate_mbi(quick_mbi());
  EXPECT_EQ(ds.correct_count(),
            ds.count_mbi_label(mpi::MbiLabel::Correct));
  // Call Ordering remains the dominant class after scaling.
  EXPECT_GT(ds.count_mbi_label(mpi::MbiLabel::CallOrdering),
            ds.count_mbi_label(mpi::MbiLabel::ResourceLeak));
  EXPECT_EQ(ds.size(), ds.correct_count() + ds.incorrect_count());
}

TEST(Mbi, DeterministicForSameSeed) {
  const auto a = generate_mbi(quick_mbi());
  const auto b = generate_mbi(quick_mbi());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.cases[i].name, b.cases[i].name);
    EXPECT_EQ(a.cases[i].source_lines, b.cases[i].source_lines);
  }
}

// A suite is bit-reproducible from (name, scale, seed) alone: the
// single per-case RNG stream (templates.hpp case_rng) is the only
// randomness source, so two generations agree down to the lowered IR
// of every case — not just names and sizes.
TEST(Mbi, SuiteBitReproducibleFromSeedAlone) {
  for (const auto& [a, b] :
       {std::pair{generate_mbi(quick_mbi()), generate_mbi(quick_mbi())},
        std::pair{generate_corrbench(quick_corr()),
                  generate_corrbench(quick_corr())}}) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.cases[i].name, b.cases[i].name);
      EXPECT_EQ(ir::to_string(*progmodel::lower(a.cases[i].program)),
                ir::to_string(*progmodel::lower(b.cases[i].program)))
          << a.cases[i].name;
    }
  }
}

TEST(Mbi, DifferentSeedsChangeThePrograms) {
  MbiConfig a = quick_mbi(), b = quick_mbi();
  b.seed = a.seed + 1;
  const auto da = generate_mbi(a), db = generate_mbi(b);
  ASSERT_EQ(da.size(), db.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    differing += ir::to_string(*progmodel::lower(da.cases[i].program)) !=
                 ir::to_string(*progmodel::lower(db.cases[i].program));
  }
  EXPECT_GT(differing, 0u);
}

// Any single case can be rebuilt standalone from its (seed, ordinal)
// key — the contract the fuzz repro corpora rely on. Ordinal o of an
// MBI suite is: correct cases first (template cycled), then per error
// label (in mpi::mbi_error_labels() order) the label's injection and
// template cycles.
TEST(Mbi, CaseRebuildableStandaloneFromSeedAndOrdinal) {
  const auto cfg = quick_mbi();
  const auto ds = generate_mbi(cfg);

  // Case 0: first correct case.
  {
    Rng rng = case_rng(cfg.seed, 0);
    BuildContext ctx;
    ctx.rng = &rng;
    ctx.inject = Inject::None;
    ctx.size_class = rng.chance(0.15) ? 2 : 1;
    const auto rebuilt = all_templates()[0].fn(ctx);
    EXPECT_EQ(ir::to_string(*progmodel::lower(rebuilt)),
              ir::to_string(*progmodel::lower(ds.cases[0].program)));
  }

  // First incorrect case: ordinal == number of correct cases.
  std::uint64_t ordinal = 0;
  while (ordinal < ds.size() && !ds.cases[ordinal].incorrect) ++ordinal;
  ASSERT_LT(ordinal, ds.size());
  {
    const mpi::MbiLabel label = ds.cases[ordinal].mbi_label;
    const Inject inj = injections_for(label)[0];
    Rng rng = case_rng(cfg.seed, ordinal);
    BuildContext ctx;
    ctx.rng = &rng;
    ctx.inject = inj;
    ctx.size_class = rng.chance(0.15) ? 2 : 1;
    const auto rebuilt = templates_for(inj)[0]->fn(ctx);
    EXPECT_EQ(ir::to_string(*progmodel::lower(rebuilt)),
              ir::to_string(*progmodel::lower(ds.cases[ordinal].program)));
  }
}

TEST(Mbi, CaseNamesAreUnique) {
  const auto ds = generate_mbi(quick_mbi());
  std::set<std::string> names;
  for (const Case& c : ds.cases) names.insert(c.name);
  EXPECT_EQ(names.size(), ds.size());
}

TEST(Mbi, AllProgramsLowerAndVerify) {
  const auto ds = generate_mbi(quick_mbi());
  for (const Case& c : ds.cases) {
    const auto m = progmodel::lower(c.program);
    EXPECT_TRUE(ir::verify(*m).empty()) << c.name;
  }
}

TEST(Mbi, AllProgramsSurviveEveryOptLevel) {
  MbiConfig cfg = quick_mbi();
  cfg.scale = 0.02;
  const auto ds = generate_mbi(cfg);
  for (const Case& c : ds.cases) {
    for (const auto lvl : passes::kAllOptLevels) {
      auto m = progmodel::lower(c.program);
      passes::run_pipeline(*m, lvl);
      EXPECT_TRUE(ir::verify(*m).empty())
          << c.name << " at " << passes::opt_level_name(lvl);
    }
  }
}

TEST(Corr, GeneratedCountsAndBias) {
  CorrConfig biased = quick_corr();
  biased.strip_header = false;
  const auto with_header = generate_corrbench(biased);
  const auto stripped = generate_corrbench(quick_corr());
  ASSERT_EQ(with_header.size(), stripped.size());
  // Correct codes shrink when the header is stripped; incorrect don't.
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (!stripped.cases[i].incorrect) {
      EXPECT_GT(with_header.cases[i].source_lines,
                stripped.cases[i].source_lines + kMpitestHeaderLines - 1);
    } else {
      EXPECT_EQ(with_header.cases[i].source_lines,
                stripped.cases[i].source_lines);
    }
  }
}

TEST(Corr, UnstrippedCorrectCodesExceed103Lines) {
  CorrConfig biased = quick_corr();
  biased.strip_header = false;
  const auto ds = generate_corrbench(biased);
  for (const Case& c : ds.cases) {
    if (!c.incorrect) EXPECT_GE(c.source_lines, 103u) << c.name;
  }
}

TEST(Corr, IncorrectNamesEncodeLabelLikeTheRealSuite) {
  const auto ds = generate_corrbench(quick_corr());
  for (const Case& c : ds.cases) {
    if (c.incorrect) {
      EXPECT_NE(c.name.find(c.label_name()), std::string::npos) << c.name;
      EXPECT_NE(c.name.find(".c"), std::string::npos);
    }
  }
}

TEST(Corr, AllProgramsLowerAndVerify) {
  const auto ds = generate_corrbench(quick_corr());
  for (const Case& c : ds.cases) {
    const auto m = progmodel::lower(c.program);
    EXPECT_TRUE(ir::verify(*m).empty()) << c.name;
  }
}

TEST(Mix, ConcatenatesBothSuites) {
  const auto a = generate_mbi(quick_mbi());
  const auto b = generate_corrbench(quick_corr());
  const auto m = mix(a, b);
  EXPECT_EQ(m.size(), a.size() + b.size());
  EXPECT_EQ(m.name, "Mix");
  EXPECT_EQ(m.correct_count(), a.correct_count() + b.correct_count());
}

// --------------------------------------------------------- dynamic behaviour

TEST(Mbi, CorrectCodesRunCleanInSimulator) {
  const auto ds = generate_mbi(quick_mbi());
  for (const Case& c : ds.cases) {
    if (c.incorrect) continue;
    const auto rep = simulate(c);
    EXPECT_EQ(rep.outcome, mpisim::Outcome::Completed)
        << c.name << ": " << rep.summary();
    EXPECT_TRUE(rep.findings.empty()) << c.name << ": " << rep.summary();
  }
}

TEST(Corr, CorrectCodesRunCleanInSimulator) {
  const auto ds = generate_corrbench(quick_corr());
  for (const Case& c : ds.cases) {
    if (c.incorrect) continue;
    const auto rep = simulate(c);
    EXPECT_EQ(rep.outcome, mpisim::Outcome::Completed)
        << c.name << ": " << rep.summary();
    EXPECT_TRUE(rep.findings.empty()) << c.name << ": " << rep.summary();
  }
}

TEST(Mbi, MostIncorrectCodesManifestDynamically) {
  // Not every injected bug manifests on a deterministic run (races and
  // some orderings are silent) — exactly why dynamic tools have false
  // negatives in the paper. But the bulk must misbehave.
  const auto ds = generate_mbi(quick_mbi());
  std::size_t incorrect = 0, manifested = 0;
  for (const Case& c : ds.cases) {
    if (!c.incorrect) continue;
    ++incorrect;
    const auto rep = simulate(c);
    manifested +=
        (rep.outcome != mpisim::Outcome::Completed || !rep.findings.empty());
  }
  ASSERT_GT(incorrect, 0u);
  EXPECT_GT(static_cast<double>(manifested) / incorrect, 0.7);
}

TEST(Hypre, PairLowersAndOkRunsClean) {
  const auto pair = make_hypre();
  const auto ok = progmodel::lower(pair.ok);
  const auto ko = progmodel::lower(pair.ko);
  EXPECT_TRUE(ir::verify(*ok).empty());
  EXPECT_TRUE(ir::verify(*ko).empty());
  mpisim::MachineConfig cfg;
  cfg.nprocs = 2;
  const auto rep = mpisim::run(*ok, cfg);
  EXPECT_EQ(rep.outcome, mpisim::Outcome::Completed) << rep.summary();
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Hypre, VersionsDifferOnlyInTags) {
  const auto pair = make_hypre();
  // Same structure (function count, sizes); different tag constants.
  ASSERT_EQ(pair.ok.functions.size(), pair.ko.functions.size());
  EXPECT_EQ(pair.ok.line_count(), pair.ko.line_count());
  const auto ok_ir = progmodel::lower(pair.ok);
  const auto ko_ir = progmodel::lower(pair.ko);
  EXPECT_EQ(ok_ir->instruction_count(), ko_ir->instruction_count());
}

TEST(Hypre, RealScaleProgram) {
  const auto pair = make_hypre();
  // A "real application" compilation unit: hundreds of IR instructions,
  // multiple functions — far larger than benchmark codes.
  const auto m = progmodel::lower(pair.ok);
  EXPECT_GT(m->instruction_count(), 200u);
  EXPECT_GE(pair.ok.functions.size(), 5u);
}

}  // namespace
}  // namespace mpidetect::datasets
