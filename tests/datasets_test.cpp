#include <gtest/gtest.h>

#include <set>

#include "datasets/corrbench.hpp"
#include "datasets/hypre.hpp"
#include "datasets/mbi.hpp"
#include "datasets/templates.hpp"
#include "ir/verifier.hpp"
#include "mpisim/machine.hpp"
#include "passes/pipelines.hpp"
#include "progmodel/lower.hpp"

namespace mpidetect::datasets {
namespace {

MbiConfig quick_mbi() {
  MbiConfig cfg;
  cfg.scale = 0.05;
  return cfg;
}

CorrConfig quick_corr() {
  CorrConfig cfg;
  cfg.scale = 0.2;
  return cfg;
}

mpisim::RunReport simulate(const Case& c) {
  const auto m = progmodel::lower(c.program);
  mpisim::MachineConfig cfg;
  cfg.nprocs = c.program.nprocs;
  cfg.max_steps = 200'000;
  return mpisim::run(*m, cfg);
}

// ----------------------------------------------------------------- registry

TEST(Templates, EveryInjectionHasATemplate) {
  for (int i = 0; i <= static_cast<int>(Inject::MissingFinalizeCall); ++i) {
    const auto inj = static_cast<Inject>(i);
    EXPECT_FALSE(templates_for(inj).empty()) << inject_name(inj);
  }
}

TEST(Templates, EveryMbiLabelHasInjections) {
  for (const auto l : mpi::mbi_error_labels()) {
    EXPECT_FALSE(injections_for(l).empty());
  }
}

TEST(Templates, EveryCorrLabelHasInjections) {
  for (const auto l : mpi::corr_error_labels()) {
    EXPECT_FALSE(injections_for(l).empty());
  }
}

TEST(Templates, RegistryAdvertisesOnlySupportedInjections) {
  for (const Template& t : all_templates()) {
    for (const Inject inj : t.supported) {
      const auto compat = templates_for(inj);
      bool found = false;
      for (const Template* c : compat) found |= (c == &t);
      EXPECT_TRUE(found) << t.id;
    }
  }
}

// ------------------------------------------------------------------ shapes

TEST(Mbi, PaperScaleCounts) {
  const MbiConfig cfg;  // paper defaults
  std::size_t total_incorrect = 0;
  for (const auto& [l, n] : cfg.counts) {
    (void)l;
    total_incorrect += n;
  }
  EXPECT_EQ(total_incorrect, 1116u);
  EXPECT_EQ(cfg.correct, 745u);
}

TEST(Corr, PaperScaleCounts) {
  const CorrConfig cfg;
  std::size_t total_incorrect = 0;
  for (const auto& [l, n] : cfg.counts) {
    (void)l;
    total_incorrect += n;
  }
  EXPECT_EQ(total_incorrect, 214u);
  EXPECT_EQ(cfg.correct, 202u);
}

TEST(Mbi, GeneratedCountsMatchConfig) {
  const auto ds = generate_mbi(quick_mbi());
  EXPECT_EQ(ds.correct_count(),
            ds.count_mbi_label(mpi::MbiLabel::Correct));
  // Call Ordering remains the dominant class after scaling.
  EXPECT_GT(ds.count_mbi_label(mpi::MbiLabel::CallOrdering),
            ds.count_mbi_label(mpi::MbiLabel::ResourceLeak));
  EXPECT_EQ(ds.size(), ds.correct_count() + ds.incorrect_count());
}

TEST(Mbi, DeterministicForSameSeed) {
  const auto a = generate_mbi(quick_mbi());
  const auto b = generate_mbi(quick_mbi());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.cases[i].name, b.cases[i].name);
    EXPECT_EQ(a.cases[i].source_lines, b.cases[i].source_lines);
  }
}

TEST(Mbi, CaseNamesAreUnique) {
  const auto ds = generate_mbi(quick_mbi());
  std::set<std::string> names;
  for (const Case& c : ds.cases) names.insert(c.name);
  EXPECT_EQ(names.size(), ds.size());
}

TEST(Mbi, AllProgramsLowerAndVerify) {
  const auto ds = generate_mbi(quick_mbi());
  for (const Case& c : ds.cases) {
    const auto m = progmodel::lower(c.program);
    EXPECT_TRUE(ir::verify(*m).empty()) << c.name;
  }
}

TEST(Mbi, AllProgramsSurviveEveryOptLevel) {
  MbiConfig cfg = quick_mbi();
  cfg.scale = 0.02;
  const auto ds = generate_mbi(cfg);
  for (const Case& c : ds.cases) {
    for (const auto lvl : passes::kAllOptLevels) {
      auto m = progmodel::lower(c.program);
      passes::run_pipeline(*m, lvl);
      EXPECT_TRUE(ir::verify(*m).empty())
          << c.name << " at " << passes::opt_level_name(lvl);
    }
  }
}

TEST(Corr, GeneratedCountsAndBias) {
  CorrConfig biased = quick_corr();
  biased.strip_header = false;
  const auto with_header = generate_corrbench(biased);
  const auto stripped = generate_corrbench(quick_corr());
  ASSERT_EQ(with_header.size(), stripped.size());
  // Correct codes shrink when the header is stripped; incorrect don't.
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (!stripped.cases[i].incorrect) {
      EXPECT_GT(with_header.cases[i].source_lines,
                stripped.cases[i].source_lines + kMpitestHeaderLines - 1);
    } else {
      EXPECT_EQ(with_header.cases[i].source_lines,
                stripped.cases[i].source_lines);
    }
  }
}

TEST(Corr, UnstrippedCorrectCodesExceed103Lines) {
  CorrConfig biased = quick_corr();
  biased.strip_header = false;
  const auto ds = generate_corrbench(biased);
  for (const Case& c : ds.cases) {
    if (!c.incorrect) EXPECT_GE(c.source_lines, 103u) << c.name;
  }
}

TEST(Corr, IncorrectNamesEncodeLabelLikeTheRealSuite) {
  const auto ds = generate_corrbench(quick_corr());
  for (const Case& c : ds.cases) {
    if (c.incorrect) {
      EXPECT_NE(c.name.find(c.label_name()), std::string::npos) << c.name;
      EXPECT_NE(c.name.find(".c"), std::string::npos);
    }
  }
}

TEST(Corr, AllProgramsLowerAndVerify) {
  const auto ds = generate_corrbench(quick_corr());
  for (const Case& c : ds.cases) {
    const auto m = progmodel::lower(c.program);
    EXPECT_TRUE(ir::verify(*m).empty()) << c.name;
  }
}

TEST(Mix, ConcatenatesBothSuites) {
  const auto a = generate_mbi(quick_mbi());
  const auto b = generate_corrbench(quick_corr());
  const auto m = mix(a, b);
  EXPECT_EQ(m.size(), a.size() + b.size());
  EXPECT_EQ(m.name, "Mix");
  EXPECT_EQ(m.correct_count(), a.correct_count() + b.correct_count());
}

// --------------------------------------------------------- dynamic behaviour

TEST(Mbi, CorrectCodesRunCleanInSimulator) {
  const auto ds = generate_mbi(quick_mbi());
  for (const Case& c : ds.cases) {
    if (c.incorrect) continue;
    const auto rep = simulate(c);
    EXPECT_EQ(rep.outcome, mpisim::Outcome::Completed)
        << c.name << ": " << rep.summary();
    EXPECT_TRUE(rep.findings.empty()) << c.name << ": " << rep.summary();
  }
}

TEST(Corr, CorrectCodesRunCleanInSimulator) {
  const auto ds = generate_corrbench(quick_corr());
  for (const Case& c : ds.cases) {
    if (c.incorrect) continue;
    const auto rep = simulate(c);
    EXPECT_EQ(rep.outcome, mpisim::Outcome::Completed)
        << c.name << ": " << rep.summary();
    EXPECT_TRUE(rep.findings.empty()) << c.name << ": " << rep.summary();
  }
}

TEST(Mbi, MostIncorrectCodesManifestDynamically) {
  // Not every injected bug manifests on a deterministic run (races and
  // some orderings are silent) — exactly why dynamic tools have false
  // negatives in the paper. But the bulk must misbehave.
  const auto ds = generate_mbi(quick_mbi());
  std::size_t incorrect = 0, manifested = 0;
  for (const Case& c : ds.cases) {
    if (!c.incorrect) continue;
    ++incorrect;
    const auto rep = simulate(c);
    manifested +=
        (rep.outcome != mpisim::Outcome::Completed || !rep.findings.empty());
  }
  ASSERT_GT(incorrect, 0u);
  EXPECT_GT(static_cast<double>(manifested) / incorrect, 0.7);
}

TEST(Hypre, PairLowersAndOkRunsClean) {
  const auto pair = make_hypre();
  const auto ok = progmodel::lower(pair.ok);
  const auto ko = progmodel::lower(pair.ko);
  EXPECT_TRUE(ir::verify(*ok).empty());
  EXPECT_TRUE(ir::verify(*ko).empty());
  mpisim::MachineConfig cfg;
  cfg.nprocs = 2;
  const auto rep = mpisim::run(*ok, cfg);
  EXPECT_EQ(rep.outcome, mpisim::Outcome::Completed) << rep.summary();
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Hypre, VersionsDifferOnlyInTags) {
  const auto pair = make_hypre();
  // Same structure (function count, sizes); different tag constants.
  ASSERT_EQ(pair.ok.functions.size(), pair.ko.functions.size());
  EXPECT_EQ(pair.ok.line_count(), pair.ko.line_count());
  const auto ok_ir = progmodel::lower(pair.ok);
  const auto ko_ir = progmodel::lower(pair.ko);
  EXPECT_EQ(ok_ir->instruction_count(), ko_ir->instruction_count());
}

TEST(Hypre, RealScaleProgram) {
  const auto pair = make_hypre();
  // A "real application" compilation unit: hundreds of IR instructions,
  // multiple functions — far larger than benchmark codes.
  const auto m = progmodel::lower(pair.ok);
  EXPECT_GT(m->instruction_count(), 200u);
  EXPECT_GE(pair.ok.functions.size(), 5u);
}

}  // namespace
}  // namespace mpidetect::datasets
