#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "mpi/api.hpp"
#include "mpi/errors.hpp"

namespace mpidetect::mpi {
namespace {

TEST(Api, NamesMatchMpiSpelling) {
  EXPECT_EQ(func_name(Func::Send), "MPI_Send");
  EXPECT_EQ(func_name(Func::CommRank), "MPI_Comm_rank");
  EXPECT_EQ(func_name(Func::TypeContiguous), "MPI_Type_contiguous");
  EXPECT_EQ(func_name(Func::WinFence), "MPI_Win_fence");
}

TEST(Api, NameRoundTrip) {
  for (std::size_t i = 0; i < kNumFuncs; ++i) {
    const Func f = static_cast<Func>(i);
    const auto back = func_from_name(func_name(f));
    ASSERT_TRUE(back.has_value()) << func_name(f);
    EXPECT_EQ(*back, f);
  }
}

TEST(Api, NonMpiNamesRejected) {
  EXPECT_FALSE(func_from_name("printf").has_value());
  EXPECT_FALSE(func_from_name("MPI_NoSuchThing").has_value());
}

TEST(Api, BuiltinDatatypeSizes) {
  EXPECT_EQ(builtin_datatype_size(static_cast<std::int32_t>(Datatype::Int)),
            4u);
  EXPECT_EQ(
      builtin_datatype_size(static_cast<std::int32_t>(Datatype::Double)), 8u);
  EXPECT_EQ(builtin_datatype_size(static_cast<std::int32_t>(Datatype::Char)),
            1u);
  EXPECT_FALSE(builtin_datatype_size(0).has_value());
  EXPECT_FALSE(builtin_datatype_size(999).has_value());
}

TEST(Api, ReduceOpValidity) {
  EXPECT_TRUE(is_valid_reduce_op(static_cast<std::int32_t>(ReduceOp::Sum)));
  EXPECT_TRUE(is_valid_reduce_op(static_cast<std::int32_t>(ReduceOp::Prod)));
  EXPECT_FALSE(is_valid_reduce_op(0));
  EXPECT_FALSE(is_valid_reduce_op(77));
}

TEST(Api, SignatureShapes) {
  EXPECT_EQ(signature(Func::Send).params.size(), 6u);
  EXPECT_EQ(signature(Func::Recv).params.size(), 7u);
  EXPECT_EQ(signature(Func::Isend).params.size(), 7u);
  EXPECT_EQ(signature(Func::Barrier).params.size(), 1u);
  EXPECT_EQ(signature(Func::Init).params.size(), 0u);
  EXPECT_EQ(signature(Func::Accumulate).params.size(), 9u);
}

TEST(Api, SignatureRoles) {
  const auto& send = signature(Func::Send);
  EXPECT_EQ(send.params[0].role, ArgRole::Buffer);
  EXPECT_EQ(send.params[3].role, ArgRole::DestRank);
  EXPECT_EQ(send.params[5].role, ArgRole::Comm);
  const auto& recv = signature(Func::Recv);
  EXPECT_EQ(recv.params[0].role, ArgRole::RecvBuffer);
  EXPECT_EQ(recv.params[3].role, ArgRole::SrcRank);
  EXPECT_EQ(recv.params[6].role, ArgRole::StatusOut);
}

TEST(Api, ArgRoleTypes) {
  EXPECT_EQ(arg_role_type(ArgRole::Buffer), ir::Type::Ptr);
  EXPECT_EQ(arg_role_type(ArgRole::Count), ir::Type::I32);
  EXPECT_EQ(arg_role_type(ArgRole::TargetDisp), ir::Type::I64);
  EXPECT_EQ(arg_role_type(ArgRole::RequestOut), ir::Type::Ptr);
}

TEST(Api, CollectiveClassification) {
  EXPECT_TRUE(is_collective(Func::Barrier));
  EXPECT_TRUE(is_collective(Func::Allreduce));
  EXPECT_TRUE(is_collective(Func::WinFence));
  EXPECT_FALSE(is_collective(Func::Send));
  EXPECT_FALSE(is_collective(Func::Wait));
}

TEST(Api, BlockingAndRequestClassification) {
  EXPECT_TRUE(is_blocking_p2p(Func::Recv));
  EXPECT_FALSE(is_blocking_p2p(Func::Irecv));
  EXPECT_TRUE(starts_request(Func::Isend));
  EXPECT_TRUE(starts_request(Func::Start));
  EXPECT_FALSE(starts_request(Func::Wait));
}

TEST(Api, WidenedNamesMatchMpiSpelling) {
  EXPECT_EQ(func_name(Func::Ibarrier), "MPI_Ibarrier");
  EXPECT_EQ(func_name(Func::Ibcast), "MPI_Ibcast");
  EXPECT_EQ(func_name(Func::Iallreduce), "MPI_Iallreduce");
  EXPECT_EQ(func_name(Func::Ialltoall), "MPI_Ialltoall");
  EXPECT_EQ(func_name(Func::Sendrecv), "MPI_Sendrecv");
  EXPECT_EQ(func_name(Func::Probe), "MPI_Probe");
  EXPECT_EQ(func_name(Func::Iprobe), "MPI_Iprobe");
  EXPECT_EQ(func_name(Func::Waitany), "MPI_Waitany");
  EXPECT_EQ(func_name(Func::Waitsome), "MPI_Waitsome");
  EXPECT_EQ(func_name(Func::Testall), "MPI_Testall");
}

TEST(Api, WidenedSignatureShapes) {
  EXPECT_EQ(signature(Func::Ibarrier).params.size(), 2u);
  EXPECT_EQ(signature(Func::Ibcast).params.size(), 6u);
  EXPECT_EQ(signature(Func::Ireduce).params.size(), 8u);
  EXPECT_EQ(signature(Func::Iallreduce).params.size(), 7u);
  EXPECT_EQ(signature(Func::Igather).params.size(), 9u);
  EXPECT_EQ(signature(Func::Iscatter).params.size(), 9u);
  EXPECT_EQ(signature(Func::Ialltoall).params.size(), 8u);
  EXPECT_EQ(signature(Func::Sendrecv).params.size(), 12u);
  EXPECT_EQ(signature(Func::Probe).params.size(), 4u);
  EXPECT_EQ(signature(Func::Iprobe).params.size(), 5u);
  EXPECT_EQ(signature(Func::Waitany).params.size(), 4u);
  EXPECT_EQ(signature(Func::Waitsome).params.size(), 5u);
  EXPECT_EQ(signature(Func::Testall).params.size(), 4u);
}

TEST(Api, WidenedSignatureRoles) {
  // Every nonblocking collective ends in RequestOut.
  for (const Func f : {Func::Ibarrier, Func::Ibcast, Func::Ireduce,
                       Func::Iallreduce, Func::Igather, Func::Iscatter,
                       Func::Ialltoall}) {
    const auto& sig = signature(f);
    ASSERT_FALSE(sig.params.empty());
    EXPECT_EQ(sig.params.back().role, ArgRole::RequestOut) << func_name(f);
  }
  // Sendrecv carries both halves: send tag at 4, receive tag at 9.
  const auto& sr = signature(Func::Sendrecv);
  EXPECT_EQ(sr.params[0].role, ArgRole::Buffer);
  EXPECT_EQ(sr.params[3].role, ArgRole::DestRank);
  EXPECT_EQ(sr.params[4].role, ArgRole::Tag);
  EXPECT_EQ(sr.params[5].role, ArgRole::RecvBuffer);
  EXPECT_EQ(sr.params[8].role, ArgRole::SrcRank);
  EXPECT_EQ(sr.params[9].role, ArgRole::Tag);
  EXPECT_EQ(sr.params[11].role, ArgRole::StatusOut);
  const auto& wa = signature(Func::Waitany);
  EXPECT_EQ(wa.params[1].role, ArgRole::RequestArray);
  EXPECT_EQ(wa.params[2].role, ArgRole::IndexOut);
  const auto& ip = signature(Func::Iprobe);
  EXPECT_EQ(ip.params[0].role, ArgRole::SrcRank);
  EXPECT_EQ(ip.params[3].role, ArgRole::IntOut);
}

TEST(Api, NbcClassificationAndBlockingEquivalents) {
  const std::pair<Func, Func> pairs[] = {
      {Func::Ibarrier, Func::Barrier},   {Func::Ibcast, Func::Bcast},
      {Func::Ireduce, Func::Reduce},     {Func::Iallreduce, Func::Allreduce},
      {Func::Igather, Func::Gather},     {Func::Iscatter, Func::Scatter},
      {Func::Ialltoall, Func::Alltoall},
  };
  for (const auto& [nbc, blocking] : pairs) {
    EXPECT_TRUE(is_nonblocking_collective(nbc)) << func_name(nbc);
    EXPECT_TRUE(is_collective(nbc)) << func_name(nbc);
    EXPECT_TRUE(starts_request(nbc)) << func_name(nbc);
    ASSERT_TRUE(blocking_equivalent(nbc).has_value()) << func_name(nbc);
    EXPECT_EQ(*blocking_equivalent(nbc), blocking) << func_name(nbc);
    EXPECT_FALSE(is_nonblocking_collective(blocking)) << func_name(blocking);
  }
  EXPECT_FALSE(is_nonblocking_collective(Func::Isend));
  EXPECT_FALSE(is_nonblocking_collective(Func::Sendrecv));
}

TEST(Api, WidenedP2pClassification) {
  EXPECT_TRUE(is_blocking_p2p(Func::Sendrecv));
  // Probe blocks but moves no payload; the classifier covers payload-
  // carrying p2p only.
  EXPECT_FALSE(is_blocking_p2p(Func::Probe));
  EXPECT_FALSE(is_blocking_p2p(Func::Iprobe));
  EXPECT_FALSE(is_collective(Func::Sendrecv));
  EXPECT_FALSE(starts_request(Func::Sendrecv));
  EXPECT_FALSE(starts_request(Func::Waitany));
}

TEST(Api, DeclareCreatesMatchingExtern) {
  ir::Module m("t");
  ir::Function* f = declare(m, Func::Send);
  EXPECT_TRUE(f->is_declaration());
  EXPECT_EQ(f->name(), "MPI_Send");
  EXPECT_EQ(f->num_args(), 6u);
  EXPECT_EQ(f->arg(0)->type(), ir::Type::Ptr);
  EXPECT_EQ(f->arg(1)->type(), ir::Type::I32);
  // Idempotent.
  EXPECT_EQ(declare(m, Func::Send), f);
}

TEST(Api, ClassifyCall) {
  ir::Module m("t");
  ir::Function* send = declare(m, Func::Send);
  ir::Function* other = m.get_or_declare("helper", ir::Type::Void, {});
  ir::Function* fn = m.create_function("main", ir::Type::I32, {});
  ir::IRBuilder b(m);
  b.set_insert_point(fn->create_block("entry"));
  ir::Instruction* buf = b.alloca_(ir::Type::I32, 4);
  ir::Instruction* call = b.call(
      send, {buf, m.get_i32(4), m.get_i32(1), m.get_i32(0), m.get_i32(0),
             m.get_i32(kCommWorld)});
  ir::Instruction* call2 = b.call(other, {});
  b.ret(m.get_i32(0));
  EXPECT_EQ(classify_call(*call), Func::Send);
  EXPECT_FALSE(classify_call(*call2).has_value());
  EXPECT_FALSE(classify_call(*buf).has_value());
}

TEST(Errors, MbiLabelNames) {
  EXPECT_EQ(mbi_label_name(MbiLabel::CallOrdering), "Call Ordering");
  EXPECT_EQ(mbi_label_name(MbiLabel::ResourceLeak), "Resource Leak");
  EXPECT_EQ(mbi_label_name(MbiLabel::Correct), "Correct");
}

TEST(Errors, CorrLabelNames) {
  EXPECT_EQ(corr_label_name(CorrLabel::ArgError), "ArgError");
  EXPECT_EQ(corr_label_name(CorrLabel::MissplacedCall), "MissplacedCall");
}

TEST(Errors, ErrorLabelListsExcludeCorrect) {
  EXPECT_EQ(mbi_error_labels().size(), kNumMbiLabels - 1);
  EXPECT_EQ(corr_error_labels().size(), kNumCorrLabels - 1);
  for (const auto l : mbi_error_labels()) EXPECT_TRUE(is_incorrect(l));
  for (const auto l : corr_error_labels()) EXPECT_TRUE(is_incorrect(l));
  EXPECT_FALSE(is_incorrect(MbiLabel::Correct));
  EXPECT_FALSE(is_incorrect(CorrLabel::Correct));
}

}  // namespace
}  // namespace mpidetect::mpi
