// Chaos tests for the serving path: drive the daemon's failure modes on
// purpose through the fault-injection registry (support/faultpoint.hpp)
// and assert the robustness invariant the failure model promises
// (docs/SERVING.md): every admitted request gets EXACTLY ONE terminal
// frame (VERDICT, ERROR or EXPIRED) or its connection dies cleanly —
// and the daemon itself never crashes, never wedges, and serves the
// next client as if nothing happened.
//
// Also the unit tests for the registry itself: spec grammar, seeded
// determinism, nth/count/probability gating, wildcard precedence.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <set>
#include <thread>

#include "core/detector.hpp"
#include "core/encoding_cache.hpp"
#include "core/eval_engine.hpp"
#include "datasets/spec.hpp"
#include "io/serialize.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "serve/wire.hpp"
#include "support/check.hpp"
#include "support/faultpoint.hpp"

namespace mpidetect {
namespace {

namespace fs = std::filesystem;

/// Disarms the global registry on scope exit: no chaos spec may leak
/// into another test (or into the rest of the suite).
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    fault::Registry::global().configure(spec);
  }
  ~FaultGuard() { fault::Registry::global().disarm(); }
};

struct TempDir {
  fs::path path;

  explicit TempDir(const std::string& name) {
    path = fs::temp_directory_path() / ("mpidetect_chaos_" + name);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const char* name) const { return (path / name).string(); }
};

// ---- registry unit tests ----------------------------------------------------

TEST(FaultRegistryTest, BadSpecsThrowWithTheOffendingToken) {
  fault::Registry reg;
  for (const char* bad :
       {"serve.recv.short:p=1.5", "serve.recv.short:p=banana",
        "point:nth=x", "point:count=1.5", ":p=0.5", "bad name:p=1",
        "point:unknown=1", "point:p", "seed=abc", "seed=1:p=0.5",
        "point:ms=999999999"}) {
    try {
      reg.configure(bad);
      FAIL() << "accepted bad spec: " << bad;
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find("fault spec"), std::string::npos)
          << bad;
    }
  }
  EXPECT_FALSE(reg.armed());  // a throwing configure leaves it disarmed
}

TEST(FaultRegistryTest, EmptySpecDisarmsAndDisarmedPointsNeverFire) {
  fault::Registry reg;
  reg.configure("");
  EXPECT_FALSE(reg.armed());
  EXPECT_FALSE(reg.should_fire("anything.at.all"));
  reg.configure("x:p=1");
  EXPECT_TRUE(reg.armed());
  reg.disarm();
  EXPECT_FALSE(reg.armed());
  EXPECT_EQ(reg.fired_total(), 0u);
}

TEST(FaultRegistryTest, ProbabilityIsSeededAndDeterministic) {
  fault::Registry a, b;
  a.configure("seed=11,p.x:p=0.3");
  b.configure("seed=11,p.x:p=0.3");
  std::vector<bool> fa, fb;
  for (int i = 0; i < 200; ++i) {
    fa.push_back(a.should_fire("p.x"));
    fb.push_back(b.should_fire("p.x"));
  }
  EXPECT_EQ(fa, fb);  // identical seed → identical campaign
  const auto fired = static_cast<double>(a.fires("p.x"));
  EXPECT_GT(fired, 200 * 0.3 - 40);  // roughly the asked-for rate
  EXPECT_LT(fired, 200 * 0.3 + 40);

  fault::Registry c;
  c.configure("seed=12,p.x:p=0.3");
  std::vector<bool> fc;
  for (int i = 0; i < 200; ++i) fc.push_back(c.should_fire("p.x"));
  EXPECT_NE(fa, fc);  // a different seed reshuffles the pattern

  // The decision function is exposed and pure: predict hit 1 exactly.
  const bool predicted = fault::fire_draw(11, "p.x", 1) < 0.3;
  EXPECT_EQ(fa[0], predicted);
}

TEST(FaultRegistryTest, NthAndCountGatesCompose) {
  fault::Registry reg;
  reg.configure("n.x:nth=3,c.x:count=2");
  std::vector<bool> nth;
  for (int i = 0; i < 9; ++i) nth.push_back(reg.should_fire("n.x"));
  EXPECT_EQ(nth, (std::vector<bool>{false, false, true, false, false, true,
                                    false, false, true}));
  int fires = 0;
  for (int i = 0; i < 10; ++i) fires += reg.should_fire("c.x") ? 1 : 0;
  EXPECT_EQ(fires, 2);  // count caps the rule
  EXPECT_EQ(reg.hits("c.x"), 10u);
  EXPECT_EQ(reg.fires("c.x"), 2u);
  EXPECT_EQ(reg.fired_total(), 3u + 2u);
}

TEST(FaultRegistryTest, ExactRuleBeatsWildcardAndStallMsPassesThrough) {
  fault::Registry reg;
  reg.configure("serve.*:p=0:ms=5,serve.recv.stall:ms=77");
  // The wildcard (p=0) must not swallow the exact rule's hits.
  std::uint32_t ms = 0;
  EXPECT_TRUE(reg.should_fire("serve.recv.stall", &ms));
  EXPECT_EQ(ms, 77u);
  // Other serve.* points match the wildcard, which never fires (p=0).
  EXPECT_FALSE(reg.should_fire("serve.send.stall"));
  EXPECT_EQ(reg.hits("serve.send.stall"), 1u);
}

// ---- storage-path faults ----------------------------------------------------

TEST(FaultStorageTest, InjectedEnospcAbortsSaveAndLeavesNoTmp) {
  TempDir dir("enospc");
  FaultGuard guard("io.save.enospc:count=1");
  const std::string path = dir.file("out.bin");
  EXPECT_THROW(
      io::save_file(path, [](io::Writer& w) { w.u64(42); }),
      io::FormatError);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // no partial litter
  // The count=1 budget is spent: the retry succeeds.
  io::save_file(path, [](io::Writer& w) { w.u64(42); });
  EXPECT_TRUE(fs::exists(path));
}

TEST(FaultStorageTest, TornWriteIsTreatedAsCorruptionByTheLoader) {
  TempDir dir("torn");
  FaultGuard guard("io.save.torn:count=1");
  const std::string path = dir.file("out.bin");
  io::save_file(path, [](io::Writer& w) {
    io::write_section(w, "TORN", 1);
    w.str("a payload long enough that half of it is visibly missing");
  });
  EXPECT_TRUE(fs::exists(path));  // the torn file DID land
  EXPECT_THROW(io::load_file(path,
                             [](io::Reader& r) {
                               io::read_section(r, "TORN", 1, "torn test");
                               (void)r.str(4096);
                             }),
               io::FormatError);
}

TEST(FaultStorageTest, SpillEnospcDegradesCacheToMemoryNotFailure) {
  TempDir dir("spill");
  FaultGuard guard("cache.spill.enospc");
  core::EncodingCache cache;
  cache.set_spill_dir(dir.file("cache"));
  const auto ds = datasets::make_dataset("mbi:0.02@7");
  // Encoding proceeds; only the disk write is refused.
  (void)cache.features(ds, passes::OptLevel::O0, ir2vec::Normalization::None,
                       1, 2);
  EXPECT_EQ(cache.disk_writes(), 0u);
  EXPECT_EQ(cache.feature_set_count(), 1u);  // served from memory
}

// ---- serving-path chaos -----------------------------------------------------

constexpr const char* kSpec = "mbi:0.02@7";

core::DetectorConfig tiny_config() {
  core::DetectorConfig cfg;
  cfg.ir2vec.use_ga = false;
  cfg.gnn.cfg.embed_dim = 8;
  cfg.gnn.cfg.layers = {16, 8};
  cfg.gnn.cfg.fc_hidden = 8;
  cfg.gnn.cfg.epochs = 2;
  return cfg;
}

/// One trained bundle shared by every chaos campaign.
const std::string& bundle() {
  static const std::string path = [] {
    static TempDir dir("bundle");
    const std::string p = dir.file("gnn.mpib");
    const auto ds = datasets::make_dataset(kSpec);
    auto& registry = core::DetectorRegistry::global();
    auto det = registry.create("gnn", tiny_config());
    core::EvalEngine engine(2);
    engine.fit_full(*det, ds);
    registry.save_bundle("gnn", *det, p);
    return p;
  }();
  return path;
}

serve::ServerOptions chaos_options() {
  serve::ServerOptions opts;
  opts.model_paths = {bundle()};
  opts.queue_capacity = 8;
  opts.max_batch = 4;
  opts.threads = 2;
  opts.io_timeout_ms = 2000;  // bounded: a chaos stall cannot wedge CI
  return opts;
}

/// A connection whose SERVER end carries the "serve" fault tag — the
/// same asymmetry as the daemon: chaos shakes the server, the client
/// doing the asserting stays clean.
struct ChaosConn {
  std::unique_ptr<serve::Transport> client;
  std::unique_ptr<serve::Transport> server_end;
  std::thread th;

  explicit ChaosConn(serve::Server& s) {
    auto [a, b] = serve::local_pair();
    client = std::move(a);
    server_end = std::move(b);
    server_end->set_fault_tag("serve");
    th = std::thread(
        [&s, this] { s.serve_connection(*server_end, "chaos-client"); });
  }
  ~ChaosConn() {
    if (client) client->shutdown();
    if (th.joinable()) th.join();
  }
};

struct CampaignResult {
  std::set<std::uint64_t> terminal;   // ids that got VERDICT/ERROR/EXPIRED
  std::size_t duplicate_answers = 0;  // terminal frames for an answered id
  bool connection_died = false;
};

/// Submits ids 1..n and reads until every id has a terminal answer or
/// the (sabotaged) connection dies. BUSY is resubmitted — that is the
/// client half of the retry contract.
CampaignResult run_campaign(serve::Server& server, std::size_t n) {
  ChaosConn conn(server);
  CampaignResult r;
  try {
    for (std::uint64_t id = 1; id <= n; ++id) {
      serve::write_frame(*conn.client,
                         serve::Submit{id, "", kSpec, (id - 1) % 8});
    }
    while (r.terminal.size() < n) {
      const auto frame = serve::read_frame(*conn.client, "chaos-server");
      if (!frame) {
        r.connection_died = true;
        break;
      }
      const auto terminal_id = [&](std::uint64_t id) {
        if (!r.terminal.insert(id).second) ++r.duplicate_answers;
      };
      if (const auto* v = std::get_if<serve::WireVerdict>(&*frame)) {
        terminal_id(v->request_id);
      } else if (const auto* e = std::get_if<serve::Error>(&*frame)) {
        if (e->request_id == 0) {
          r.connection_died = true;  // framing lost, connection over
          break;
        }
        terminal_id(e->request_id);
      } else if (const auto* x = std::get_if<serve::Expired>(&*frame)) {
        terminal_id(x->request_id);
      } else if (const auto* b = std::get_if<serve::Busy>(&*frame)) {
        serve::write_frame(
            *conn.client,
            serve::Submit{b->request_id, "", kSpec, (b->request_id - 1) % 8});
      } else {
        ADD_FAILURE() << "unexpected frame "
                      << serve::frame_type_name(serve::frame_type(*frame));
        break;
      }
    }
  } catch (const serve::TransportError&) {
    r.connection_died = true;
  } catch (const io::FormatError&) {
    // An injected short/torn write can hand the client a mangled frame;
    // for the invariant that is the same as a dead connection.
    r.connection_died = true;
  }
  return r;
}

/// After any campaign the daemon must serve a clean client perfectly.
void expect_server_healthy(serve::Server& server) {
  fault::Registry::global().disarm();
  ChaosConn conn(server);  // tag set, but the registry is disarmed
  serve::write_frame(*conn.client, serve::Submit{901, "", kSpec, 0});
  const auto frame = serve::read_frame(*conn.client, "healthy");
  ASSERT_TRUE(frame.has_value());
  const auto& v = std::get<serve::WireVerdict>(*frame);
  EXPECT_EQ(v.request_id, 901u);
}

TEST(ChaosServeTest, RecoverableTransportFaultsServeEveryRequest) {
  serve::Server server(chaos_options());
  server.start();
  // Short reads, short writes and spurious EINTR are RECOVERABLE: the
  // retry loops in the transport must absorb them all, at high rates.
  for (const char* spec :
       {"seed=1,serve.recv.short:p=0.5",
        "seed=2,serve.send.short:p=0.5",
        "seed=3,serve.recv.eintr:p=0.3",
        "seed=4,serve.recv.short:p=0.3,serve.send.short:p=0.3"}) {
    FaultGuard guard(spec);
    const auto r = run_campaign(server, 12);
    EXPECT_FALSE(r.connection_died) << spec;
    EXPECT_EQ(r.terminal.size(), 12u) << spec;
    EXPECT_EQ(r.duplicate_answers, 0u) << spec;
    EXPECT_GT(fault::Registry::global().fired_total(), 0u) << spec;
  }
  expect_server_healthy(server);
  server.stop();
}

TEST(ChaosServeTest, DestructiveTransportFaultsNeverCrashOrDoubleAnswer) {
  serve::Server server(chaos_options());
  server.start();
  // Resets and stalls are DESTRUCTIVE: connections may die mid-flight.
  // The invariant that must hold anyway: at most one terminal answer
  // per id, and the daemon survives to serve the next client.
  for (const char* spec :
       {"seed=5,serve.recv.reset:nth=5",
        "seed=6,serve.send.reset:nth=7",
        "seed=7,serve.*:p=0.05",
        "seed=8,serve.recv.stall:p=0.2:ms=10,serve.send.reset:nth=9"}) {
    FaultGuard guard(spec);
    const auto r = run_campaign(server, 12);
    EXPECT_EQ(r.duplicate_answers, 0u) << spec;
    expect_server_healthy(server);
  }
  server.stop();
}

TEST(ChaosServeTest, DetectorThrowPoisonsOnlyTheBatchNotTheWorker) {
  serve::Server server(chaos_options());
  // Admit a burst first (worker not started), then arm the throw for
  // exactly one batch dispatch: the worker must degrade to singleton
  // retries and still answer every request with a VERDICT.
  ChaosConn conn(server);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    serve::write_frame(*conn.client, serve::Submit{id, "", kSpec, id - 1});
  }
  while (server.snapshot_stats().received < 4) std::this_thread::yield();
  FaultGuard guard("serve.batch.throw:count=1");
  server.start();

  std::set<std::uint64_t> served;
  while (served.size() < 4) {
    const auto frame = serve::read_frame(*conn.client, "server");
    ASSERT_TRUE(frame.has_value());
    const auto& v = std::get<serve::WireVerdict>(*frame);
    EXPECT_EQ(v.batch_size, 1u);  // the fallback runs them one by one
    served.insert(v.request_id);
  }
  EXPECT_EQ(served, (std::set<std::uint64_t>{1, 2, 3, 4}));
  const auto stats = server.snapshot_stats();
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.request_errors, 0u);
  EXPECT_EQ(stats.faults_fired, 1u);
  server.stop();
}

TEST(ChaosServeTest, SlowBatchTripsTheWatchdogOnceAndIsStillServed) {
  auto opts = chaos_options();
  opts.watchdog_ms = 20;
  serve::Server server(opts);
  ChaosConn conn(server);
  serve::write_frame(*conn.client, serve::Submit{1, "", kSpec, 0});
  while (server.snapshot_stats().received < 1) std::this_thread::yield();
  FaultGuard guard("serve.batch.slow:count=1:ms=120");
  server.start();

  const auto frame = serve::read_frame(*conn.client, "server");
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(std::get<serve::WireVerdict>(*frame).request_id, 1u);
  const auto stats = server.snapshot_stats();
  EXPECT_EQ(stats.watchdog_trips, 1u);  // one stuck batch, ONE trip
  EXPECT_EQ(stats.served, 1u);
  server.stop();
}

TEST(ChaosServeTest, SpillFaultDegradesServingCacheToMemory) {
  TempDir dir("serve_spill");
  auto opts = chaos_options();
  opts.cache_dir = dir.file("cache");
  serve::Server server(opts);
  server.start();
  FaultGuard guard("cache.spill.enospc");
  ChaosConn conn(server);
  serve::write_frame(*conn.client, serve::Submit{1, "", kSpec, 0});
  const auto frame = serve::read_frame(*conn.client, "server");
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(std::get<serve::WireVerdict>(*frame).request_id, 1u);
  const auto stats = server.snapshot_stats();
  EXPECT_EQ(stats.cache_disk_writes, 0u);  // refused, and nobody died
  EXPECT_GT(stats.faults_fired, 0u);
  server.stop();
}

}  // namespace
}  // namespace mpidetect
