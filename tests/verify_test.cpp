#include <gtest/gtest.h>

#include "datasets/corrbench.hpp"
#include "datasets/mbi.hpp"
#include "verify/tool.hpp"

namespace mpidetect::verify {
namespace {

datasets::Dataset small_mbi() {
  datasets::MbiConfig cfg;
  cfg.scale = 0.08;
  return datasets::generate_mbi(cfg);
}

TEST(Tools, NamesMatchPaper) {
  EXPECT_EQ(make_itac_lite()->name(), "ITAC");
  EXPECT_EQ(make_must_lite()->name(), "MUST");
  EXPECT_EQ(make_parcoach_lite()->name(), "PARCOACH");
  EXPECT_EQ(make_mpichecker_lite()->name(), "MPI-Checker");
}

TEST(Tools, DiagnosticNames) {
  EXPECT_EQ(diagnostic_name(Diagnostic::Correct), "correct");
  EXPECT_EQ(diagnostic_name(Diagnostic::Timeout), "timeout");
}

TEST(Tools, EvaluateCoversWholeDataset) {
  const auto ds = small_mbi();
  auto tool = make_mpichecker_lite();
  const auto c = evaluate_tool(*tool, ds, 4);
  EXPECT_EQ(c.population(), ds.size());
}

TEST(ItacLite, HighPrecisionProfile) {
  // ITAC's hallmark in Table III: near-perfect precision/specificity and
  // a non-trivial number of inconclusive (TO) codes.
  const auto ds = small_mbi();
  auto tool = make_itac_lite();
  const auto c = evaluate_tool(*tool, ds, 4);
  EXPECT_GT(c.precision(), 0.9);
  EXPECT_GT(c.specificity(), 0.9);
  EXPECT_GT(c.recall(), 0.5);
  EXPECT_GT(c.to, 0u);  // tracing budget exhausted on compute-heavy codes
  EXPECT_LT(c.conclusiveness(), 1.0);
}

TEST(MustLite, BroaderRecallThanItac) {
  const auto ds = small_mbi();
  auto itac = make_itac_lite();
  auto must = make_must_lite();
  const auto ci = evaluate_tool(*itac, ds, 4);
  const auto cm = evaluate_tool(*must, ds, 4);
  // MUST additionally reports races / RMA / ownership errors.
  EXPECT_GE(cm.tp, ci.tp);
  EXPECT_GT(cm.conclusiveness(), ci.conclusiveness());
}

TEST(ParcoachLite, LowSpecificityHighCoverageProfile) {
  // PARCOACH floods correct codes with false positives (paper: S=0.088)
  // while never failing to ingest a code (coverage = conclusiveness = 1).
  const auto ds = small_mbi();
  auto tool = make_parcoach_lite();
  const auto c = evaluate_tool(*tool, ds, 4);
  EXPECT_DOUBLE_EQ(c.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(c.conclusiveness(), 1.0);
  EXPECT_LT(c.specificity(), 0.6);
  EXPECT_GT(c.recall(), 0.5);
  EXPECT_GT(c.fp, 0u);
}

TEST(ParcoachLite, StaticToolNeverTimesOut) {
  const auto ds = small_mbi();
  auto tool = make_parcoach_lite();
  const auto c = evaluate_tool(*tool, ds, 4);
  EXPECT_EQ(c.to, 0u);
  EXPECT_EQ(c.re, 0u);
}

TEST(MpiCheckerLite, CatchesLiteralArgErrors) {
  datasets::CorrConfig cfg;
  cfg.scale = 0.3;
  const auto ds = datasets::generate_corrbench(cfg);
  auto tool = make_mpichecker_lite();
  std::size_t argerr_total = 0, argerr_caught = 0;
  for (const auto& c : ds.cases) {
    if (c.corr_label != mpi::CorrLabel::ArgError) continue;
    ++argerr_total;
    argerr_caught += (tool->check(c) == Diagnostic::Incorrect);
  }
  ASSERT_GT(argerr_total, 0u);
  // Literal argument errors are MPI-Checker's home turf.
  EXPECT_GT(static_cast<double>(argerr_caught) / argerr_total, 0.5);
}

TEST(MpiCheckerLite, ModestOverallRecall) {
  // Cross-rank and dynamic error classes are invisible to AST checks.
  const auto ds = small_mbi();
  auto tool = make_mpichecker_lite();
  const auto c = evaluate_tool(*tool, ds, 4);
  EXPECT_LT(c.recall(), 0.7);
}

TEST(AllTools, CleanOnSimplestCorrectCode) {
  datasets::MbiConfig cfg;
  cfg.scale = 0.01;
  const auto ds = datasets::generate_mbi(cfg);
  for (const auto& c : ds.cases) {
    if (c.incorrect) continue;
    if (c.name.find("coll_seq") == std::string::npos) continue;
    // A straight-line collective sequence: no tool should flag it.
    EXPECT_EQ(make_itac_lite()->check(c), Diagnostic::Correct) << c.name;
    EXPECT_EQ(make_must_lite()->check(c), Diagnostic::Correct) << c.name;
    EXPECT_EQ(make_parcoach_lite()->check(c), Diagnostic::Correct) << c.name;
    EXPECT_EQ(make_mpichecker_lite()->check(c), Diagnostic::Correct)
        << c.name;
  }
}

}  // namespace
}  // namespace mpidetect::verify
