// Scheduler coverage: determinism of seeded schedules, the
// round-robin default, schedule sweeps, and the Timeout/Deadlock
// budget semantics of MachineConfig::max_steps.
#include <gtest/gtest.h>

#include <set>

#include "mpi/api.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/sweep.hpp"
#include "progmodel/ast.hpp"
#include "progmodel/lower.hpp"

namespace mpidetect::mpisim {
namespace {

using mpi::Func;
using progmodel::Arg;
using progmodel::Expr;
using progmodel::Program;
using progmodel::Stmt;
using E = Expr;
using S = Stmt;
using A = Arg;

constexpr std::int32_t kInt = static_cast<std::int32_t>(mpi::Datatype::Int);
constexpr std::int32_t kW = mpi::kCommWorld;

std::vector<Stmt> preamble() {
  std::vector<Stmt> v;
  v.push_back(S::decl_int("rank"));
  v.push_back(S::decl_int("size"));
  v.push_back(S::mpi(Func::Init, {}));
  v.push_back(S::mpi(Func::CommRank, {A::val(kW), A::addr("rank")}));
  v.push_back(S::mpi(Func::CommSize, {A::val(kW), A::addr("size")}));
  return v;
}

Stmt send_to(int dest) {
  return S::mpi(Func::Send, {A::buf("buf"), A::val(4), A::val(kInt),
                             A::val(dest), A::val(0), A::val(kW)});
}

Stmt recv_any() {
  return S::mpi(Func::Recv,
                {A::buf("buf"), A::val(4), A::val(kInt),
                 A::val(mpi::kAnySource), A::val(0), A::val(kW), A::null()});
}

/// rank 0: two wildcard receives. rank 1: sends immediately. rank 2:
/// computes `delay` filler iterations, then sends. Under round-robin
/// the first receive always matches rank 1's send before rank 2 ever
/// posts, so the program looks race free; schedules that run rank 2
/// ahead expose the wildcard race.
Program delayed_racer(int delay = 100) {
  Program p;
  p.nprocs = 3;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(8)));
  std::vector<Stmt> r0{recv_any(), recv_any()};
  std::vector<Stmt> r1{send_to(0)};
  std::vector<Stmt> r2;
  r2.push_back(S::compute("buf", delay));
  r2.push_back(send_to(0));
  p.main_body.push_back(
      S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0),
             {S::if_(E::eq(E::ref("rank"), E::lit(1)), std::move(r1),
                     std::move(r2))}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  return p;
}

Program recv_recv_cycle() {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(8)));
  std::vector<Stmt> r0{S::mpi(Func::Recv,
                              {A::buf("buf"), A::val(4), A::val(kInt),
                               A::val(1), A::val(0), A::val(kW), A::null()}),
                       send_to(1)};
  std::vector<Stmt> r1{S::mpi(Func::Recv,
                              {A::buf("buf"), A::val(4), A::val(kInt),
                               A::val(0), A::val(0), A::val(kW), A::null()}),
                       send_to(0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  return p;
}

Program infinite_loop() {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_int("i"));
  p.main_body.push_back(
      S::for_("i", E::lit(0), E::lit(1000000000),
              {S::assign("i", E::sub(E::ref("i"), E::lit(1)))}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  return p;
}

// -------------------------------------------------------- determinism

TEST(Schedule, DefaultConfigIsRoundRobinWithSeedZero) {
  const auto m = progmodel::lower(delayed_racer());
  MachineConfig cfg;
  cfg.nprocs = 3;
  const RunReport a = run(*m, cfg);
  const RunReport b = run(*m, cfg);
  EXPECT_EQ(a.schedule_seed, 0u);
  EXPECT_TRUE(a == b);
}

TEST(Schedule, SameRandomSeedGivesByteIdenticalReports) {
  const auto m = progmodel::lower(delayed_racer());
  MachineConfig cfg;
  cfg.nprocs = 3;
  cfg.schedule.policy = SchedPolicy::Random;
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    cfg.schedule.seed = seed;
    const RunReport a = run(*m, cfg);
    const RunReport b = run(*m, cfg);
    EXPECT_TRUE(a == b) << "seed " << seed;
    EXPECT_EQ(a.schedule_seed, seed);
    EXPECT_EQ(a.match_digest(), b.match_digest());
  }
}

TEST(Schedule, RandomSeedZeroIsRemappedAwayFromRoundRobin) {
  const auto m = progmodel::lower(delayed_racer());
  MachineConfig cfg;
  cfg.nprocs = 3;
  cfg.schedule.policy = SchedPolicy::Random;
  cfg.schedule.seed = 0;
  EXPECT_NE(run(*m, cfg).schedule_seed, 0u);
}

// Satellite: different seeds => the wildcard-race program yields at
// least two distinct message matchings across a 16-seed sweep.
TEST(Schedule, SixteenSeedsExploreDistinctMatchings) {
  const auto m = progmodel::lower(delayed_racer());
  MachineConfig cfg;
  cfg.nprocs = 3;
  cfg.schedule.policy = SchedPolicy::Random;
  std::set<std::uint64_t> digests;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    cfg.schedule.seed = seed;
    const RunReport rep = run(*m, cfg);
    EXPECT_EQ(rep.outcome, Outcome::Completed) << rep.summary();
    digests.insert(rep.match_digest());
  }
  EXPECT_GE(digests.size(), 2u);
}

TEST(Schedule, MatchTraceRecordsEveryP2PMatch) {
  const auto m = progmodel::lower(delayed_racer());
  MachineConfig cfg;
  cfg.nprocs = 3;
  const RunReport rep = run(*m, cfg);
  // Two sends, two receives: exactly two match events, both into rank 0.
  ASSERT_EQ(rep.matches.size(), 2u);
  for (const MatchEvent& e : rep.matches) {
    EXPECT_EQ(e.recv_rank, 0);
    EXPECT_TRUE(e.src == 1 || e.src == 2);
  }
}

// ------------------------------------------------------------- sweeps

// Acceptance regression: the single deterministic schedule reports the
// delayed-racer program clean; the schedule sweep demonstrably catches
// its WildcardRace, recording the witness seed.
TEST(Schedule, SweepCatchesRaceTheRoundRobinScheduleMisses) {
  const auto m = progmodel::lower(delayed_racer());
  MachineConfig cfg;
  cfg.nprocs = 3;

  const RunReport rr = run(*m, cfg);
  EXPECT_EQ(rr.outcome, Outcome::Completed) << rr.summary();
  EXPECT_TRUE(rr.findings.empty()) << rr.summary();

  ScheduleSweepOptions opts;
  opts.schedules = 16;
  opts.seed = 7;
  const ScheduleSweepReport sweep = sweep_schedules(*m, cfg, opts);
  EXPECT_EQ(sweep.count(Outcome::Completed), 16);
  ASSERT_TRUE(sweep.has(FindingKind::MessageRace)) << sweep.summary();
  EXPECT_GT(sweep.findings.at(FindingKind::MessageRace).schedules, 0);
  // The witness is a random schedule (the round-robin one is clean).
  ASSERT_TRUE(sweep.first_witness_seed.has_value());
  EXPECT_NE(*sweep.first_witness_seed, 0u);
  EXPECT_EQ(sweep.findings.at(FindingKind::MessageRace).first_seed,
            *sweep.first_witness_seed);
  EXPECT_TRUE(sweep.witness.has(FindingKind::MessageRace));
  EXPECT_GE(sweep.distinct_matchings, 2u);
}

TEST(Schedule, SweepIsDeterministicForFixedOptions) {
  const auto m = progmodel::lower(delayed_racer());
  MachineConfig cfg;
  cfg.nprocs = 3;
  ScheduleSweepOptions opts;
  opts.schedules = 8;
  opts.seed = 3;
  const auto a = sweep_schedules(*m, cfg, opts);
  const auto b = sweep_schedules(*m, cfg, opts);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  EXPECT_TRUE(a.reports == b.reports);
}

TEST(Schedule, SweepCountsOutcomesOnDeadlock) {
  const auto m = progmodel::lower(recv_recv_cycle());
  MachineConfig cfg;
  ScheduleSweepOptions opts;
  opts.schedules = 8;
  const ScheduleSweepReport sweep = sweep_schedules(*m, cfg, opts);
  EXPECT_EQ(sweep.count(Outcome::Deadlock), 8) << sweep.summary();
  // The round-robin schedule (slot 0, seed 0) is the first witness.
  ASSERT_TRUE(sweep.first_witness_seed.has_value());
  EXPECT_EQ(*sweep.first_witness_seed, 0u);
  EXPECT_FALSE(sweep.clean());
}

TEST(Schedule, ScheduleSeedForIsStableAndReservesZero) {
  EXPECT_EQ(schedule_seed_for(1, 0), 0u);
  for (int k = 1; k < 64; ++k) {
    EXPECT_NE(schedule_seed_for(1, k), 0u);
    EXPECT_EQ(schedule_seed_for(1, k), schedule_seed_for(1, k));
    EXPECT_NE(schedule_seed_for(1, k), schedule_seed_for(2, k));
  }
}

TEST(Schedule, RandomSchedulerStillFindsDeadlocks) {
  const auto m = progmodel::lower(recv_recv_cycle());
  MachineConfig cfg;
  cfg.schedule.policy = SchedPolicy::Random;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    cfg.schedule.seed = seed;
    EXPECT_EQ(run(*m, cfg).outcome, Outcome::Deadlock) << "seed " << seed;
  }
}

// -------------------------------------------- max_steps budget semantics

// Satellite: max_steps is a *total* budget across ranks, so the same
// compute-bound program times out after (about) the same number of
// machine steps at 2 and at 8 ranks — each rank just gets a smaller
// share.
TEST(MaxSteps, TimeoutBudgetIsTotalAcrossRanks) {
  const Program p = infinite_loop();
  const auto m = progmodel::lower(p);
  for (const int nprocs : {2, 8}) {
    MachineConfig cfg;
    cfg.nprocs = nprocs;
    cfg.max_steps = 50'000;
    const RunReport rep = run(*m, cfg);
    EXPECT_EQ(rep.outcome, Outcome::Timeout)
        << nprocs << " ranks: " << rep.summary();
    EXPECT_GE(rep.steps, cfg.max_steps);
    // Overshoot is bounded by one slice of one rank.
    EXPECT_LT(rep.steps, cfg.max_steps + static_cast<std::uint64_t>(
                                             cfg.slice));
  }
}

// Satellite: Timeout and Deadlock are never conflated — a provably
// stuck rank set is a Deadlock whatever the remaining budget, under
// both scheduling policies.
TEST(MaxSteps, DeadlockIsNeverReportedAsTimeout) {
  const auto m = progmodel::lower(recv_recv_cycle());
  for (const std::uint64_t budget : {2'000ULL, 5'000ULL, 2'000'000ULL}) {
    MachineConfig cfg;
    cfg.max_steps = budget;
    EXPECT_EQ(run(*m, cfg).outcome, Outcome::Deadlock) << budget;
    cfg.schedule.policy = SchedPolicy::Random;
    cfg.schedule.seed = 11;
    EXPECT_EQ(run(*m, cfg).outcome, Outcome::Deadlock) << budget;
  }
}

}  // namespace
}  // namespace mpidetect::mpisim
