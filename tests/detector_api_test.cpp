#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/eval_engine.hpp"
#include "datasets/corrbench.hpp"
#include "datasets/mbi.hpp"
#include "ml/kfold.hpp"

namespace mpidetect::core {
namespace {

datasets::Dataset small_mbi() {
  datasets::MbiConfig cfg;
  cfg.scale = 0.08;
  return datasets::generate_mbi(cfg);
}

datasets::Dataset small_corr() {
  datasets::CorrConfig cfg;
  cfg.scale = 0.35;
  return datasets::generate_corrbench(cfg);
}

DetectorConfig fast_config() {
  DetectorConfig cfg;
  cfg.ir2vec.use_ga = false;
  cfg.ir2vec.folds = 4;
  cfg.gnn.folds = 2;
  cfg.gnn.cfg.epochs = 2;
  cfg.gnn.cfg.embed_dim = 8;
  cfg.gnn.cfg.layers = {16, 8};
  cfg.gnn.cfg.fc_hidden = 8;
  return cfg;
}

void expect_equal(const ml::Confusion& a, const ml::Confusion& b) {
  EXPECT_EQ(a.tp, b.tp);
  EXPECT_EQ(a.tn, b.tn);
  EXPECT_EQ(a.fp, b.fp);
  EXPECT_EQ(a.fn, b.fn);
  EXPECT_EQ(a.ce, b.ce);
  EXPECT_EQ(a.to, b.to);
  EXPECT_EQ(a.re, b.re);
}

TEST(Registry, ContainsAllBuiltinDetectors) {
  auto& reg = DetectorRegistry::global();
  for (const char* name :
       {"itac", "must", "parcoach", "mpi-checker", "ir2vec", "gnn",
        "itac-sweep", "must-sweep"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    auto det = reg.create(name);
    ASSERT_NE(det, nullptr) << name;
    EXPECT_FALSE(det->name().empty());
  }
  EXPECT_EQ(reg.names().size(), 8u);
}

TEST(Registry, KindsAndTrainability) {
  auto& reg = DetectorRegistry::global();
  EXPECT_EQ(reg.create("itac")->kind(), DetectorKind::Dynamic);
  EXPECT_EQ(reg.create("must")->kind(), DetectorKind::Dynamic);
  EXPECT_EQ(reg.create("parcoach")->kind(), DetectorKind::Static);
  EXPECT_EQ(reg.create("mpi-checker")->kind(), DetectorKind::Static);
  EXPECT_EQ(reg.create("ir2vec")->kind(), DetectorKind::Learned);
  EXPECT_EQ(reg.create("gnn")->kind(), DetectorKind::Learned);
  EXPECT_FALSE(reg.create("itac")->trainable());
  EXPECT_TRUE(reg.create("ir2vec")->trainable());
  EXPECT_TRUE(reg.create("gnn")->trainable());
}

TEST(Registry, ToolNamesMatchPaper) {
  auto& reg = DetectorRegistry::global();
  EXPECT_EQ(reg.create("itac")->name(), "ITAC");
  EXPECT_EQ(reg.create("must")->name(), "MUST");
  EXPECT_EQ(reg.create("parcoach")->name(), "PARCOACH");
  EXPECT_EQ(reg.create("mpi-checker")->name(), "MPI-Checker");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(DetectorRegistry::global().create("no-such-detector"),
               ContractViolation);
}

TEST(Registry, DuplicateRegistrationThrows) {
  DetectorRegistry reg;  // fresh instance, built-ins pre-registered
  EXPECT_THROW(reg.add("itac", [](const DetectorConfig&) {
    return DetectorRegistry::global().create("itac");
  }),
               ContractViolation);
}

TEST(Verdict, DiagnosticRoundTrip) {
  for (const auto d :
       {verify::Diagnostic::Correct, verify::Diagnostic::Incorrect,
        verify::Diagnostic::Timeout, verify::Diagnostic::RuntimeErr,
        verify::Diagnostic::CompileErr}) {
    EXPECT_EQ(Verdict::from_diagnostic(d).to_diagnostic(), d);
  }
  EXPECT_TRUE(
      Verdict::from_diagnostic(verify::Diagnostic::Incorrect).flagged());
  EXPECT_FALSE(
      Verdict::from_diagnostic(verify::Diagnostic::Timeout).conclusive());
  EXPECT_TRUE(
      Verdict::from_diagnostic(verify::Diagnostic::Correct).conclusive());
}

TEST(Verdict, OutcomeNamesMatchDiagnosticNames) {
  for (const auto o :
       {Verdict::Outcome::Correct, Verdict::Outcome::Incorrect,
        Verdict::Outcome::Timeout, Verdict::Outcome::RuntimeErr,
        Verdict::Outcome::CompileErr}) {
    Verdict v;
    v.outcome = o;
    EXPECT_EQ(outcome_name(o), diagnostic_name(v.to_diagnostic()));
  }
}

// ---------------------------------------------------------------------------
// Engine vs independent reference implementations. The legacy free
// functions now delegate to the engine, so comparing against them only
// checks the shim contract; the tests below re-implement the original
// evaluation loops by hand and prove the engine reproduces their
// confusions exactly on a fixed-seed dataset.
// ---------------------------------------------------------------------------

TEST(EvalEngine, SweepMatchesHandRolledToolLoop) {
  const auto ds = small_mbi();
  // Reference: a serial loop over check(), accumulating the MBI-style
  // confusion exactly as the original evaluate_tool did.
  auto tool = verify::make_parcoach_lite();
  ml::Confusion ref;
  for (const auto& c : ds.cases) {
    switch (tool->check(c)) {
      case verify::Diagnostic::Correct: ref.add(c.incorrect, false); break;
      case verify::Diagnostic::Incorrect: ref.add(c.incorrect, true); break;
      case verify::Diagnostic::Timeout: ++ref.to; break;
      case verify::Diagnostic::RuntimeErr: ++ref.re; break;
      case verify::Diagnostic::CompileErr: ++ref.ce; break;
    }
  }
  EvalEngine engine(4);
  auto det = DetectorRegistry::global().create("parcoach");
  expect_equal(engine.sweep(*det, ds).confusion, ref);
}

TEST(EvalEngine, KfoldMatchesHandRolledLegacyIntraLoop) {
  // Reference: the original ir2vec_intra protocol — stratified folds on
  // the binary labels, per-fold seed = base + fold, single-threaded
  // training on the fold complement, validation on the fold.
  const auto ds = small_mbi();
  const DetectorConfig cfg = fast_config();
  const auto fs = extract_features(ds, cfg.feature_opt, cfg.normalization,
                                   cfg.vocab_seed);
  const auto folds = ml::stratified_kfold(
      fs.y_binary, static_cast<std::size_t>(cfg.ir2vec.folds),
      cfg.ir2vec.seed);
  ml::Confusion ref;
  for (std::size_t f = 0; f < folds.size(); ++f) {
    const auto& val_idx = folds[f];
    std::vector<std::vector<double>> X;
    std::vector<std::size_t> y;
    for (const std::size_t i : ml::fold_complement(val_idx, fs.size())) {
      X.push_back(fs.X[i]);
      y.push_back(fs.y_binary[i]);
    }
    Ir2vecOptions o = cfg.ir2vec;
    o.seed = cfg.ir2vec.seed + f;
    o.threads = 1;
    o.ga.threads = 1;
    const TrainedIr2vec model = train_ir2vec(X, y, o);
    for (const std::size_t i : val_idx) {
      ref.add(fs.incorrect[i], model.predict(fs.X[i]) == 1);
    }
  }

  EvalEngine engine;
  auto det = DetectorRegistry::global().create("ir2vec", cfg);
  expect_equal(engine.kfold(*det, ds).confusion, ref);
}

TEST(EvalEngine, CrossMatchesHandRolledLegacyCrossLoop) {
  // Reference: the original ir2vec_cross — one full-set training run,
  // then a straight prediction pass over the validation embedding.
  const auto mbi = small_mbi();
  const auto corr = small_corr();
  const DetectorConfig cfg = fast_config();
  const auto fs_m = extract_features(mbi, cfg.feature_opt, cfg.normalization,
                                     cfg.vocab_seed);
  const auto fs_c = extract_features(corr, cfg.feature_opt, cfg.normalization,
                                     cfg.vocab_seed);
  const TrainedIr2vec model =
      train_ir2vec(fs_m.X, fs_m.y_binary, cfg.ir2vec);
  ml::Confusion ref;
  for (std::size_t i = 0; i < fs_c.size(); ++i) {
    ref.add(fs_c.incorrect[i], model.predict(fs_c.X[i]) == 1);
  }

  EvalEngine engine;
  auto det = DetectorRegistry::global().create("ir2vec", cfg);
  expect_equal(engine.cross(*det, mbi, corr).confusion, ref);
}

// ---------------------------------------------------------------------------
// Shim contract: the deprecated free functions delegate to the engine
// and must agree with it bit-for-bit.
// ---------------------------------------------------------------------------

TEST(EvalEngine, SweepMatchesLegacyEvaluateTool) {
  const auto ds = small_mbi();
  // Legacy path: a hand-held tool through the deprecated entry point.
  auto tool = verify::make_itac_lite();
  const auto legacy = verify::evaluate_tool(*tool, ds, 4);
  // Engine path: the registry detector through a sweep.
  EvalEngine engine(4);
  auto det = DetectorRegistry::global().create("itac");
  const auto report = engine.sweep(*det, ds);
  expect_equal(report.confusion, legacy);
  EXPECT_EQ(report.cases, ds.size());
  EXPECT_EQ(report.verdicts.size(), ds.size());
  EXPECT_EQ(report.confusion.population(), ds.size());
  // The outcome tallies agree with the confusion's error columns.
  EXPECT_EQ(report.outcome_counts[static_cast<std::size_t>(
                Verdict::Outcome::Timeout)],
            report.confusion.to);
}

TEST(EvalEngine, SweepIsSerialParallelInvariant) {
  const auto ds = small_mbi();
  auto det = DetectorRegistry::global().create("must");
  EvalEngine serial(1);
  EvalEngine parallel(4);
  expect_equal(serial.sweep(*det, ds).confusion,
               parallel.sweep(*det, ds).confusion);
}

TEST(EvalEngine, KfoldMatchesLegacyIr2vecIntra) {
  const auto ds = small_mbi();
  const DetectorConfig cfg = fast_config();

  // Legacy path: explicit feature extraction + the deprecated shim.
  const auto fs = extract_features(ds, cfg.feature_opt, cfg.normalization,
                                   cfg.vocab_seed);
  const auto legacy = ir2vec_intra(fs, cfg.ir2vec);

  // Engine path: registry detector + kfold on the raw dataset.
  EvalEngine engine;
  auto det = DetectorRegistry::global().create("ir2vec", cfg);
  const auto report = engine.kfold(*det, ds);
  expect_equal(report.confusion, legacy);
  EXPECT_EQ(report.confusion.population(), ds.size());
}

TEST(EvalEngine, CrossMatchesLegacyIr2vecCross) {
  const auto mbi = small_mbi();
  const auto corr = small_corr();
  const DetectorConfig cfg = fast_config();

  const auto fs_m = extract_features(mbi, cfg.feature_opt, cfg.normalization,
                                     cfg.vocab_seed);
  const auto fs_c = extract_features(corr, cfg.feature_opt, cfg.normalization,
                                     cfg.vocab_seed);
  const auto legacy = ir2vec_cross(fs_m, fs_c, cfg.ir2vec);

  EvalEngine engine;
  auto det = DetectorRegistry::global().create("ir2vec", cfg);
  const auto report = engine.cross(*det, mbi, corr);
  expect_equal(report.confusion, legacy);
  EXPECT_EQ(report.confusion.population(), corr.size());
}

TEST(EvalEngine, CrossShimDistinguishesSameCasesDifferentEmbeddings) {
  // Regression: train and validation feature sets covering the *same*
  // cases under different embeddings (the table5 seed-study shape) must
  // not collide in the shim's cache seeding.
  const auto ds = small_mbi();
  const DetectorConfig cfg = fast_config();
  const auto fs_a = extract_features(ds, cfg.feature_opt, cfg.normalization,
                                     cfg.vocab_seed);
  const auto fs_b =
      extract_features(ds, cfg.feature_opt, cfg.normalization, 0x9999);
  const TrainedIr2vec model =
      train_ir2vec(fs_a.X, fs_a.y_binary, cfg.ir2vec);
  ml::Confusion ref;
  for (std::size_t i = 0; i < fs_b.size(); ++i) {
    ref.add(fs_b.incorrect[i], model.predict(fs_b.X[i]) == 1);
  }
  expect_equal(ir2vec_cross(fs_a, fs_b, cfg.ir2vec), ref);
}

TEST(Detector, BatchedRunDoesNotGrowCache) {
  const auto ds = small_mbi();
  DetectorConfig cfg = fast_config();
  cfg.cache = std::make_shared<EncodingCache>();
  auto det = DetectorRegistry::global().create("ir2vec", cfg);
  EvalEngine engine(0, cfg.cache);
  engine.fit_full(*det, ds);
  const auto base = cfg.cache->feature_set_count();
  for (int r = 0; r < 3; ++r) {
    det->run(std::span(ds.cases.data(), 2));  // ad-hoc batches, discarded
  }
  EXPECT_EQ(cfg.cache->feature_set_count(), base);
}

TEST(EvalEngine, KfoldMatchesLegacyGnnIntra) {
  const auto ds = small_mbi();
  const DetectorConfig cfg = fast_config();

  const auto gs = extract_graphs(ds, cfg.graph_opt);
  const auto legacy = gnn_intra(gs, cfg.gnn);

  EvalEngine engine;
  auto det = DetectorRegistry::global().create("gnn", cfg);
  const auto report = engine.kfold(*det, ds);
  expect_equal(report.confusion, legacy);
}

TEST(EvalEngine, PerLabelMatchesLegacyIr2vecPerLabel) {
  const auto ds = small_mbi();
  const DetectorConfig cfg = fast_config();

  const auto fs = extract_features(ds, cfg.feature_opt, cfg.normalization,
                                   cfg.vocab_seed);
  const auto legacy = ir2vec_per_label(fs, cfg.ir2vec);

  EvalEngine engine;
  auto det = DetectorRegistry::global().create("ir2vec", cfg);
  EvalOptions eval = det->eval_defaults();
  eval.multiclass = true;
  const auto report = engine.kfold(*det, ds, eval);
  EXPECT_EQ(report.per_label, legacy);
}

TEST(EvalEngine, AblationMatchesLegacyIr2vecAblation) {
  const auto ds = small_mbi();
  const DetectorConfig cfg = fast_config();

  const auto fs = extract_features(ds, cfg.feature_opt, cfg.normalization,
                                   cfg.vocab_seed);
  const auto legacy = ir2vec_ablation(fs, {"Call Ordering"}, cfg.ir2vec);

  EvalEngine engine;
  auto det = DetectorRegistry::global().create("ir2vec", cfg);
  const auto r = engine.ablation(*det, ds, {"Call Ordering"}, std::nullopt,
                                 det->eval_defaults());
  EXPECT_EQ(r.detected, legacy.first);
  EXPECT_EQ(r.total, legacy.second);
}

TEST(EvalEngine, AblationUnknownLabelThrows) {
  const auto ds = small_mbi();
  EvalEngine engine;
  auto det = DetectorRegistry::global().create("ir2vec", fast_config());
  EXPECT_THROW(engine.ablation(*det, ds, {"No Such Label"}, std::nullopt,
                               det->eval_defaults()),
               ContractViolation);
}

TEST(EvalEngine, EncodingCacheIsSharedAcrossProtocols) {
  const auto ds = small_mbi();
  EvalEngine engine;
  auto det = DetectorRegistry::global().create("ir2vec", fast_config());
  det->use_cache(engine.cache());
  engine.kfold(*det, ds);
  EXPECT_EQ(engine.cache()->feature_set_count(), 1u);
  engine.kfold(*det, ds);  // second protocol run: no re-encoding
  EXPECT_EQ(engine.cache()->feature_set_count(), 1u);
}

TEST(Detector, RunUnfittedLearnedDetectorThrows) {
  const auto ds = small_mbi();
  auto det = DetectorRegistry::global().create("ir2vec", fast_config());
  EXPECT_THROW(det->run(std::span(ds.cases.data(), 1)), ContractViolation);
}

TEST(Detector, BatchedRunMatchesSweep) {
  const auto ds = small_mbi();
  auto det = DetectorRegistry::global().create("parcoach");
  EvalEngine engine;
  const auto report = engine.sweep(*det, ds);
  const auto verdicts = det->run(std::span(ds.cases));
  ASSERT_EQ(verdicts.size(), report.verdicts.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i].outcome, report.verdicts[i].outcome) << i;
  }
}

TEST(Detector, FittedDetectorClassifiesHeldOutBatch) {
  const auto ds = small_mbi();
  auto det = DetectorRegistry::global().create("ir2vec", fast_config());
  EvalEngine engine;
  engine.fit_full(*det, ds);
  const auto verdicts = det->run(std::span(ds.cases.data(), 8));
  ASSERT_EQ(verdicts.size(), 8u);
  for (const auto& v : verdicts) EXPECT_TRUE(v.conclusive());
}

}  // namespace
}  // namespace mpidetect::core
