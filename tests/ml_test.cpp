#include <gtest/gtest.h>

#include <set>

#include "datasets/mbi.hpp"
#include "ml/decision_tree.hpp"
#include "ml/genetic.hpp"
#include "ml/gnn.hpp"
#include "ml/kfold.hpp"
#include "ml/metrics.hpp"
#include "programl/graph.hpp"
#include "progmodel/lower.hpp"

namespace mpidetect::ml {
namespace {

// ------------------------------------------------------------ decision tree

TEST(DecisionTree, GiniValues) {
  const std::size_t pure[] = {4, 0};
  const std::size_t even[] = {2, 2};
  EXPECT_DOUBLE_EQ(gini(pure, 4), 0.0);
  EXPECT_DOUBLE_EQ(gini(even, 4), 0.5);
}

TEST(DecisionTree, LearnsAxisAlignedSplit) {
  std::vector<std::vector<double>> X;
  std::vector<std::size_t> y;
  for (int i = 0; i < 40; ++i) {
    X.push_back({static_cast<double>(i), 0.0});
    y.push_back(i < 20 ? 0 : 1);
  }
  DecisionTree dt;
  dt.fit(X, y);
  EXPECT_EQ(dt.predict(std::vector<double>{5.0, 0.0}), 0u);
  EXPECT_EQ(dt.predict(std::vector<double>{35.0, 0.0}), 1u);
  EXPECT_LE(dt.depth(), 2u);
}

TEST(DecisionTree, FitsTrainingSetPerfectlyAtFullDepth) {
  Rng rng(3);
  std::vector<std::vector<double>> X;
  std::vector<std::size_t> y;
  for (int i = 0; i < 100; ++i) {
    X.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    y.push_back(rng.index(3));
  }
  DecisionTree dt;
  dt.fit(X, y);
  const auto pred = dt.predict(X);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) correct += (pred[i] == y[i]);
  // Random continuous features: full-depth CART memorizes the data.
  EXPECT_EQ(correct, y.size());
}

TEST(DecisionTree, MaxDepthLimitsTree) {
  Rng rng(4);
  std::vector<std::vector<double>> X;
  std::vector<std::size_t> y;
  for (int i = 0; i < 200; ++i) {
    X.push_back({rng.uniform()});
    y.push_back(rng.index(2));
  }
  DecisionTreeConfig cfg;
  cfg.max_depth = 3;
  DecisionTree dt(cfg);
  dt.fit(X, y);
  EXPECT_LE(dt.depth(), 3u);
}

TEST(DecisionTree, FeatureSubsetRestrictsSplits) {
  // Feature 0 perfectly separates; feature 1 is noise. Restricting to
  // feature 1 must hurt training accuracy.
  Rng rng(5);
  std::vector<std::vector<double>> X;
  std::vector<std::size_t> y;
  for (int i = 0; i < 100; ++i) {
    const std::size_t label = rng.index(2);
    X.push_back({static_cast<double>(label), 0.0});
    y.push_back(label);
  }
  DecisionTreeConfig cfg;
  cfg.feature_subset = std::vector<std::size_t>{1};
  DecisionTree dt(cfg);
  dt.fit(X, y);
  // Only constant feature available: tree is a single leaf.
  EXPECT_EQ(dt.node_count(), 1u);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree dt;
  EXPECT_THROW(dt.predict(std::vector<double>{1.0}), ContractViolation);
}

// ---------------------------------------------------------------------- GA

TEST(Ga, FindsInformativeFeatures) {
  // Fitness rewards subsets containing feature 7.
  GaConfig cfg;
  cfg.population = 60;
  cfg.generations = 10;
  cfg.seed = 9;
  cfg.threads = 2;
  const auto res = select_features(
      32,
      [](const std::vector<std::size_t>& f) {
        for (const auto x : f) {
          if (x == 7) return 1.0;
        }
        return 0.1;
      },
      cfg);
  EXPECT_DOUBLE_EQ(res.best_fitness, 1.0);
  EXPECT_NE(std::find(res.best_features.begin(), res.best_features.end(), 7u),
            res.best_features.end());
}

TEST(Ga, ConvergenceCurveIsMonotoneWithElitism) {
  GaConfig cfg;
  cfg.population = 40;
  cfg.generations = 8;
  cfg.seed = 11;
  cfg.threads = 2;
  const auto res = select_features(
      16,
      [](const std::vector<std::size_t>& f) {
        double s = 0;
        for (const auto x : f) s += static_cast<double>(x);
        return s;  // maximize sum of indices
      },
      cfg);
  for (std::size_t g = 1; g < res.best_per_generation.size(); ++g) {
    EXPECT_GE(res.best_per_generation[g] + 1e-12,
              res.best_per_generation[g - 1]);
  }
}

TEST(Ga, DeterministicForSeed) {
  GaConfig cfg;
  cfg.population = 30;
  cfg.generations = 5;
  cfg.seed = 13;
  cfg.threads = 2;
  const auto fitness = [](const std::vector<std::size_t>& f) {
    return static_cast<double>(f.front() % 5);
  };
  const auto a = select_features(64, fitness, cfg);
  const auto b = select_features(64, fitness, cfg);
  EXPECT_EQ(a.best_features, b.best_features);
  EXPECT_EQ(a.best_fitness, b.best_fitness);
}

TEST(Ga, IndividualsHaveConfiguredGeneCount) {
  GaConfig cfg;
  cfg.population = 20;
  cfg.generations = 2;
  cfg.genes = 5;
  cfg.threads = 1;
  const auto res = select_features(
      512, [](const std::vector<std::size_t>&) { return 0.5; }, cfg);
  EXPECT_LE(res.best_features.size(), 5u);  // duplicates collapse
  EXPECT_GE(res.best_features.size(), 1u);
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, MatchesPaperItacRow) {
  // Table III, ITAC: TP=859 TN=738 FP=4 FN=102 TO=157 RE=1.
  Confusion c;
  c.tp = 859;
  c.tn = 738;
  c.fp = 4;
  c.fn = 102;
  c.to = 157;
  c.re = 1;
  EXPECT_NEAR(c.recall(), 0.894, 1e-3);
  EXPECT_NEAR(c.precision(), 0.995, 1e-3);
  EXPECT_NEAR(c.f1(), 0.942, 1e-3);
  EXPECT_NEAR(c.coverage(), 1.0, 1e-12);
  EXPECT_NEAR(c.conclusiveness(), 0.915, 1e-3);
  EXPECT_NEAR(c.specificity(), 0.995, 1e-3);
  EXPECT_NEAR(c.overall_accuracy(), 0.858, 1e-3);
}

TEST(Metrics, MatchesPaperParcoachRow) {
  // Table III, PARCOACH: TP=775 TN=66 FP=679 FN=341.
  Confusion c;
  c.tp = 775;
  c.tn = 66;
  c.fp = 679;
  c.fn = 341;
  EXPECT_NEAR(c.recall(), 0.694, 1e-3);
  EXPECT_NEAR(c.precision(), 0.533, 1e-3);
  EXPECT_NEAR(c.f1(), 0.603, 1e-3);
  EXPECT_NEAR(c.specificity(), 0.088, 1e-2);
  EXPECT_NEAR(c.overall_accuracy(), 0.452, 1e-3);
  EXPECT_NEAR(c.conclusiveness(), 1.0, 1e-12);
}

TEST(Metrics, IdealTool) {
  Confusion c;
  c.tp = 1116;
  c.tn = 745;
  EXPECT_DOUBLE_EQ(c.recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.f1(), 1.0);
  EXPECT_DOUBLE_EQ(c.overall_accuracy(), 1.0);
}

TEST(Metrics, AddRoutesToRightCell) {
  Confusion c;
  c.add(true, true);    // tp
  c.add(true, false);   // fn
  c.add(false, true);   // fp
  c.add(false, false);  // tn
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
}

TEST(Metrics, AccumulateAcrossFolds) {
  Confusion a, b;
  a.tp = 10;
  b.tp = 5;
  b.to = 2;
  a += b;
  EXPECT_EQ(a.tp, 15u);
  EXPECT_EQ(a.to, 2u);
}

TEST(Metrics, EmptyConfusionIsSafe) {
  const Confusion c;
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

// -------------------------------------------------------------------- kfold

TEST(Kfold, FoldsPartitionAllIndices) {
  std::vector<std::size_t> labels;
  for (int i = 0; i < 103; ++i) labels.push_back(i % 3);
  const auto folds = stratified_kfold(labels, 10, 1);
  ASSERT_EQ(folds.size(), 10u);
  std::set<std::size_t> seen;
  for (const auto& f : folds) {
    for (const auto i : f) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), labels.size());
}

TEST(Kfold, StratificationPreservesClassBalance) {
  std::vector<std::size_t> labels;
  for (int i = 0; i < 200; ++i) labels.push_back(i < 180 ? 0 : 1);
  const auto folds = stratified_kfold(labels, 10, 2);
  for (const auto& f : folds) {
    std::size_t minority = 0;
    for (const auto i : f) minority += (labels[i] == 1);
    // 20 minority samples over 10 folds -> exactly 2 each.
    EXPECT_EQ(minority, 2u);
  }
}

TEST(Kfold, ComplementCoversRest) {
  std::vector<std::size_t> labels(20, 0);
  const auto folds = stratified_kfold(labels, 4, 3);
  const auto train = fold_complement(folds[0], labels.size());
  EXPECT_EQ(train.size(), labels.size() - folds[0].size());
}

TEST(Kfold, DeterministicForSeed) {
  std::vector<std::size_t> labels(50, 0);
  for (std::size_t i = 0; i < 50; i += 3) labels[i] = 1;
  EXPECT_EQ(stratified_kfold(labels, 5, 7), stratified_kfold(labels, 5, 7));
  EXPECT_NE(stratified_kfold(labels, 5, 7), stratified_kfold(labels, 5, 8));
}

// ---------------------------------------------------------------------- GNN

programl::ProgramGraph tiny_graph(std::uint32_t token_a,
                                  std::uint32_t token_b) {
  programl::ProgramGraph g;
  g.nodes.push_back({programl::NodeType::Control, token_a, "a"});
  g.nodes.push_back({programl::NodeType::Control, token_b, "b"});
  g.nodes.push_back({programl::NodeType::Variable, 3, "v"});
  g.edges[0].push_back({0, 1});
  g.edges[1].push_back({2, 0});
  g.edges[1].push_back({2, 1});
  return g;
}

GnnConfig tiny_gnn_config() {
  GnnConfig cfg;
  cfg.embed_dim = 8;
  cfg.layers = {16, 8};
  cfg.fc_hidden = 8;
  cfg.classes = 2;
  cfg.epochs = 30;
  cfg.lr = 0.01;
  return cfg;
}

TEST(Gnn, ForwardShapeAndDeterminism) {
  GnnModel model(tiny_gnn_config());
  const auto g = tiny_graph(1, 2);
  const auto l1 = model.forward(g);
  const auto l2 = model.forward(g);
  EXPECT_EQ(l1->value.rows(), 1u);
  EXPECT_EQ(l1->value.cols(), 2u);
  EXPECT_EQ(l1->value.data(), l2->value.data());
}

TEST(Gnn, PaperArchitectureDimensions) {
  GnnConfig cfg;
  cfg.classes = 10;
  GnnModel model(cfg);
  EXPECT_EQ(cfg.layers, (std::vector<std::size_t>{128, 64, 32}));
  EXPECT_DOUBLE_EQ(cfg.lr, 4e-4);
  EXPECT_EQ(cfg.epochs, 10);
  EXPECT_GT(model.parameter_count(), 10000u);
}

TEST(Gnn, LossDecreasesOnSingleExample) {
  GnnModel model(tiny_gnn_config());
  const auto g = tiny_graph(1, 2);
  const double first = model.train_step(g, 0);
  double last = first;
  for (int i = 0; i < 40; ++i) last = model.train_step(g, 0);
  EXPECT_LT(last, first);
}

TEST(Gnn, LearnsToSeparateTokenPatterns) {
  // Two synthetic "program families" distinguished by node tokens.
  GnnModel model(tiny_gnn_config());
  std::vector<programl::ProgramGraph> graphs;
  std::vector<std::size_t> labels;
  for (int i = 0; i < 8; ++i) {
    graphs.push_back(tiny_graph(10, 11));
    labels.push_back(0);
    graphs.push_back(tiny_graph(20, 21));
    labels.push_back(1);
  }
  model.fit(graphs, labels);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    correct += (model.predict(graphs[i]) == labels[i]);
  }
  EXPECT_EQ(correct, graphs.size());
}

TEST(Gnn, ProbabilitiesSumToOne) {
  GnnModel model(tiny_gnn_config());
  const auto p = model.predict_proba(tiny_graph(1, 2));
  double sum = 0;
  for (const double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Gnn, HandlesGraphWithNoEdgesOfSomeRelation) {
  GnnModel model(tiny_gnn_config());
  programl::ProgramGraph g;
  g.nodes.push_back({programl::NodeType::Control, 1, "only"});
  // No edges at all: self path must still produce logits.
  EXPECT_NO_THROW(model.forward(g));
}

TEST(Gnn, TrainsOnRealProgramGraphs) {
  datasets::MbiConfig cfg;
  cfg.scale = 0.01;
  const auto ds = datasets::generate_mbi(cfg);
  std::vector<programl::ProgramGraph> graphs;
  std::vector<std::size_t> labels;
  for (const auto& c : ds.cases) {
    graphs.push_back(programl::build_graph(*progmodel::lower(c.program)));
    labels.push_back(c.incorrect ? 1 : 0);
  }
  GnnConfig gcfg = tiny_gnn_config();
  gcfg.epochs = 3;
  GnnModel model(gcfg);
  EXPECT_NO_THROW(model.fit(graphs, labels));
  // Predictions are valid class ids.
  for (const auto& g : graphs) EXPECT_LT(model.predict(g), 2u);
}

}  // namespace
}  // namespace mpidetect::ml
