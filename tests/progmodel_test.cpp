#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "mpi/api.hpp"
#include "passes/pipelines.hpp"
#include "progmodel/ast.hpp"
#include "progmodel/lower.hpp"
#include "support/check.hpp"

namespace mpidetect::progmodel {
namespace {

using mpi::Func;
using E = Expr;
using S = Stmt;
using A = Arg;

std::vector<Stmt> preamble() {
  std::vector<Stmt> v;
  v.push_back(S::decl_int("rank"));
  v.push_back(S::decl_int("size"));
  v.push_back(S::mpi(Func::Init, {}));
  v.push_back(S::mpi(Func::CommRank,
                     {A::val(mpi::kCommWorld), A::addr("rank")}));
  v.push_back(S::mpi(Func::CommSize,
                     {A::val(mpi::kCommWorld), A::addr("size")}));
  return v;
}

TEST(Ast, ExprFactories) {
  const Expr e = E::add(E::lit(1), E::mul(E::ref("x"), E::lit(2)));
  EXPECT_EQ(e.kind, Expr::Kind::Bin);
  EXPECT_EQ(e.op, '+');
  ASSERT_EQ(e.kids.size(), 2u);
  EXPECT_EQ(e.kids[1].op, '*');
  EXPECT_EQ(e.kids[1].kids[0].var, "x");
}

TEST(Ast, LineCountModelsBlocks) {
  Program p;
  p.main_body = preamble();  // 5 statements
  EXPECT_EQ(p.line_count(), 14u + 5u);
  p.main_body.push_back(
      S::if_(E::eq(E::ref("rank"), E::lit(0)), {S::assign("rank", E::lit(1))}));
  EXPECT_EQ(p.line_count(), 14u + 5u + 3u);
  p.functions.push_back(UserFunc{"phase", {S::call_extern("compute")}});
  EXPECT_EQ(p.line_count(), 14u + 8u + 4u);
}

TEST(Lower, MinimalProgramVerifies) {
  Program p;
  p.name = "minimal";
  p.main_body = preamble();
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  p.main_body.push_back(S::ret(E::lit(0)));
  const auto m = lower(p);
  EXPECT_TRUE(ir::verify(*m).empty());
  const ir::Function* main_fn = m->find_function("main");
  ASSERT_NE(main_fn, nullptr);
  EXPECT_FALSE(main_fn->is_declaration());
  EXPECT_NE(m->find_function("MPI_Init"), nullptr);
  EXPECT_TRUE(m->find_function("MPI_Init")->is_declaration());
}

TEST(Lower, UnknownVariableThrows) {
  Program p;
  p.main_body.push_back(S::assign("ghost", E::lit(1)));
  EXPECT_THROW(lower(p), ContractViolation);
}

TEST(Lower, ArgArityMismatchThrows) {
  Program p;
  p.main_body.push_back(S::mpi(Func::Barrier, {}));  // needs 1 arg
  EXPECT_THROW(lower(p), ContractViolation);
}

TEST(Lower, IfCreatesDiamond) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               {S::assign("rank", E::lit(7))},
                               {S::assign("rank", E::lit(9))}));
  p.main_body.push_back(S::ret(E::ref("rank")));
  const auto m = lower(p);
  EXPECT_TRUE(ir::verify(*m).empty());
  EXPECT_GE(m->find_function("main")->num_blocks(), 4u);
}

TEST(Lower, ForCreatesLoop) {
  Program p;
  p.main_body.push_back(S::decl_int("i"));
  p.main_body.push_back(S::decl_int("acc", E::lit(0)));
  p.main_body.push_back(S::for_(
      "i", E::lit(0), E::lit(10),
      {S::assign("acc", E::add(E::ref("acc"), E::ref("i")))}));
  p.main_body.push_back(S::ret(E::ref("acc")));
  const auto m = lower(p);
  EXPECT_TRUE(ir::verify(*m).empty());
  // Loop structure: entry + cond + body + end at least.
  EXPECT_GE(m->find_function("main")->num_blocks(), 4u);
}

TEST(Lower, BufferArgsBecomePointers) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(16)));
  p.main_body.push_back(S::mpi(
      Func::Send,
      {A::buf("buf"), A::val(16),
       A::val(static_cast<std::int32_t>(mpi::Datatype::Int)), A::val(1),
       A::val(0), A::val(mpi::kCommWorld)}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto m = lower(p);
  EXPECT_TRUE(ir::verify(*m).empty());
  const std::string text = ir::to_string(*m);
  EXPECT_NE(text.find("call i32 @MPI_Send(%buf"), std::string::npos)
      << text;
}

TEST(Lower, BufOffsetUsesGep) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::F64, E::lit(8)));
  p.main_body.push_back(S::mpi(
      Func::Send,
      {A::buf_at("buf", E::lit(4)), A::val(4),
       A::val(static_cast<std::int32_t>(mpi::Datatype::Double)), A::val(1),
       A::val(0), A::val(mpi::kCommWorld)}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto m = lower(p);
  const std::string text = ir::to_string(*m);
  EXPECT_NE(text.find("getelementptr"), std::string::npos);
}

TEST(Lower, NullPtrArgLowersToNull) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::mpi(
      Func::Recv,
      {A::null(), A::val(0),
       A::val(static_cast<std::int32_t>(mpi::Datatype::Int)), A::val(0),
       A::val(0), A::val(mpi::kCommWorld), A::null()}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  EXPECT_NO_THROW(lower(p));
}

TEST(Lower, UserFunctionsAreDefinedAndCallable) {
  Program p;
  UserFunc f;
  f.name = "exchange_phase";
  f.body.push_back(S::mpi(Func::Barrier, {A::val(mpi::kCommWorld)}));
  p.functions.push_back(std::move(f));
  p.main_body = preamble();
  p.main_body.push_back(S::call_user("exchange_phase"));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto m = lower(p);
  EXPECT_TRUE(ir::verify(*m).empty());
  const ir::Function* fn = m->find_function("exchange_phase");
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->is_declaration());
}

TEST(Lower, ComputeEmitsArithmeticLoop) {
  Program p;
  p.main_body.push_back(S::decl_buf("data", ir::Type::F64, E::lit(8)));
  p.main_body.push_back(S::compute("data", 32));
  const auto m = lower(p);
  EXPECT_TRUE(ir::verify(*m).empty());
  const std::string text = ir::to_string(*m.get());
  EXPECT_NE(text.find("fmul"), std::string::npos);
}

TEST(Lower, ReturnMidBodyKeepsFunctionValid) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               {S::ret(E::lit(1))}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto m = lower(p);
  EXPECT_TRUE(ir::verify(*m).empty());
}

TEST(Lower, OptimizationPipelinesAcceptLoweredModules) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::decl_int("i"));
  p.main_body.push_back(
      S::for_("i", E::lit(0), E::lit(8),
              {S::buf_store("buf", E::ref("i"), E::mul(E::ref("i"), E::lit(2)))}));
  p.main_body.push_back(S::mpi(
      Func::Bcast, {A::buf("buf"), A::val(8),
                    A::val(static_cast<std::int32_t>(mpi::Datatype::Int)),
                    A::val(0), A::val(mpi::kCommWorld)}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));

  for (const auto lvl : passes::kAllOptLevels) {
    auto m = lower(p);
    passes::run_pipeline(*m, lvl);
    EXPECT_TRUE(ir::verify(*m).empty())
        << "pipeline " << passes::opt_level_name(lvl);
  }
}

TEST(Lower, OptLevelsChangeInstructionCount) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_int("x", E::lit(5)));
  p.main_body.push_back(S::assign("x", E::add(E::ref("x"), E::lit(0))));
  p.main_body.push_back(S::ret(E::ref("x")));
  auto o0 = lower(p);
  auto os = lower(p);
  passes::run_pipeline(*os, passes::OptLevel::Os);
  EXPECT_LT(os->instruction_count(), o0->instruction_count());
}

}  // namespace
}  // namespace mpidetect::progmodel
