// Serialization subsystem tests: save/load round trips must reproduce
// verdicts BIT-IDENTICALLY for every detector kind on a fixed corpus,
// the encoding spill must serve disk hits across cache instances, and
// corrupt / truncated / future-version artifacts must be rejected with
// a clear FormatError instead of producing a silently different model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/detector.hpp"
#include "core/eval_engine.hpp"
#include "datasets/corrbench.hpp"
#include "datasets/mbi.hpp"
#include "io/encoding_io.hpp"
#include "io/model_io.hpp"
#include "io/serialize.hpp"
#include "support/check.hpp"

namespace mpidetect {
namespace {

namespace fs = std::filesystem;

/// Unique per-test scratch directory, removed on destruction.
struct TempDir {
  fs::path path;

  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("mpidetect_io_") + info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const char* name) const { return (path / name).string(); }
};

datasets::Dataset small_mbi(double scale = 0.05, std::uint64_t seed = 99) {
  datasets::MbiConfig cfg;
  cfg.scale = scale;
  cfg.seed = seed;
  return datasets::generate_mbi(cfg);
}

core::DetectorConfig tiny_config() {
  core::DetectorConfig cfg;
  cfg.ir2vec.use_ga = false;
  cfg.gnn.cfg.embed_dim = 8;
  cfg.gnn.cfg.layers = {16, 8};
  cfg.gnn.cfg.fc_hidden = 8;
  cfg.gnn.cfg.epochs = 2;
  return cfg;
}

void expect_identical_verdicts(const std::vector<core::Verdict>& a,
                               const std::vector<core::Verdict>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << "case " << i;
    EXPECT_EQ(a[i].predicted_label, b[i].predicted_label) << "case " << i;
    // Bit-identical, not approximately equal: the format stores IEEE-754
    // bit patterns, so nothing may drift through a round trip.
    EXPECT_EQ(a[i].confidence, b[i].confidence) << "case " << i;
  }
}

TEST(SerializeTest, PrimitivesRoundTrip) {
  std::stringstream ss;
  io::Writer w(ss);
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.str("hello");
  w.index_vec(std::vector<std::size_t>{5, 0, 7});
  io::Reader r(ss);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(std::signbit(r.f64()), true);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.index_vec(), (std::vector<std::size_t>{5, 0, 7}));
  EXPECT_TRUE(r.at_end());
}

TEST(SerializeTest, TruncatedStreamThrows) {
  std::stringstream ss;
  io::Writer w(ss);
  w.u32(7);
  io::Reader r(ss, "test-origin");
  try {
    r.u64();
    FAIL() << "expected FormatError";
  } catch (const io::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("test-origin"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("end of file"), std::string::npos);
  }
}

TEST(SerializeTest, ImplausibleCountRejected) {
  std::stringstream ss;
  io::Writer w(ss);
  w.u64(std::uint64_t{1} << 60);  // a corrupt length prefix
  io::Reader r(ss);
  EXPECT_THROW(r.str(), io::FormatError);
}

TEST(SerializeTest, FutureVersionRejected) {
  std::stringstream ss;
  io::Writer w(ss);
  io::write_section(w, "CART", 999);
  io::Reader r(ss);
  try {
    io::read_section(r, "CART", 1, "decision-tree model");
    FAIL() << "expected FormatError";
  } catch (const io::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("999"), std::string::npos);
  }
}

TEST(SerializeTest, WrongMagicRejected) {
  std::stringstream ss;
  io::Writer w(ss);
  io::write_section(w, "GNNW", 1);
  io::Reader r(ss);
  EXPECT_THROW(io::read_section(r, "CART", 1, "decision-tree model"),
               io::FormatError);
}

TEST(DecisionTreeIoTest, RoundTripPredictsIdentically) {
  // A spiral of points the tree must carve up with many splits.
  std::vector<std::vector<double>> X;
  std::vector<std::size_t> y;
  for (int i = 0; i < 120; ++i) {
    const double a = 0.1 * i;
    X.push_back({a * std::cos(a), a * std::sin(a), (i % 7) * 0.3});
    y.push_back(static_cast<std::size_t>(i % 3));
  }
  ml::DecisionTree tree;
  tree.fit(X, y);

  std::stringstream ss;
  io::Writer w(ss);
  io::save_decision_tree(w, tree);
  io::Reader r(ss);
  const ml::DecisionTree loaded = io::load_decision_tree(r);

  EXPECT_EQ(loaded.node_count(), tree.node_count());
  EXPECT_EQ(loaded.depth(), tree.depth());
  EXPECT_EQ(loaded.num_classes(), tree.num_classes());
  EXPECT_EQ(loaded.predict(X), tree.predict(X));
}

TEST(DecisionTreeIoTest, MalformedNodesRejected) {
  std::vector<ml::DecisionTree::Node> nodes(2);
  nodes[0].leaf = false;
  nodes[0].left = 0;  // self-loop: predict() would never terminate
  nodes[0].right = 1;
  EXPECT_THROW(ml::DecisionTree::from_nodes({}, nodes, 2, 4),
               ContractViolation);

  nodes[0].left = 5;  // out of range
  EXPECT_THROW(ml::DecisionTree::from_nodes({}, nodes, 2, 4),
               ContractViolation);

  nodes = std::vector<ml::DecisionTree::Node>(3);
  nodes[0].leaf = false;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[0].feature = 99;  // past the feature-row width: OOB read in predict
  EXPECT_THROW(ml::DecisionTree::from_nodes({}, nodes, 2, 4),
               ContractViolation);

  nodes[0].feature = 3;  // in range: accepted
  const auto tree = ml::DecisionTree::from_nodes({}, nodes, 2, 4);
  EXPECT_EQ(tree.num_features(), 4u);
  EXPECT_EQ(tree.predict(std::vector<double>{0, 0, 0, 0}), 0u);
}

TEST(VocabularyIoTest, RoundTripAndSeedPreserved) {
  std::stringstream ss;
  io::Writer w(ss);
  io::save_vocabulary(w, ir2vec::Vocabulary(0x5eed));
  io::Reader r(ss);
  const ir2vec::Vocabulary loaded = io::load_vocabulary(r);
  EXPECT_EQ(loaded.seed(), 0x5eedu);
  EXPECT_EQ(loaded.entity("callee:MPI_Recv"),
            ir2vec::Vocabulary(0x5eed).entity("callee:MPI_Recv"));
}

TEST(BundleTest, Ir2vecRoundTripReproducesEngineVerdictsExactly) {
  TempDir tmp;
  const auto ds = small_mbi();
  auto& registry = core::DetectorRegistry::global();

  auto det = registry.create("ir2vec", tiny_config());
  core::EvalEngine engine(2);
  engine.fit_full(*det, ds);
  const auto before = engine.sweep(*det, ds);

  const std::string path = tmp.file("ir2vec.mpib");
  registry.save_bundle("ir2vec", *det, path);

  // A fresh engine + cache: the loaded model must re-encode and still
  // produce the exact same verdicts the in-process model did.
  auto loaded = registry.load_bundle(path);
  core::EvalEngine engine2(2);
  const auto after = engine2.sweep(*loaded, ds);
  expect_identical_verdicts(before.verdicts, after.verdicts);
  EXPECT_EQ(before.confusion.to_string(), after.confusion.to_string());
}

TEST(BundleTest, Ir2vecMulticlassStatePersists) {
  TempDir tmp;
  const auto ds = small_mbi(0.08);
  auto& registry = core::DetectorRegistry::global();
  auto det = registry.create("ir2vec", tiny_config());

  // Multiclass fit: labels are per-label class indices, not binary.
  core::EvalEngine engine(2);
  std::vector<std::size_t> idx(ds.size());
  std::vector<std::size_t> y(ds.size());
  std::vector<std::string> names;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    idx[i] = i;
    const std::string label = ds.cases[i].label_name();
    auto it = std::find(names.begin(), names.end(), label);
    if (it == names.end()) {
      names.push_back(label);
      it = names.end() - 1;
    }
    y[i] = static_cast<std::size_t>(it - names.begin());
  }
  det->prepare(ds);
  det->fit(ds, idx, y, core::FitSpec{std::nullopt, 0, true});

  const std::string path = tmp.file("mc.mpib");
  registry.save_bundle("ir2vec", *det, path);
  auto loaded = registry.load_bundle(path);
  loaded->prepare(ds);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto a = det->evaluate(ds, i);
    const auto b = loaded->evaluate(ds, i);
    EXPECT_EQ(a.outcome, b.outcome);
    ASSERT_TRUE(b.predicted_label.has_value());  // multiclass survived
    EXPECT_EQ(a.predicted_label, b.predicted_label);
  }
}

TEST(BundleTest, GnnRoundTripReproducesEngineVerdictsExactly) {
  TempDir tmp;
  const auto ds = small_mbi(0.02);
  auto& registry = core::DetectorRegistry::global();

  auto det = registry.create("gnn", tiny_config());
  core::EvalEngine engine(2);
  engine.fit_full(*det, ds);
  const auto before = engine.sweep(*det, ds);

  const std::string path = tmp.file("gnn.mpib");
  registry.save_bundle("gnn", *det, path);

  auto loaded = registry.load_bundle(path);
  core::EvalEngine engine2(2);
  const auto after = engine2.sweep(*loaded, ds);
  expect_identical_verdicts(before.verdicts, after.verdicts);
}

TEST(BundleTest, StatelessToolBundleRoundTrips) {
  TempDir tmp;
  const auto ds = small_mbi(0.03);
  auto& registry = core::DetectorRegistry::global();
  auto det = registry.create("parcoach");

  const std::string path = tmp.file("parcoach.mpib");
  registry.save_bundle("parcoach", *det, path);
  auto loaded = registry.load_bundle(path);
  EXPECT_EQ(loaded->name(), det->name());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded->evaluate(ds, i).outcome, det->evaluate(ds, i).outcome);
  }
}

TEST(BundleTest, UnfittedDetectorRefusesToSave) {
  TempDir tmp;
  auto& registry = core::DetectorRegistry::global();
  const auto det = registry.create("ir2vec");
  EXPECT_THROW(
      registry.save_bundle("ir2vec", *det, tmp.file("unfitted.mpib")),
      ContractViolation);
  const auto gnn = registry.create("gnn");
  EXPECT_THROW(registry.save_bundle("gnn", *gnn, tmp.file("unfitted2.mpib")),
               ContractViolation);
  // The aborted writes must not leave partial .mpib/.tmp files behind.
  EXPECT_TRUE(fs::is_empty(tmp.path));
}

TEST(BundleTest, CorruptBundlesRejectedWithClearErrors) {
  TempDir tmp;
  const auto ds = small_mbi(0.03);
  auto& registry = core::DetectorRegistry::global();
  auto det = registry.create("ir2vec", tiny_config());
  core::EvalEngine engine(2);
  engine.fit_full(*det, ds);
  const std::string path = tmp.file("model.mpib");
  registry.save_bundle("ir2vec", *det, path);

  // Truncation: drop the second half of the file.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    std::ofstream out(tmp.file("truncated.mpib"), std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(registry.load_bundle(tmp.file("truncated.mpib")),
               io::FormatError);

  // Wrong magic: not a bundle at all.
  {
    std::ofstream out(tmp.file("noise.mpib"), std::ios::binary);
    out << "this is not a model bundle";
  }
  try {
    registry.load_bundle(tmp.file("noise.mpib"));
    FAIL() << "expected FormatError";
  } catch (const io::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("not a mpidetect model bundle"),
              std::string::npos)
        << e.what();
  }

  // Future format version.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    bytes[4] = 0x7f;  // bump the bundle version little-endian low byte
    std::ofstream out(tmp.file("future.mpib"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    registry.load_bundle(tmp.file("future.mpib"));
    FAIL() << "expected FormatError";
  } catch (const io::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported"), std::string::npos)
        << e.what();
  }

  // Trailing garbage after a valid payload.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    std::ofstream out(tmp.file("trailing.mpib"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "garbage";
  }
  EXPECT_THROW(registry.load_bundle(tmp.file("trailing.mpib")),
               io::FormatError);

  // Missing file.
  EXPECT_THROW(registry.load_bundle(tmp.file("missing.mpib")),
               io::FormatError);
}

TEST(EncodingSpillTest, SecondCacheServesFromDisk) {
  TempDir tmp;
  const auto ds = small_mbi(0.04);
  const auto opt = passes::OptLevel::Os;
  const auto norm = ir2vec::Normalization::Vector;

  core::EncodingCache first;
  first.set_spill_dir(tmp.path.string());
  const core::FeatureSet& computed = first.features(ds, opt, norm, 1);
  EXPECT_EQ(first.disk_hits(), 0u);
  EXPECT_EQ(first.disk_writes(), 1u);

  // A brand-new cache (a new process, conceptually) must not re-embed.
  core::EncodingCache second;
  second.set_spill_dir(tmp.path.string());
  const core::FeatureSet& loaded = second.features(ds, opt, norm, 1);
  EXPECT_EQ(second.disk_hits(), 1u);
  EXPECT_EQ(second.disk_writes(), 0u);
  EXPECT_EQ(loaded.X, computed.X);
  EXPECT_EQ(loaded.y_binary, computed.y_binary);
  EXPECT_EQ(loaded.y_label, computed.y_label);
  EXPECT_EQ(loaded.label_names, computed.label_names);
  EXPECT_EQ(loaded.case_names, computed.case_names);

  // Graphs spill independently.
  const core::GraphSet& g1 = first.graphs(ds, passes::OptLevel::O0);
  core::EncodingCache third;
  third.set_spill_dir(tmp.path.string());
  const core::GraphSet& g2 = third.graphs(ds, passes::OptLevel::O0);
  EXPECT_EQ(third.disk_hits(), 1u);
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_EQ(g1.graphs[i].num_nodes(), g2.graphs[i].num_nodes());
    EXPECT_EQ(g1.graphs[i].num_edges(), g2.graphs[i].num_edges());
  }
}

TEST(EncodingSpillTest, CorruptSpillFileRecomputedNotTrusted) {
  TempDir tmp;
  const auto ds = small_mbi(0.03);
  const auto opt = passes::OptLevel::Os;
  const auto norm = ir2vec::Normalization::Vector;

  core::EncodingCache first;
  first.set_spill_dir(tmp.path.string());
  const auto X = first.features(ds, opt, norm, 1).X;

  // Corrupt every spill file in place.
  for (const auto& entry : fs::directory_iterator(tmp.path)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "junk";
  }
  core::EncodingCache second;
  second.set_spill_dir(tmp.path.string());
  const core::FeatureSet& recomputed = second.features(ds, opt, norm, 1);
  EXPECT_EQ(second.disk_hits(), 0u);   // the junk was not served
  EXPECT_EQ(second.disk_writes(), 1u); // and was overwritten
  EXPECT_EQ(recomputed.X, X);
}

TEST(EncodingSpillTest, ProgramContentChangesTheKey) {
  // corr with vs without the mpitest.h preamble: identical dataset name,
  // case names and labels — only the program BODIES differ. Serving one
  // encoding for the other would be silently wrong verdicts, so the
  // fingerprint must separate them, in memory and on disk.
  TempDir tmp;
  datasets::CorrConfig stripped;
  stripped.scale = 0.2;
  datasets::CorrConfig with_header = stripped;
  with_header.strip_header = false;
  const auto a = datasets::generate_corrbench(stripped);
  const auto b = datasets::generate_corrbench(with_header);
  const auto opt = passes::OptLevel::Os;
  const auto norm = ir2vec::Normalization::Vector;

  core::EncodingCache first;
  first.set_spill_dir(tmp.path.string());
  first.features(a, opt, norm, 1);

  core::EncodingCache second;
  second.set_spill_dir(tmp.path.string());
  second.features(b, opt, norm, 1);
  EXPECT_EQ(second.disk_hits(), 0u);    // a's spill file was NOT served
  EXPECT_EQ(second.disk_writes(), 1u);  // b embedded and spilled itself

  core::EncodingCache third;
  third.features(a, opt, norm, 1);
  third.features(b, opt, norm, 1);
  EXPECT_EQ(third.feature_set_count(), 2u);  // distinct in-memory slots
}

TEST(EncodingSpillTest, DifferentConfigurationsDoNotCollide) {
  TempDir tmp;
  const auto ds = small_mbi(0.03);

  core::EncodingCache cache;
  cache.set_spill_dir(tmp.path.string());
  cache.features(ds, passes::OptLevel::Os, ir2vec::Normalization::Vector, 1);
  cache.features(ds, passes::OptLevel::O0, ir2vec::Normalization::Vector, 1);
  cache.features(ds, passes::OptLevel::Os, ir2vec::Normalization::None, 1);
  cache.features(ds, passes::OptLevel::Os, ir2vec::Normalization::Vector, 2);
  EXPECT_EQ(cache.disk_writes(), 4u);  // four distinct spill files
  EXPECT_EQ(cache.feature_set_count(), 4u);
}

}  // namespace
}  // namespace mpidetect
