#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/cfg.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "passes/constant_fold.hpp"
#include "passes/dce.hpp"
#include "passes/inliner.hpp"
#include "passes/instcombine.hpp"
#include "passes/mem2reg.hpp"
#include "passes/pipelines.hpp"
#include "passes/simplify_cfg.hpp"

namespace mpidetect::passes {
namespace {

using namespace mpidetect::ir;

// ------------------------------------------------------------ utilities
TEST(PassUtils, UseCountsSeeEveryOperandSlot) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* doubled = b.add(f->arg(0), f->arg(0));
  b.ret(doubled);
  const auto uses = use_counts(*f);
  EXPECT_EQ(uses.at(f->arg(0)), 2u);
  EXPECT_EQ(uses.at(doubled), 1u);
}

TEST(PassUtils, ReplaceAllUsesRewritesOperands) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* v = b.add(f->arg(0), m.get_i32(0));
  Instruction* r = b.ret(v);
  replace_all_uses(*f, v, f->arg(0));
  EXPECT_EQ(r->operand(0), f->arg(0));
}

TEST(PassUtils, SideEffectClassification) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* slot = b.alloca_(Type::I32, 1);
  Instruction* st = b.store(f->arg(0), slot);
  Instruction* add = b.add(f->arg(0), f->arg(0));
  Instruction* r = b.ret_void();
  EXPECT_FALSE(has_side_effects(*slot));
  EXPECT_TRUE(has_side_effects(*st));
  EXPECT_FALSE(has_side_effects(*add));
  EXPECT_TRUE(has_side_effects(*r));
}

// --------------------------------------------------------- constant fold
TEST(ConstantFold, FoldsIntegerArithmetic) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* v = b.add(m.get_i32(2), m.get_i32(3));
  Instruction* r = b.ret(v);
  ConstantFold pass;
  EXPECT_TRUE(pass.run(*f));
  ASSERT_EQ(r->operand(0)->kind(), ValueKind::ConstantInt);
  EXPECT_EQ(static_cast<const ConstantInt*>(r->operand(0))->value(), 5);
}

TEST(ConstantFold, PreservesDivisionByZero) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* v = b.sdiv(m.get_i32(2), m.get_i32(0));
  b.ret(v);
  ConstantFold pass;
  EXPECT_FALSE(pass.run(*f));
}

TEST(ConstantFold, FoldsComparisonsAndSelect) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I32, Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* c = b.icmp(CmpPred::SLT, m.get_i32(1), m.get_i32(2));
  Instruction* s = b.select(c, f->arg(0), f->arg(1));
  Instruction* r = b.ret(s);
  ConstantFold pass;
  pass.run(*f);
  pass.run(*f);  // second sweep folds select once the cond is a constant
  EXPECT_EQ(r->operand(0), f->arg(0));
}

TEST(ConstantFold, FoldsCasts) {
  Module m("t");
  Function* f = m.create_function("f", Type::I64, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* v = b.cast(Opcode::SExt, m.get_i32(-7), Type::I64);
  Instruction* r = b.ret(v);
  ConstantFold pass;
  EXPECT_TRUE(pass.run(*f));
  EXPECT_EQ(static_cast<const ConstantInt*>(r->operand(0))->value(), -7);
}

TEST(ConstantFold, TruncWrapsToI32) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* v =
      b.cast(Opcode::Trunc, m.get_i64((1LL << 32) + 5), Type::I32);
  Instruction* r = b.ret(v);
  ConstantFold().run(*f);
  EXPECT_EQ(static_cast<const ConstantInt*>(r->operand(0))->value(), 5);
}

TEST(ConstantFold, FoldsFloatArithmetic) {
  Module m("t");
  Function* f = m.create_function("f", Type::F64, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* v = b.fmul(m.get_f64(2.0), m.get_f64(0.5));
  Instruction* r = b.ret(v);
  ConstantFold().run(*f);
  ASSERT_EQ(r->operand(0)->kind(), ValueKind::ConstantFP);
  EXPECT_DOUBLE_EQ(static_cast<const ConstantFP*>(r->operand(0))->value(),
                   1.0);
}

// ------------------------------------------------------------------ dce
TEST(Dce, RemovesUnusedPureInstructions) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  b.add(f->arg(0), m.get_i32(1));           // dead
  Instruction* chain = b.mul(f->arg(0), m.get_i32(2));  // dead via chain
  b.add(chain, m.get_i32(3));               // dead, uses chain
  b.ret_void();
  DeadCodeElim pass;
  EXPECT_TRUE(pass.run(*f));
  EXPECT_EQ(f->instruction_count(), 1u);  // only ret remains
}

TEST(Dce, KeepsSideEffectsAndLiveValues) {
  Module m("t");
  Function* callee = m.get_or_declare("MPI_Barrier", Type::I32, {Type::I32});
  Function* f = m.create_function("f", Type::I32, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  b.call(callee, {m.get_i32(0)});
  Instruction* live = b.add(f->arg(0), m.get_i32(1));
  b.ret(live);
  DeadCodeElim pass;
  EXPECT_FALSE(pass.run(*f));
  EXPECT_EQ(f->instruction_count(), 3u);
}

// ---------------------------------------------------------- instcombine
TEST(InstCombine, AddZeroIdentity) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* v = b.add(f->arg(0), m.get_i32(0));
  Instruction* r = b.ret(v);
  InstCombine pass;
  EXPECT_TRUE(pass.run(*f));
  EXPECT_EQ(r->operand(0), f->arg(0));
}

TEST(InstCombine, SubSelfIsZero) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* v = b.sub(f->arg(0), f->arg(0));
  Instruction* r = b.ret(v);
  InstCombine().run(*f);
  ASSERT_EQ(r->operand(0)->kind(), ValueKind::ConstantInt);
  EXPECT_EQ(static_cast<const ConstantInt*>(r->operand(0))->value(), 0);
}

TEST(InstCombine, MulByZeroAndOne) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* one = b.mul(f->arg(0), m.get_i32(1));
  Instruction* zero = b.mul(f->arg(0), m.get_i32(0));
  Instruction* v = b.add(one, zero);
  Instruction* r = b.ret(v);
  InstCombine pass;
  pass.run(*f);
  pass.run(*f);
  EXPECT_EQ(r->operand(0), f->arg(0));
}

TEST(InstCombine, IcmpSelfByPredicate) {
  Module m("t");
  Function* f = m.create_function("f", Type::I1, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* eq = b.icmp(CmpPred::EQ, f->arg(0), f->arg(0));
  Instruction* r = b.ret(eq);
  InstCombine().run(*f);
  ASSERT_EQ(r->operand(0)->kind(), ValueKind::ConstantInt);
  EXPECT_EQ(static_cast<const ConstantInt*>(r->operand(0))->value(), 1);
}

TEST(InstCombine, SingleValuePhiCollapses) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I1, Type::I32});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* t = f->create_block("t");
  BasicBlock* j = f->create_block("j");
  b.set_insert_point(e);
  b.cond_br(f->arg(0), t, j);
  b.set_insert_point(t);
  b.br(j);
  b.set_insert_point(j);
  Instruction* p = b.phi(Type::I32);
  IRBuilder::add_incoming(p, f->arg(1), e);
  IRBuilder::add_incoming(p, f->arg(1), t);
  Instruction* r = b.ret(p);
  InstCombine().run(*f);
  EXPECT_EQ(r->operand(0), f->arg(1));
}

// ----------------------------------------------------------- simplifycfg
TEST(SimplifyCfg, FoldsConstantCondBr) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* t = f->create_block("t");
  BasicBlock* x = f->create_block("x");
  b.set_insert_point(e);
  b.cond_br(m.get_bool(true), t, x);
  b.set_insert_point(t);
  b.ret(m.get_i32(1));
  b.set_insert_point(x);
  b.ret(m.get_i32(2));
  SimplifyCFG pass;
  EXPECT_TRUE(pass.run(*f));
  EXPECT_TRUE(verify(*f).empty());
  // After folding + unreachable removal + merging, one block remains.
  EXPECT_EQ(f->num_blocks(), 1u);
  EXPECT_EQ(f->entry()->terminator()->opcode(), Opcode::Ret);
}

TEST(SimplifyCfg, RemovesUnreachableBlockAndFixesPhis) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I1, Type::I32});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* dead = f->create_block("dead");
  BasicBlock* j = f->create_block("join");
  b.set_insert_point(e);
  b.br(j);
  b.set_insert_point(dead);
  b.br(j);
  b.set_insert_point(j);
  Instruction* p = b.phi(Type::I32);
  IRBuilder::add_incoming(p, f->arg(1), e);
  IRBuilder::add_incoming(p, m.get_i32(99), dead);
  b.ret(p);
  SimplifyCFG().run(*f);
  EXPECT_TRUE(verify(*f).empty());
  for (const auto& bb : f->blocks()) EXPECT_NE(bb->name(), "dead");
}

TEST(SimplifyCfg, MergesStraightLineBlocks) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I32});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* nxt = f->create_block("next");
  b.set_insert_point(e);
  b.br(nxt);
  b.set_insert_point(nxt);
  Instruction* v = b.add(f->arg(0), m.get_i32(1));
  b.ret(v);
  SimplifyCFG().run(*f);
  EXPECT_EQ(f->num_blocks(), 1u);
  EXPECT_TRUE(verify(*f).empty());
}

// --------------------------------------------------------------- mem2reg
TEST(Mem2Reg, PromotableDetection) {
  Module m("t");
  Function* f = m.create_function("f", Type::Void, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* scalar = b.alloca_(Type::I32, 1);
  Instruction* array = b.alloca_(Type::I32, 8);
  Instruction* escaping = b.alloca_(Type::I32, 1);
  b.store(f->arg(0), scalar);
  b.store(f->arg(0), array);
  Function* sink = m.get_or_declare("sink", Type::Void, {Type::Ptr});
  b.call(sink, {escaping});
  b.ret_void();
  EXPECT_TRUE(is_promotable(*f, *scalar));
  EXPECT_FALSE(is_promotable(*f, *array));
  EXPECT_FALSE(is_promotable(*f, *escaping));
}

TEST(Mem2Reg, StraightLineStoreLoadForwarding) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  Instruction* slot = b.alloca_(Type::I32, 1, "x");
  b.store(f->arg(0), slot);
  Instruction* ld = b.load(Type::I32, slot);
  Instruction* r = b.ret(ld);
  Mem2Reg().run(*f);
  EXPECT_TRUE(verify(*f).empty());
  EXPECT_EQ(r->operand(0), f->arg(0));
  for (const auto& inst : f->entry()->instructions()) {
    EXPECT_NE(inst->opcode(), Opcode::Alloca);
    EXPECT_NE(inst->opcode(), Opcode::Store);
  }
}

TEST(Mem2Reg, DiamondGetsPhi) {
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I1});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* t = f->create_block("then");
  BasicBlock* el = f->create_block("else");
  BasicBlock* j = f->create_block("join");
  b.set_insert_point(e);
  Instruction* slot = b.alloca_(Type::I32, 1, "x");
  b.cond_br(f->arg(0), t, el);
  b.set_insert_point(t);
  b.store(m.get_i32(10), slot);
  b.br(j);
  b.set_insert_point(el);
  b.store(m.get_i32(20), slot);
  b.br(j);
  b.set_insert_point(j);
  Instruction* ld = b.load(Type::I32, slot);
  b.ret(ld);
  Mem2Reg().run(*f);
  EXPECT_TRUE(verify(*f).empty());
  // join block must now begin with a phi over 10/20.
  const Instruction* first = f->blocks().back()->instructions().front().get();
  ASSERT_EQ(first->opcode(), Opcode::Phi);
  EXPECT_EQ(first->num_operands(), 2u);
}

TEST(Mem2Reg, LoopCarriedVariable) {
  // i = 0; while (i < n) i = i + 1; return i;
  Module m("t");
  Function* f = m.create_function("f", Type::I32, {Type::I32});
  IRBuilder b(m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* hdr = f->create_block("header");
  BasicBlock* body = f->create_block("body");
  BasicBlock* exit = f->create_block("exit");
  b.set_insert_point(e);
  Instruction* slot = b.alloca_(Type::I32, 1, "i");
  b.store(m.get_i32(0), slot);
  b.br(hdr);
  b.set_insert_point(hdr);
  Instruction* i1 = b.load(Type::I32, slot);
  Instruction* cmp = b.icmp(CmpPred::SLT, i1, f->arg(0));
  b.cond_br(cmp, body, exit);
  b.set_insert_point(body);
  Instruction* i2 = b.load(Type::I32, slot);
  Instruction* inc = b.add(i2, m.get_i32(1));
  b.store(inc, slot);
  b.br(hdr);
  b.set_insert_point(exit);
  Instruction* i3 = b.load(Type::I32, slot);
  b.ret(i3);

  Mem2Reg().run(*f);
  EXPECT_TRUE(verify(*f).empty());
  // No loads/stores/allocas remain.
  for (const auto& bb : f->blocks()) {
    for (const auto& inst : bb->instructions()) {
      EXPECT_NE(inst->opcode(), Opcode::Load);
      EXPECT_NE(inst->opcode(), Opcode::Store);
      EXPECT_NE(inst->opcode(), Opcode::Alloca);
    }
  }
}

// ---------------------------------------------------------------- inliner
TEST(Inliner, InlinesSmallCallee) {
  Module m("t");
  Function* g = m.create_function("g", Type::I32, {Type::I32});
  IRBuilder b(m);
  b.set_insert_point(g->create_block("entry"));
  Instruction* doubled = b.add(g->arg(0), g->arg(0));
  b.ret(doubled);

  Function* f = m.create_function("f", Type::I32, {Type::I32});
  b.set_insert_point(f->create_block("entry"));
  Instruction* c = b.call(g, {f->arg(0)}, "r");
  b.ret(c);

  Inliner().run(*f);
  EXPECT_TRUE(verify(*f).empty());
  for (const auto& bb : f->blocks()) {
    for (const auto& inst : bb->instructions()) {
      EXPECT_NE(inst->opcode(), Opcode::Call);
    }
  }
}

TEST(Inliner, SkipsDeclarationsAndBigCallees) {
  Module m("t");
  Function* decl = m.get_or_declare("MPI_Barrier", Type::I32, {Type::I32});
  Function* f = m.create_function("f", Type::Void, {});
  IRBuilder b(m);
  b.set_insert_point(f->create_block("entry"));
  b.call(decl, {m.get_i32(0)});
  b.ret_void();
  EXPECT_FALSE(Inliner().run(*f));
}

TEST(Inliner, MultiReturnCalleeGetsMergePhi) {
  Module m("t");
  Function* g = m.create_function("g", Type::I32, {Type::I1});
  IRBuilder b(m);
  BasicBlock* ge = g->create_block("entry");
  BasicBlock* gt = g->create_block("t");
  BasicBlock* gf = g->create_block("f");
  b.set_insert_point(ge);
  b.cond_br(g->arg(0), gt, gf);
  b.set_insert_point(gt);
  b.ret(m.get_i32(1));
  b.set_insert_point(gf);
  b.ret(m.get_i32(2));

  Function* f = m.create_function("f", Type::I32, {Type::I1});
  b.set_insert_point(f->create_block("entry"));
  Instruction* c = b.call(g, {f->arg(0)}, "r");
  b.ret(c);

  Inliner().run(*f);
  EXPECT_TRUE(verify(*f).empty());
  bool has_phi = false;
  for (const auto& bb : f->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == Opcode::Phi) has_phi = true;
    }
  }
  EXPECT_TRUE(has_phi);
}

// --------------------------------------------------------------- pipelines
TEST(Pipelines, NamesMatchPaperSpelling) {
  EXPECT_EQ(opt_level_name(OptLevel::O0), "-O0");
  EXPECT_EQ(opt_level_name(OptLevel::O2), "-O2");
  EXPECT_EQ(opt_level_name(OptLevel::Os), "-Os");
}

std::unique_ptr<Module> make_pipeline_input() {
  auto m = std::make_unique<Module>("p");
  Function* f = m->create_function("f", Type::I32, {Type::I32});
  IRBuilder b(*m);
  BasicBlock* e = f->create_block("entry");
  BasicBlock* t = f->create_block("t");
  BasicBlock* x = f->create_block("x");
  b.set_insert_point(e);
  Instruction* slot = b.alloca_(Type::I32, 1, "acc");
  b.store(m->get_i32(0), slot);
  Instruction* cmp = b.icmp(CmpPred::SLT, m->get_i32(1), m->get_i32(2));
  b.cond_br(cmp, t, x);
  b.set_insert_point(t);
  Instruction* v = b.add(f->arg(0), m->get_i32(0));
  b.store(v, slot);
  b.br(x);
  b.set_insert_point(x);
  Instruction* ld = b.load(Type::I32, slot);
  b.ret(ld);
  return m;
}

TEST(Pipelines, O0LeavesModuleIntact) {
  auto m = make_pipeline_input();
  const std::size_t before = m->instruction_count();
  run_pipeline(*m, OptLevel::O0);
  EXPECT_EQ(m->instruction_count(), before);
}

TEST(Pipelines, O2ShrinksAndStaysValid) {
  auto m = make_pipeline_input();
  const std::size_t before = m->instruction_count();
  run_pipeline(*m, OptLevel::O2);
  EXPECT_TRUE(verify(*m).empty());
  EXPECT_LT(m->instruction_count(), before);
}

TEST(Pipelines, OsNeverLargerThanO2OnThisInput) {
  auto m2 = make_pipeline_input();
  auto ms = make_pipeline_input();
  run_pipeline(*m2, OptLevel::O2);
  run_pipeline(*ms, OptLevel::Os);
  EXPECT_TRUE(verify(*ms).empty());
  EXPECT_LE(ms->instruction_count(), m2->instruction_count());
}

TEST(Pipelines, FullyConstantFunctionReducesToReturn) {
  auto m = make_pipeline_input();
  run_pipeline(*m, OptLevel::O2);
  const Function* f = m->find_function("f");
  // The branch condition (1 < 2) is constant: one block remains.
  EXPECT_EQ(f->num_blocks(), 1u);
}

}  // namespace
}  // namespace mpidetect::passes
