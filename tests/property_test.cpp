// Property-based sweeps (parameterized gtest) over the cross-module
// invariants of the system:
//   * every (injection x size-class) template builds a program that
//     lowers, verifies, optimizes and embeds cleanly;
//   * optimization preserves runtime semantics: correct programs stay
//     clean at every -O level, deadlocking programs keep deadlocking;
//   * embeddings and graphs are deterministic and well-formed for every
//     generated case;
//   * matmul/gather/scatter gradients check out across shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "datasets/corrbench.hpp"
#include "datasets/mbi.hpp"
#include "datasets/templates.hpp"
#include "ir/verifier.hpp"
#include "ir2vec/encoder.hpp"
#include "ir2vec/normalize.hpp"
#include "ml/autograd.hpp"
#include "mpisim/machine.hpp"
#include "passes/pipelines.hpp"
#include "programl/graph.hpp"
#include "progmodel/lower.hpp"

namespace mpidetect {
namespace {

// ===========================================================================
// Sweep 1: every injection, every size class -> valid pipeline artifacts
// ===========================================================================

using InjectSizeParam = std::tuple<int /*inject*/, int /*size_class*/>;

class InjectionSweep : public ::testing::TestWithParam<InjectSizeParam> {};

TEST_P(InjectionSweep, TemplateBuildsLowersOptimizesAndEmbeds) {
  const auto inject = static_cast<datasets::Inject>(std::get<0>(GetParam()));
  const int size_class = std::get<1>(GetParam());
  const auto templates = datasets::templates_for(inject);
  ASSERT_FALSE(templates.empty());
  for (const datasets::Template* tpl : templates) {
    Rng rng(static_cast<std::uint64_t>(std::get<0>(GetParam())) * 31 +
            static_cast<std::uint64_t>(size_class));
    datasets::BuildContext ctx;
    ctx.rng = &rng;
    ctx.inject = inject;
    ctx.size_class = size_class;
    const auto program = tpl->fn(ctx);
    const auto module = progmodel::lower(program);
    EXPECT_TRUE(ir::verify(*module).empty())
        << tpl->id << "/" << datasets::inject_name(inject);

    for (const auto lvl : passes::kAllOptLevels) {
      auto opt = progmodel::lower(program);
      passes::run_pipeline(*opt, lvl);
      EXPECT_TRUE(ir::verify(*opt).empty())
          << tpl->id << " at " << passes::opt_level_name(lvl);
      // Embedding and graph stay well-formed on optimized IR.
      ir2vec::Vocabulary vocab;
      const auto v = ir2vec::encode_concat(*opt, vocab);
      ASSERT_EQ(v.size(), 512u);
      for (const double x : v) EXPECT_TRUE(std::isfinite(x));
      const auto g = programl::build_graph(*opt);
      EXPECT_GT(g.num_nodes(), 0u);
      for (std::size_t et = 0; et < programl::kNumEdgeTypes; ++et) {
        for (const auto& e : g.edges[et]) {
          EXPECT_LT(e.src, g.num_nodes());
          EXPECT_LT(e.dst, g.num_nodes());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllInjectionsAllSizes, InjectionSweep,
    ::testing::Combine(
        ::testing::Range(
            0, static_cast<int>(datasets::Inject::MissingFinalizeCall) + 1),
        ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<InjectSizeParam>& info) {
      return std::string(datasets::inject_name(
                 static_cast<datasets::Inject>(std::get<0>(info.param)))) +
             "_size" + std::to_string(std::get<1>(info.param));
    });

// ===========================================================================
// Sweep 2: optimization preserves runtime semantics of correct programs
// ===========================================================================

class OptSemanticsSweep : public ::testing::TestWithParam<int /*tpl idx*/> {};

TEST_P(OptSemanticsSweep, CorrectTemplateRunsCleanAtEveryOptLevel) {
  const auto& tpl = datasets::all_templates()[static_cast<std::size_t>(
      GetParam())];
  for (const std::uint64_t seed : {11u, 22u}) {
    Rng rng(seed);
    datasets::BuildContext ctx;
    ctx.rng = &rng;
    ctx.inject = datasets::Inject::None;
    ctx.size_class = 1;
    const auto program = tpl.fn(ctx);
    for (const auto lvl : passes::kAllOptLevels) {
      auto m = progmodel::lower(program);
      passes::run_pipeline(*m, lvl);
      mpisim::MachineConfig cfg;
      cfg.nprocs = program.nprocs;
      const auto rep = mpisim::run(*m, cfg);
      EXPECT_EQ(rep.outcome, mpisim::Outcome::Completed)
          << tpl.id << " at " << passes::opt_level_name(lvl) << ": "
          << rep.summary();
      EXPECT_TRUE(rep.findings.empty())
          << tpl.id << " at " << passes::opt_level_name(lvl) << ": "
          << rep.summary();
    }
  }
}

TEST_P(OptSemanticsSweep, DeadlockInjectionDeadlocksAtEveryOptLevel) {
  const auto& tpl = datasets::all_templates()[static_cast<std::size_t>(
      GetParam())];
  // Only templates supporting the recv-recv cycle participate.
  const auto supported = tpl.supported;
  if (std::find(supported.begin(), supported.end(),
                datasets::Inject::RecvRecvCycle) == supported.end()) {
    GTEST_SKIP() << tpl.id << " has no RecvRecvCycle variant";
  }
  Rng rng(5);
  datasets::BuildContext ctx;
  ctx.rng = &rng;
  ctx.inject = datasets::Inject::RecvRecvCycle;
  ctx.size_class = 0;
  const auto program = tpl.fn(ctx);
  for (const auto lvl : passes::kAllOptLevels) {
    auto m = progmodel::lower(program);
    passes::run_pipeline(*m, lvl);
    mpisim::MachineConfig cfg;
    cfg.nprocs = program.nprocs;
    const auto rep = mpisim::run(*m, cfg);
    EXPECT_EQ(rep.outcome, mpisim::Outcome::Deadlock)
        << tpl.id << " at " << passes::opt_level_name(lvl) << ": "
        << rep.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, OptSemanticsSweep,
    ::testing::Range(0, static_cast<int>(datasets::all_templates().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return std::string(
          datasets::all_templates()[static_cast<std::size_t>(info.param)].id);
    });

// ===========================================================================
// Sweep 3: embeddings are deterministic and size-monotone per seed
// ===========================================================================

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EmbeddingDeterministicPerVocabularySeed) {
  datasets::MbiConfig cfg;
  cfg.scale = 0.01;
  const auto ds = datasets::generate_mbi(cfg);
  const auto m = progmodel::lower(ds.cases.front().program);
  ir2vec::Vocabulary v1(GetParam());
  ir2vec::Vocabulary v2(GetParam());
  EXPECT_EQ(ir2vec::encode_concat(*m, v1), ir2vec::encode_concat(*m, v2));
}

TEST_P(SeedSweep, DifferentVocabularySeedsChangeEmbedding) {
  datasets::MbiConfig cfg;
  cfg.scale = 0.01;
  const auto ds = datasets::generate_mbi(cfg);
  const auto m = progmodel::lower(ds.cases.front().program);
  ir2vec::Vocabulary v1(GetParam());
  ir2vec::Vocabulary v2(GetParam() + 1);
  EXPECT_NE(ir2vec::encode_concat(*m, v1), ir2vec::encode_concat(*m, v2));
}

INSTANTIATE_TEST_SUITE_P(VocabSeeds, SeedSweep,
                         ::testing::Values(1u, 42u, 0x12c0ffeeu, 999u));

// ===========================================================================
// Sweep 4: simulator scales across rank counts
// ===========================================================================

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, BarrierAndAllreduceCompleteAtAnyScale) {
  using E = progmodel::Expr;
  using S = progmodel::Stmt;
  using A = progmodel::Arg;
  using mpi::Func;
  progmodel::Program p;
  p.main_body.push_back(S::decl_int("rank"));
  p.main_body.push_back(S::mpi(Func::Init, {}));
  p.main_body.push_back(
      S::mpi(Func::CommRank, {A::val(mpi::kCommWorld), A::addr("rank")}));
  p.main_body.push_back(S::decl_buf("s", ir::Type::I32, E::lit(1)));
  p.main_body.push_back(S::decl_buf("r", ir::Type::I32, E::lit(1)));
  p.main_body.push_back(S::buf_store("s", E::lit(0), E::ref("rank")));
  p.main_body.push_back(S::mpi(Func::Barrier, {A::val(mpi::kCommWorld)}));
  p.main_body.push_back(S::mpi(
      Func::Allreduce,
      {A::buf("s"), A::buf("r"), A::val(1),
       A::val(static_cast<std::int32_t>(mpi::Datatype::Int)),
       A::val(static_cast<std::int32_t>(mpi::ReduceOp::Sum)),
       A::val(mpi::kCommWorld)}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));

  const auto m = progmodel::lower(p);
  mpisim::MachineConfig cfg;
  cfg.nprocs = GetParam();
  const auto rep = mpisim::run(*m, cfg);
  EXPECT_EQ(rep.outcome, mpisim::Outcome::Completed) << rep.summary();
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

// ===========================================================================
// Sweep 5: autograd matmul/gather/scatter gradients across shapes
// ===========================================================================

using ShapeParam = std::tuple<int, int, int>;  // (n, k, m)

class MatmulShapeSweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(MatmulShapeSweep, GradientMatchesFiniteDifferences) {
  const auto [n, k, m] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 100 + k * 10 + m));
  ml::Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(k));
  ml::Matrix b(static_cast<std::size_t>(k), static_cast<std::size_t>(m));
  for (double& x : a.data()) x = rng.normal();
  for (double& x : b.data()) x = rng.normal();
  ml::Var va = ml::make_param(a);
  ml::Var vb = ml::make_param(std::move(b));

  const auto loss = [&] {
    ml::Var ones_l = ml::make_input(ml::Matrix(1, static_cast<std::size_t>(n), 1.0));
    ml::Var ones_r = ml::make_input(ml::Matrix(static_cast<std::size_t>(m), 1, 1.0));
    return ml::matmul(ml::matmul(ones_l, ml::matmul(va, vb)), ones_r);
  };
  ml::backward(loss());
  const ml::Matrix analytic = va->grad;
  const double eps = 1e-6;
  for (std::size_t i = 0; i < va->value.size(); ++i) {
    const double keep = va->value.data()[i];
    va->value.data()[i] = keep + eps;
    const double up = loss()->value.at(0, 0);
    va->value.data()[i] = keep - eps;
    const double down = loss()->value.at(0, 0);
    va->value.data()[i] = keep;
    EXPECT_NEAR(analytic.data()[i], (up - down) / (2 * eps), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapeSweep,
    ::testing::Values(ShapeParam{1, 1, 1}, ShapeParam{2, 3, 4},
                      ShapeParam{5, 1, 5}, ShapeParam{4, 8, 2},
                      ShapeParam{7, 7, 7}));

// ===========================================================================
// Sweep 6: normalization invariants over random vectors
// ===========================================================================

class NormalizationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormalizationSweep, VectorNormalizationIsIdempotentAndBounded) {
  Rng rng(GetParam());
  std::vector<double> v(64);
  for (double& x : v) x = rng.normal(0, 50);
  ir2vec::normalize_vector(v, ir2vec::Normalization::Vector);
  double mx = 0;
  for (const double x : v) mx = std::max(mx, std::fabs(x));
  EXPECT_LE(mx, 1.0 + 1e-12);
  EXPECT_NEAR(mx, 1.0, 1e-9);  // the max attains 1 by construction
  const auto once = v;
  ir2vec::normalize_vector(v, ir2vec::Normalization::Vector);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], once[i], 1e-12);
  }
}

TEST_P(NormalizationSweep, IndexNormalizationCentersEveryColumn) {
  Rng rng(GetParam());
  std::vector<std::vector<double>> rows(20, std::vector<double>(8));
  for (auto& r : rows) {
    for (double& x : r) x = rng.normal(5, 3);
  }
  ir2vec::normalize_dataset(rows, ir2vec::Normalization::Index);
  for (std::size_t j = 0; j < 8; ++j) {
    double mean = 0;
    for (const auto& r : rows) mean += r[j];
    EXPECT_NEAR(mean / rows.size(), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, NormalizationSweep,
                         ::testing::Values(3u, 17u, 99u, 123456u));

}  // namespace
}  // namespace mpidetect
