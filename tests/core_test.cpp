#include <gtest/gtest.h>

#include "core/gnn_detector.hpp"
#include "core/hypre_study.hpp"
#include "core/ir2vec_detector.hpp"
#include "datasets/corrbench.hpp"
#include "datasets/mbi.hpp"

namespace mpidetect::core {
namespace {

datasets::Dataset small_mbi() {
  datasets::MbiConfig cfg;
  // Large enough that the learned detectors clear their accuracy bars
  // with margin under any suite seed (k-fold on much smaller samples is
  // dominated by draw noise).
  cfg.scale = 0.15;
  return datasets::generate_mbi(cfg);
}

datasets::Dataset small_corr() {
  datasets::CorrConfig cfg;
  cfg.scale = 0.35;
  return datasets::generate_corrbench(cfg);
}

Ir2vecOptions fast_opts() {
  Ir2vecOptions o;
  o.use_ga = false;
  o.folds = 5;
  return o;
}

TEST(Features, ShapesAndLabels) {
  const auto ds = small_mbi();
  const auto fs = extract_features(ds, passes::OptLevel::Os,
                                   ir2vec::Normalization::Vector);
  EXPECT_EQ(fs.size(), ds.size());
  EXPECT_EQ(fs.X.front().size(), 512u);
  EXPECT_EQ(fs.label_names.size(), 10u);  // Correct + 9 error classes
  for (std::size_t i = 0; i < fs.size(); ++i) {
    EXPECT_EQ(fs.y_binary[i], fs.incorrect[i] ? 1u : 0u);
    EXPECT_LT(fs.y_label[i], fs.label_names.size());
  }
}

TEST(Features, VectorNormalizationBoundsRows) {
  const auto fs = extract_features(small_mbi(), passes::OptLevel::Os,
                                   ir2vec::Normalization::Vector);
  for (const auto& row : fs.X) {
    for (const double x : row) {
      EXPECT_LE(std::abs(x), 1.0 + 1e-9);
    }
  }
}

TEST(Features, DeterministicAcrossThreadCounts) {
  const auto ds = small_mbi();
  const auto a = extract_features(ds, passes::OptLevel::O0,
                                  ir2vec::Normalization::None, 99, 1);
  const auto b = extract_features(ds, passes::OptLevel::O0,
                                  ir2vec::Normalization::None, 99, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.X[i], b.X[i]);
}

TEST(Features, OptLevelChangesFeatures) {
  const auto ds = small_mbi();
  const auto o0 = extract_features(ds, passes::OptLevel::O0,
                                   ir2vec::Normalization::None);
  const auto os = extract_features(ds, passes::OptLevel::Os,
                                   ir2vec::Normalization::None);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < o0.size(); ++i) {
    differing += (o0.X[i] != os.X[i]);
  }
  EXPECT_GT(differing, o0.size() / 2);
}

TEST(Features, GraphExtraction) {
  const auto ds = small_mbi();
  const auto gs = extract_graphs(ds);
  EXPECT_EQ(gs.size(), ds.size());
  for (const auto& g : gs.graphs) EXPECT_GT(g.num_nodes(), 0u);
}

TEST(Ir2vecDetector, IntraBeatsChance) {
  const auto fs = extract_features(small_mbi(), passes::OptLevel::Os,
                                   ir2vec::Normalization::Vector);
  const auto c = ir2vec_intra(fs, fast_opts());
  EXPECT_EQ(c.population(), fs.size());
  EXPECT_GT(c.accuracy(), 0.7);
}

TEST(Ir2vecDetector, CrossRunsBothDirections) {
  const auto fs_m = extract_features(small_mbi(), passes::OptLevel::Os,
                                     ir2vec::Normalization::Vector);
  const auto fs_c = extract_features(small_corr(), passes::OptLevel::Os,
                                     ir2vec::Normalization::Vector);
  const auto m2c = ir2vec_cross(fs_m, fs_c, fast_opts());
  const auto c2m = ir2vec_cross(fs_c, fs_m, fast_opts());
  EXPECT_EQ(m2c.population(), fs_c.size());
  EXPECT_EQ(c2m.population(), fs_m.size());
  EXPECT_GT(m2c.accuracy(), 0.5);
}

TEST(Ir2vecDetector, GaSelectsSmallSubset) {
  const auto fs = extract_features(small_mbi(), passes::OptLevel::Os,
                                   ir2vec::Normalization::Vector);
  Ir2vecOptions o = fast_opts();
  o.use_ga = true;
  o.ga.population = 40;
  o.ga.generations = 3;
  o.ga.threads = 2;
  const auto model = train_ir2vec(fs.X, fs.y_binary, o);
  EXPECT_FALSE(model.selected_features.empty());
  EXPECT_LE(model.selected_features.size(), o.ga.genes);
  for (const auto f : model.selected_features) EXPECT_LT(f, 512u);
}

TEST(Ir2vecDetector, PerLabelCoversEveryLabel) {
  const auto fs = extract_features(small_mbi(), passes::OptLevel::Os,
                                   ir2vec::Normalization::Vector);
  const auto per_label = ir2vec_per_label(fs, fast_opts());
  EXPECT_EQ(per_label.size(), fs.label_names.size());
  std::size_t total = 0;
  for (const auto& [name, counts] : per_label) {
    (void)name;
    total += counts.second;
  }
  EXPECT_EQ(total, fs.size());
}

TEST(Ir2vecDetector, AblationExcludesLabelFromTraining) {
  const auto fs = extract_features(small_mbi(), passes::OptLevel::Os,
                                   ir2vec::Normalization::Vector);
  const auto [detected, total] =
      ir2vec_ablation(fs, {"Call Ordering"}, fast_opts());
  // Every Call Ordering sample is evaluated exactly once across folds.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    expected += (fs.label_names[fs.y_label[i]] == "Call Ordering");
  }
  EXPECT_EQ(total, expected);
  EXPECT_LE(detected, total);
}

TEST(Ir2vecDetector, AblationUnknownLabelThrows) {
  const auto fs = extract_features(small_mbi(), passes::OptLevel::Os,
                                   ir2vec::Normalization::Vector);
  EXPECT_THROW(ir2vec_ablation(fs, {"No Such Label"}, fast_opts()),
               ContractViolation);
}

TEST(GnnDetector, IntraRunsAndBeatsChance) {
  const auto gs = extract_graphs(small_mbi());
  GnnOptions o;
  o.folds = 3;
  o.cfg.epochs = 6;
  o.cfg.embed_dim = 16;
  o.cfg.layers = {32, 16};
  o.cfg.fc_hidden = 16;
  o.cfg.lr = 2e-3;
  const auto c = gnn_intra(gs, o);
  EXPECT_EQ(c.population(), gs.size());
  EXPECT_GT(c.accuracy(), 0.55);
}

TEST(GnnDetector, CrossRuns) {
  const auto gs_m = extract_graphs(small_mbi());
  const auto gs_c = extract_graphs(small_corr());
  GnnOptions o;
  o.cfg.epochs = 3;
  o.cfg.embed_dim = 16;
  o.cfg.layers = {32, 16};
  o.cfg.fc_hidden = 16;
  const auto c = gnn_cross(gs_m, gs_c, o);
  EXPECT_EQ(c.population(), gs_c.size());
}

TEST(HypreStudy, ProducesFourRowsOfSixCells) {
  Ir2vecOptions o = fast_opts();
  o.use_ga = true;
  o.ga.population = 30;
  o.ga.generations = 2;
  const auto res = hypre_study(small_mbi(), small_corr(), o);
  ASSERT_EQ(res.rows.size(), 4u);
  for (const auto& row : res.rows) {
    EXPECT_TRUE(row.features == "all" || row.features == "GA");
    EXPECT_TRUE(row.training == "MBI" || row.training == "MPI-CorrBench");
    EXPECT_LE(row.correct_cells(), 6u);
  }
}

}  // namespace
}  // namespace mpidetect::core
