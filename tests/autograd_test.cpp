#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ml/adam.hpp"
#include "ml/autograd.hpp"

namespace mpidetect::ml {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (double& x : m.data()) x = rng.normal();
  return m;
}

/// Finite-difference check: builds the graph through `f` (which must use
/// `leaf` as an input), compares autograd's d(loss)/d(leaf) against
/// central differences.
void gradcheck(const Var& leaf, const std::function<Var()>& f,
               double tol = 1e-5) {
  Var loss = f();
  backward(loss);
  const Matrix analytic = leaf->grad;
  const double eps = 1e-6;
  for (std::size_t i = 0; i < leaf->value.size(); ++i) {
    const double keep = leaf->value.data()[i];
    leaf->value.data()[i] = keep + eps;
    const double up = f()->value.at(0, 0);
    leaf->value.data()[i] = keep - eps;
    const double down = f()->value.at(0, 0);
    leaf->value.data()[i] = keep;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, tol)
        << "coordinate " << i;
  }
}

/// Reduces any matrix to a scalar by summing (via matmul with ones).
Var sum_all(const Var& a) {
  Var ones_r = make_input(Matrix(1, a->value.rows(), 1.0));
  Var ones_c = make_input(Matrix(a->value.cols(), 1, 1.0));
  return matmul(matmul(ones_r, a), ones_c);
}

TEST(Autograd, MatmulGradient) {
  Rng rng(1);
  Var a = make_param(random_matrix(3, 4, rng));
  Var b = make_param(random_matrix(4, 2, rng));
  gradcheck(a, [&] { return sum_all(matmul(a, b)); });
  a->zero_grad();
  b->zero_grad();
  gradcheck(b, [&] { return sum_all(matmul(a, b)); });
}

TEST(Autograd, AddAndScaleGradient) {
  Rng rng(2);
  Var a = make_param(random_matrix(2, 3, rng));
  Var b = make_param(random_matrix(2, 3, rng));
  gradcheck(a, [&] { return sum_all(add(scale(a, 2.5), b)); });
}

TEST(Autograd, RowBroadcastBiasGradient) {
  Rng rng(3);
  Var a = make_param(random_matrix(4, 3, rng));
  Var bias = make_param(random_matrix(1, 3, rng));
  gradcheck(bias, [&] { return sum_all(add_row_broadcast(a, bias)); });
}

TEST(Autograd, LeakyReluGradient) {
  Rng rng(4);
  Var a = make_param(random_matrix(3, 3, rng));
  gradcheck(a, [&] { return sum_all(leaky_relu(a)); });
}

TEST(Autograd, EluGradient) {
  Rng rng(5);
  Var a = make_param(random_matrix(3, 3, rng));
  gradcheck(a, [&] { return sum_all(elu(a)); });
}

TEST(Autograd, GatherRowsGradient) {
  Rng rng(6);
  Var a = make_param(random_matrix(4, 3, rng));
  const std::vector<std::uint32_t> idx{0, 2, 2, 3, 1};
  gradcheck(a, [&] { return sum_all(gather_rows(a, idx)); });
}

TEST(Autograd, ScatterAddRowsGradient) {
  Rng rng(7);
  Var a = make_param(random_matrix(5, 3, rng));
  const std::vector<std::uint32_t> idx{0, 1, 1, 2, 0};
  gradcheck(a, [&] { return sum_all(scatter_add_rows(a, idx, 3)); });
}

TEST(Autograd, SegmentSoftmaxForward) {
  Matrix s(4, 1);
  s.at(0, 0) = 1.0;
  s.at(1, 0) = 1.0;  // segment 0: equal scores -> 0.5 / 0.5
  s.at(2, 0) = 0.0;
  s.at(3, 0) = 0.0;  // segment 1
  Var scores = make_input(std::move(s));
  Var out = segment_softmax(scores, {0, 0, 1, 1}, 2);
  EXPECT_NEAR(out->value.at(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(out->value.at(1, 0), 0.5, 1e-12);
  EXPECT_NEAR(out->value.at(2, 0) + out->value.at(3, 0), 1.0, 1e-12);
}

TEST(Autograd, SegmentSoftmaxGradient) {
  Rng rng(8);
  Var scores = make_param(random_matrix(6, 1, rng));
  const std::vector<std::uint32_t> seg{0, 0, 1, 1, 1, 2};
  // Weight the outputs so the gradient is not trivially zero (softmax
  // sums to 1 per segment, so d(sum)/ds = 0).
  Var weights = make_input(random_matrix(6, 1, rng));
  gradcheck(scores, [&] {
    return sum_all(mul_rowwise(segment_softmax(scores, seg, 3), weights));
  });
}

TEST(Autograd, MulRowwiseGradient) {
  Rng rng(9);
  Var alpha = make_param(random_matrix(4, 1, rng));
  Var h = make_param(random_matrix(4, 3, rng));
  gradcheck(alpha, [&] { return sum_all(mul_rowwise(alpha, h)); });
  alpha->zero_grad();
  h->zero_grad();
  gradcheck(h, [&] { return sum_all(mul_rowwise(alpha, h)); });
}

TEST(Autograd, MaxPoolRowsGradient) {
  Rng rng(10);
  Var a = make_param(random_matrix(5, 3, rng));
  gradcheck(a, [&] { return sum_all(max_pool_rows(a)); });
}

TEST(Autograd, CrossEntropyGradient) {
  Rng rng(11);
  Var logits = make_param(random_matrix(1, 4, rng));
  gradcheck(logits, [&] { return cross_entropy(logits, 2); });
}

TEST(Autograd, CrossEntropyLossValue) {
  Matrix l(1, 2);
  l.at(0, 0) = 0.0;
  l.at(0, 1) = 0.0;
  Var logits = make_input(std::move(l));
  Var loss = cross_entropy(logits, 0);
  EXPECT_NEAR(loss->value.at(0, 0), std::log(2.0), 1e-12);
}

TEST(Autograd, ChainedCompositionGradient) {
  // A miniature GAT-like pipeline through every op family at once.
  Rng rng(12);
  Var x = make_param(random_matrix(4, 3, rng));
  Var w = make_param(random_matrix(3, 2, rng));
  Var a = make_param(random_matrix(2, 1, rng));
  const std::vector<std::uint32_t> src{0, 1, 2, 3, 0};
  const std::vector<std::uint32_t> dst{1, 1, 3, 0, 2};
  const auto f = [&] {
    Var h = matmul(x, w);
    Var hs = gather_rows(h, src);
    Var ht = gather_rows(h, dst);
    Var scores = matmul(leaky_relu(add(hs, ht)), a);
    Var alpha = segment_softmax(scores, dst, 4);
    Var msg = mul_rowwise(alpha, hs);
    Var out = scatter_add_rows(msg, dst, 4);
    Var pooled = max_pool_rows(elu(out));
    return cross_entropy(pooled, 1);
  };
  gradcheck(x, f, 1e-4);
  x->zero_grad();
  w->zero_grad();
  a->zero_grad();
  gradcheck(w, f, 1e-4);
  x->zero_grad();
  w->zero_grad();
  a->zero_grad();
  gradcheck(a, f, 1e-4);
}

TEST(Autograd, NoGradFlowsIntoInputs) {
  Rng rng(13);
  Var x = make_input(random_matrix(2, 2, rng));
  Var w = make_param(random_matrix(2, 2, rng));
  Var loss = sum_all(matmul(x, w));
  backward(loss);
  EXPECT_EQ(x->grad.size(), 0u);  // never allocated
  EXPECT_GT(w->grad.size(), 0u);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimise ||x - t||^2 via the autograd + Adam stack.
  Rng rng(14);
  Var x = make_param(random_matrix(1, 4, rng));
  const Matrix target = random_matrix(1, 4, rng);
  Adam opt({x}, /*lr=*/0.05);
  for (int it = 0; it < 500; ++it) {
    Var t = make_input(target);
    Var diff = add(x, scale(t, -1.0));
    Var loss = matmul(diff, transpose(diff));
    backward(loss);
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x->value.data()[i], target.data()[i], 0.05);
  }
}

}  // namespace
}  // namespace mpidetect::ml
