#include <gtest/gtest.h>

#include "mpi/api.hpp"
#include "mpisim/machine.hpp"
#include "progmodel/ast.hpp"
#include "progmodel/lower.hpp"

namespace mpidetect::mpisim {
namespace {

using mpi::Func;
using progmodel::Arg;
using progmodel::Expr;
using progmodel::HandleKind;
using progmodel::Program;
using progmodel::Stmt;
using E = Expr;
using S = Stmt;
using A = Arg;

constexpr std::int32_t kInt = static_cast<std::int32_t>(mpi::Datatype::Int);
constexpr std::int32_t kDouble =
    static_cast<std::int32_t>(mpi::Datatype::Double);
constexpr std::int32_t kW = mpi::kCommWorld;

std::vector<Stmt> preamble() {
  std::vector<Stmt> v;
  v.push_back(S::decl_int("rank"));
  v.push_back(S::decl_int("size"));
  v.push_back(S::mpi(Func::Init, {}));
  v.push_back(S::mpi(Func::CommRank, {A::val(kW), A::addr("rank")}));
  v.push_back(S::mpi(Func::CommSize, {A::val(kW), A::addr("size")}));
  return v;
}

RunReport run_program(Program p, int nprocs,
                      std::uint64_t max_steps = 2'000'000) {
  const auto m = progmodel::lower(p);
  MachineConfig cfg;
  cfg.nprocs = nprocs;
  cfg.max_steps = max_steps;
  return run(*m, cfg);
}

Stmt send_stmt(std::string buf, int count, std::int32_t dtype, Expr dest,
               int tag) {
  return S::mpi(Func::Send, {A::buf(std::move(buf)), A::val(count),
                             A::val(dtype), A::val(std::move(dest)),
                             A::val(tag), A::val(kW)});
}

Stmt recv_stmt(std::string buf, int count, std::int32_t dtype, Expr src,
               int tag) {
  return S::mpi(Func::Recv, {A::buf(std::move(buf)), A::val(count),
                             A::val(dtype), A::val(std::move(src)),
                             A::val(tag), A::val(kW), A::null()});
}

// ------------------------------------------------------------- basics

TEST(Sim, MinimalInitFinalizeCompletesClean) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_EQ(rep.outcome, Outcome::Completed);
  EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(Sim, MissingFinalizeIsReported) {
  Program p;
  p.main_body = preamble();
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::MissingFinalize)) << rep.summary();
}

TEST(Sim, CallBeforeInitIsReported) {
  Program p;
  p.main_body.push_back(S::mpi(Func::Barrier, {A::val(kW)}));
  p.main_body.push_back(S::mpi(Func::Init, {}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::DoubleInit)) << rep.summary();
}

// --------------------------------------------------------- point-to-point

Program pingpong() {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  std::vector<Stmt> r0;
  r0.push_back(S::buf_store("buf", E::lit(0), E::lit(42)));
  r0.push_back(send_stmt("buf", 4, kInt, E::lit(1), 7));
  r0.push_back(recv_stmt("buf", 4, kInt, E::lit(1), 8));
  std::vector<Stmt> r1;
  r1.push_back(recv_stmt("buf", 4, kInt, E::lit(0), 7));
  r1.push_back(send_stmt("buf", 4, kInt, E::lit(0), 8));
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  return p;
}

TEST(Sim, PingPongCompletesClean) {
  const auto rep = run_program(pingpong(), 2);
  EXPECT_EQ(rep.outcome, Outcome::Completed);
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Sim, RecvRecvCycleDeadlocks) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  // Both ranks receive first: classic head-to-head deadlock.
  std::vector<Stmt> r0{recv_stmt("buf", 4, kInt, E::lit(1), 0),
                       send_stmt("buf", 4, kInt, E::lit(1), 0)};
  std::vector<Stmt> r1{recv_stmt("buf", 4, kInt, E::lit(0), 0),
                       send_stmt("buf", 4, kInt, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_EQ(rep.outcome, Outcome::Deadlock) << rep.summary();
}

TEST(Sim, LargeSynchronousSendCycleDeadlocks) {
  Program p;
  p.main_body = preamble();
  // 4096 ints = 16 KiB > eager threshold: both sends rendezvous-block.
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4096)));
  std::vector<Stmt> r0{send_stmt("buf", 4096, kInt, E::lit(1), 0),
                       recv_stmt("buf", 4096, kInt, E::lit(1), 0)};
  std::vector<Stmt> r1{send_stmt("buf", 4096, kInt, E::lit(0), 0),
                       recv_stmt("buf", 4096, kInt, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_EQ(rep.outcome, Outcome::Deadlock) << rep.summary();
}

TEST(Sim, EagerSendSendCycleCompletes) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  std::vector<Stmt> r0{send_stmt("buf", 4, kInt, E::lit(1), 0),
                       recv_stmt("buf", 4, kInt, E::lit(1), 0)};
  std::vector<Stmt> r1{send_stmt("buf", 4, kInt, E::lit(0), 0),
                       recv_stmt("buf", 4, kInt, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_EQ(rep.outcome, Outcome::Completed) << rep.summary();
}

TEST(Sim, DatatypeMismatchDetectedAtMatch) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::F64, E::lit(8)));
  std::vector<Stmt> r0{send_stmt("buf", 4, kInt, E::lit(1), 0)};
  std::vector<Stmt> r1{recv_stmt("buf", 4, kDouble, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::TypeMismatch)) << rep.summary();
}

TEST(Sim, TruncationDetectedWhenSendExceedsRecv) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(16)));
  std::vector<Stmt> r0{send_stmt("buf", 16, kInt, E::lit(1), 0)};
  std::vector<Stmt> r1{recv_stmt("buf", 4, kInt, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::TypeMismatch)) << rep.summary();
}

TEST(Sim, InvalidParamNegativeCount) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  std::vector<Stmt> r0{send_stmt("buf", -1, kInt, E::lit(1), 0)};
  p.main_body.push_back(
      S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::InvalidParam)) << rep.summary();
}

TEST(Sim, InvalidParamBadDestRank) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  std::vector<Stmt> r0{send_stmt("buf", 4, kInt, E::lit(5), 0)};
  p.main_body.push_back(
      S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::InvalidParam)) << rep.summary();
}

TEST(Sim, InvalidParamBadTag) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  std::vector<Stmt> r0{send_stmt("buf", 4, kInt, E::lit(1), -5)};
  p.main_body.push_back(
      S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::InvalidParam)) << rep.summary();
}

TEST(Sim, InvalidParamNullBuffer) {
  Program p;
  p.main_body = preamble();
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Send,
                      {A::null(), A::val(4), A::val(kInt), A::val(1),
                       A::val(0), A::val(kW)}));
  p.main_body.push_back(
      S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::InvalidParam)) << rep.summary();
}

TEST(Sim, MessageRaceOnWildcardRecv) {
  Program p;
  p.nprocs = 3;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  std::vector<Stmt> r0{
      recv_stmt("buf", 4, kInt, E::lit(mpi::kAnySource), 0),
      recv_stmt("buf", 4, kInt, E::lit(mpi::kAnySource), 0)};
  std::vector<Stmt> rx{send_stmt("buf", 4, kInt, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(rx)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 3);
  EXPECT_EQ(rep.outcome, Outcome::Completed) << rep.summary();
  EXPECT_TRUE(rep.has(FindingKind::MessageRace)) << rep.summary();
}

// ----------------------------------------------------------- nonblocking

Program isend_wait(bool with_wait, bool touch_buffer_before_wait = false) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(2048)));
  p.main_body.push_back(S::decl_handle("req", HandleKind::Request));
  std::vector<Stmt> r0;
  // 2048 ints = 8 KiB: rendezvous path, so the request stays pending.
  r0.push_back(S::mpi(Func::Isend,
                      {A::buf("buf"), A::val(2048), A::val(kInt), A::val(1),
                       A::val(0), A::val(kW), A::addr("req")}));
  if (touch_buffer_before_wait) {
    r0.push_back(S::buf_store("buf", E::lit(0), E::lit(99)));
  }
  if (with_wait) {
    r0.push_back(S::mpi(Func::Wait, {A::addr("req"), A::null()}));
  }
  std::vector<Stmt> r1{recv_stmt("buf", 2048, kInt, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  return p;
}

TEST(Sim, IsendWaitCompletesClean) {
  const auto rep = run_program(isend_wait(true), 2);
  EXPECT_EQ(rep.outcome, Outcome::Completed);
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Sim, MissingWaitIsRequestLeak) {
  const auto rep = run_program(isend_wait(false), 2);
  EXPECT_TRUE(rep.has(FindingKind::ResourceLeak)) << rep.summary();
}

TEST(Sim, BufferWriteBeforeWaitIsLocalConcurrency) {
  const auto rep = run_program(isend_wait(true, true), 2);
  EXPECT_TRUE(rep.has(FindingKind::LocalConcurrency)) << rep.summary();
}

TEST(Sim, WaitOnUninitializedRequestIsRequestError) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_handle("req", HandleKind::Request));
  // req slot contains garbage zero -> MPI_REQUEST_NULL; waiting on a
  // never-assigned non-null handle is the interesting case, so assign a
  // bogus value first through an int alias... simplest: Wait twice after
  // completion: the second wait sees an invalidated handle (null -> ok),
  // so instead use MPI_Start on a non-persistent request.
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Isend,
                      {A::buf("buf"), A::val(4), A::val(kInt), A::val(1),
                       A::val(0), A::val(kW), A::addr("req")}));
  r0.push_back(S::mpi(Func::Start, {A::addr("req")}));  // not persistent!
  r0.push_back(S::mpi(Func::Wait, {A::addr("req"), A::null()}));
  std::vector<Stmt> r1{recv_stmt("buf", 4, kInt, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::RequestError)) << rep.summary();
}

TEST(Sim, PersistentRequestLifecycle) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::decl_handle("req", HandleKind::Request));
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::SendInit,
                      {A::buf("buf"), A::val(4), A::val(kInt), A::val(1),
                       A::val(0), A::val(kW), A::addr("req")}));
  r0.push_back(S::mpi(Func::Start, {A::addr("req")}));
  r0.push_back(S::mpi(Func::Wait, {A::addr("req"), A::null()}));
  r0.push_back(S::mpi(Func::Start, {A::addr("req")}));
  r0.push_back(S::mpi(Func::Wait, {A::addr("req"), A::null()}));
  r0.push_back(S::mpi(Func::RequestFree, {A::addr("req")}));
  std::vector<Stmt> r1{recv_stmt("buf", 4, kInt, E::lit(0), 0),
                       recv_stmt("buf", 4, kInt, E::lit(0), 0)};
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(r1)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_EQ(rep.outcome, Outcome::Completed) << rep.summary();
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Sim, PersistentRequestNeverFreedLeaks) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::decl_handle("req", HandleKind::Request));
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::SendInit,
                      {A::buf("buf"), A::val(4), A::val(kInt), A::val(1),
                       A::val(0), A::val(kW), A::addr("req")}));
  p.main_body.push_back(
      S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::ResourceLeak)) << rep.summary();
}

// ------------------------------------------------------------ collectives

TEST(Sim, BarrierSynchronizes) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::mpi(Func::Barrier, {A::val(kW)}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 4);
  EXPECT_EQ(rep.outcome, Outcome::Completed);
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Sim, CollectiveOrderMismatchDeadlocks) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  // rank 0: Barrier then Bcast; others: Bcast then Barrier.
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Barrier, {A::val(kW)}));
  r0.push_back(S::mpi(Func::Bcast, {A::buf("buf"), A::val(4), A::val(kInt),
                                    A::val(0), A::val(kW)}));
  std::vector<Stmt> rx;
  rx.push_back(S::mpi(Func::Bcast, {A::buf("buf"), A::val(4), A::val(kInt),
                                    A::val(0), A::val(kW)}));
  rx.push_back(S::mpi(Func::Barrier, {A::val(kW)}));
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               std::move(r0), std::move(rx)));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_EQ(rep.outcome, Outcome::Deadlock) << rep.summary();
  EXPECT_TRUE(rep.has(FindingKind::CollectiveMismatch)) << rep.summary();
}

TEST(Sim, BcastRootMismatchIsParamMismatch) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  // Root depends on rank: 0 on rank 0, 1 elsewhere.
  p.main_body.push_back(S::decl_int("root", E::lit(1)));
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               {S::assign("root", E::lit(0))}));
  p.main_body.push_back(S::mpi(Func::Bcast,
                               {A::buf("buf"), A::val(4), A::val(kInt),
                                A::val(E::ref("root")), A::val(kW)}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::ParamMismatch)) << rep.summary();
}

TEST(Sim, BcastDeliversRootPayload) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(1)));
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               {S::buf_store("buf", E::lit(0), E::lit(77))},
                               {S::buf_store("buf", E::lit(0), E::lit(0))}));
  p.main_body.push_back(S::mpi(Func::Bcast,
                               {A::buf("buf"), A::val(1), A::val(kInt),
                                A::val(0), A::val(kW)}));
  // Non-root returns buf[0]; completing with 77 proves delivery.
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 3);
  EXPECT_EQ(rep.outcome, Outcome::Completed);
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Sim, CollectiveCountMismatchIsParamMismatch) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::decl_int("n", E::lit(4)));
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               {S::assign("n", E::lit(8))}));
  p.main_body.push_back(S::mpi(Func::Bcast,
                               {A::buf("buf"), A::val(E::ref("n")),
                                A::val(kInt), A::val(0), A::val(kW)}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::ParamMismatch)) << rep.summary();
}

TEST(Sim, AllreduceOpMismatchIsParamMismatch) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("s", ir::Type::I32, E::lit(1)));
  p.main_body.push_back(S::decl_buf("r", ir::Type::I32, E::lit(1)));
  p.main_body.push_back(S::decl_int("op", E::lit(1)));  // MPI_SUM
  p.main_body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)),
                               {S::assign("op", E::lit(2))}));  // MPI_MAX
  p.main_body.push_back(S::mpi(Func::Allreduce,
                               {A::buf("s"), A::buf("r"), A::val(1),
                                A::val(kInt), A::val(E::ref("op")),
                                A::val(kW)}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::ParamMismatch)) << rep.summary();
}

// ------------------------------------------------- comms, datatypes, leaks

TEST(Sim, CommDupFreeIsClean) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_handle("newcomm", HandleKind::Comm));
  p.main_body.push_back(S::mpi(Func::CommDup, {A::val(kW), A::addr("newcomm")}));
  p.main_body.push_back(S::mpi(Func::Barrier, {A::val(E::ref("newcomm"))}));
  p.main_body.push_back(S::mpi(Func::CommFree, {A::addr("newcomm")}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_EQ(rep.outcome, Outcome::Completed);
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Sim, UnfreedCommLeaks) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_handle("newcomm", HandleKind::Comm));
  p.main_body.push_back(S::mpi(Func::CommDup, {A::val(kW), A::addr("newcomm")}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::ResourceLeak)) << rep.summary();
}

TEST(Sim, CommSplitGroupsByColor) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_handle("sub", HandleKind::Comm));
  p.main_body.push_back(S::decl_int("color"));
  p.main_body.push_back(S::assign("color", E::mod(E::ref("rank"), E::lit(2))));
  p.main_body.push_back(S::mpi(Func::CommSplit,
                               {A::val(kW), A::val(E::ref("color")),
                                A::val(E::ref("rank")), A::addr("sub")}));
  p.main_body.push_back(S::mpi(Func::Barrier, {A::val(E::ref("sub"))}));
  p.main_body.push_back(S::mpi(Func::CommFree, {A::addr("sub")}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 4);
  EXPECT_EQ(rep.outcome, Outcome::Completed) << rep.summary();
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Sim, UncommittedDatatypeIsInvalidParam) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_handle("dt", HandleKind::Datatype));
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(8)));
  p.main_body.push_back(S::mpi(Func::TypeContiguous,
                               {A::val(4), A::val(kInt), A::addr("dt")}));
  // Missing MPI_Type_commit.
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Send,
                      {A::buf("buf"), A::val(1), A::val(E::ref("dt")),
                       A::val(1), A::val(0), A::val(kW)}));
  p.main_body.push_back(
      S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  p.main_body.push_back(S::mpi(Func::TypeFree, {A::addr("dt")}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::InvalidParam)) << rep.summary();
}

TEST(Sim, UnfreedDatatypeLeaks) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_handle("dt", HandleKind::Datatype));
  p.main_body.push_back(S::mpi(Func::TypeContiguous,
                               {A::val(4), A::val(kInt), A::addr("dt")}));
  p.main_body.push_back(S::mpi(Func::TypeCommit, {A::addr("dt")}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::ResourceLeak)) << rep.summary();
}

// ------------------------------------------------------------------- RMA

Program rma_base(std::vector<Stmt> epoch_body, bool open_epoch = true,
                 bool close_epoch = true) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("wbuf", ir::Type::I32, E::lit(16)));
  p.main_body.push_back(S::decl_buf("obuf", ir::Type::I32, E::lit(16)));
  p.main_body.push_back(S::decl_handle("win", HandleKind::Win));
  p.main_body.push_back(S::mpi(Func::WinCreate,
                               {A::buf("wbuf"), A::val(E::lit(64)),
                                A::val(4), A::val(kW), A::addr("win")}));
  if (open_epoch) {
    p.main_body.push_back(
        S::mpi(Func::WinFence, {A::val(0), A::val(E::ref("win"))}));
  }
  for (Stmt& s : epoch_body) p.main_body.push_back(std::move(s));
  if (close_epoch) {
    p.main_body.push_back(
        S::mpi(Func::WinFence, {A::val(0), A::val(E::ref("win"))}));
  }
  p.main_body.push_back(S::mpi(Func::WinFree, {A::addr("win")}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  return p;
}

TEST(Sim, RmaPutInsideFenceEpochIsClean) {
  std::vector<Stmt> body;
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Put,
                      {A::buf("obuf"), A::val(4), A::val(kInt), A::val(1),
                       A::val(E::lit(0)), A::val(4), A::val(kInt),
                       A::val(E::ref("win"))}));
  body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  const auto rep = run_program(rma_base(std::move(body)), 2);
  EXPECT_EQ(rep.outcome, Outcome::Completed) << rep.summary();
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Sim, RmaPutOutsideEpochIsEpochError) {
  std::vector<Stmt> body;
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Put,
                      {A::buf("obuf"), A::val(4), A::val(kInt), A::val(1),
                       A::val(E::lit(0)), A::val(4), A::val(kInt),
                       A::val(E::ref("win"))}));
  body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  const auto rep =
      run_program(rma_base(std::move(body), /*open_epoch=*/false,
                           /*close_epoch=*/false),
                  2);
  EXPECT_TRUE(rep.has(FindingKind::EpochError)) << rep.summary();
}

TEST(Sim, ConflictingPutsAreGlobalConcurrency) {
  // Ranks 0 and 2 both put to rank 1, offset 0, inside one epoch.
  std::vector<Stmt> body;
  std::vector<Stmt> writer;
  writer.push_back(S::mpi(Func::Put,
                          {A::buf("obuf"), A::val(4), A::val(kInt), A::val(1),
                           A::val(E::lit(0)), A::val(4), A::val(kInt),
                           A::val(E::ref("win"))}));
  body.push_back(S::if_(E::ne(E::ref("rank"), E::lit(1)), std::move(writer)));
  const auto rep = run_program(rma_base(std::move(body)), 3);
  EXPECT_TRUE(rep.has(FindingKind::GlobalConcurrency)) << rep.summary();
}

TEST(Sim, RmaTargetOutOfWindowIsInvalidParam) {
  std::vector<Stmt> body;
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::Put,
                      {A::buf("obuf"), A::val(4), A::val(kInt), A::val(1),
                       A::val(E::lit(1000)), A::val(4), A::val(kInt),
                       A::val(E::ref("win"))}));
  body.push_back(S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  const auto rep = run_program(rma_base(std::move(body)), 2);
  EXPECT_TRUE(rep.has(FindingKind::InvalidParam)) << rep.summary();
}

TEST(Sim, UnfreedWindowLeaks) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("wbuf", ir::Type::I32, E::lit(16)));
  p.main_body.push_back(S::decl_handle("win", HandleKind::Win));
  p.main_body.push_back(S::mpi(Func::WinCreate,
                               {A::buf("wbuf"), A::val(E::lit(64)),
                                A::val(4), A::val(kW), A::addr("win")}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::ResourceLeak)) << rep.summary();
}

TEST(Sim, LockUnlockEpochAllowsPut) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("wbuf", ir::Type::I32, E::lit(16)));
  p.main_body.push_back(S::decl_buf("obuf", ir::Type::I32, E::lit(16)));
  p.main_body.push_back(S::decl_handle("win", HandleKind::Win));
  p.main_body.push_back(S::mpi(Func::WinCreate,
                               {A::buf("wbuf"), A::val(E::lit(64)),
                                A::val(4), A::val(kW), A::addr("win")}));
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::WinLock,
                      {A::val(mpi::kLockExclusive), A::val(1), A::val(0),
                       A::val(E::ref("win"))}));
  r0.push_back(S::mpi(Func::Put,
                      {A::buf("obuf"), A::val(4), A::val(kInt), A::val(1),
                       A::val(E::lit(0)), A::val(4), A::val(kInt),
                       A::val(E::ref("win"))}));
  r0.push_back(S::mpi(Func::WinUnlock, {A::val(1), A::val(E::ref("win"))}));
  p.main_body.push_back(
      S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  p.main_body.push_back(S::mpi(Func::WinFree, {A::addr("win")}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_EQ(rep.outcome, Outcome::Completed) << rep.summary();
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

TEST(Sim, UnlockWithoutLockIsEpochError) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("wbuf", ir::Type::I32, E::lit(16)));
  p.main_body.push_back(S::decl_handle("win", HandleKind::Win));
  p.main_body.push_back(S::mpi(Func::WinCreate,
                               {A::buf("wbuf"), A::val(E::lit(64)),
                                A::val(4), A::val(kW), A::addr("win")}));
  std::vector<Stmt> r0;
  r0.push_back(S::mpi(Func::WinUnlock, {A::val(1), A::val(E::ref("win"))}));
  p.main_body.push_back(
      S::if_(E::eq(E::ref("rank"), E::lit(0)), std::move(r0)));
  p.main_body.push_back(S::mpi(Func::WinFree, {A::addr("win")}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_TRUE(rep.has(FindingKind::EpochError)) << rep.summary();
}

// ------------------------------------------------------------- scheduling

TEST(Sim, InfiniteLoopTimesOut) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_int("i"));
  p.main_body.push_back(S::for_("i", E::lit(0), E::lit(1000000000),
                                {S::assign("i", E::sub(E::ref("i"), E::lit(1)))}));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2, /*max_steps=*/50'000);
  EXPECT_EQ(rep.outcome, Outcome::Timeout) << rep.summary();
}

TEST(Sim, ReportSummaryMentionsOutcome) {
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 2);
  EXPECT_NE(rep.summary().find("completed"), std::string::npos);
}

TEST(Sim, ManyRanksCompleteRing) {
  // Ring exchange: rank r sends to (r+1)%size, receives from left.
  Program p;
  p.main_body = preamble();
  p.main_body.push_back(S::decl_buf("buf", ir::Type::I32, E::lit(4)));
  p.main_body.push_back(S::decl_int("right"));
  p.main_body.push_back(S::decl_int("left"));
  p.main_body.push_back(S::assign(
      "right", E::mod(E::add(E::ref("rank"), E::lit(1)), E::ref("size"))));
  p.main_body.push_back(S::assign(
      "left", E::mod(E::add(E::ref("rank"),
                            E::sub(E::ref("size"), E::lit(1))),
                     E::ref("size"))));
  p.main_body.push_back(send_stmt("buf", 4, kInt, E::ref("right"), 3));
  p.main_body.push_back(recv_stmt("buf", 4, kInt, E::ref("left"), 3));
  p.main_body.push_back(S::mpi(Func::Finalize, {}));
  const auto rep = run_program(p, 6);
  EXPECT_EQ(rep.outcome, Outcome::Completed) << rep.summary();
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
}

}  // namespace
}  // namespace mpidetect::mpisim
