#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace mpidetect {
namespace {

// ---------------------------------------------------------------- check
TEST(Check, PassingCheckDoesNotThrow) { EXPECT_NO_THROW(MPIDETECT_CHECK(1 + 1 == 2)); }

TEST(Check, FailingCheckThrowsContractViolation) {
  EXPECT_THROW(MPIDETECT_CHECK(false), ContractViolation);
}

TEST(Check, FailingExpectsMentionsExpression) {
  try {
    MPIDETECT_EXPECTS(2 < 1);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
  }
}

// ------------------------------------------------------------------ rng
TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen, (std::set<std::int64_t>{0, 1, 2, 3}));
}

TEST(Rng, UniformIntRespectsNegativeBounds) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.uniform_int(-5, -2);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, -2);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(29);
  Rng child = parent.fork();
  // Draw from the child; the parent stream must continue deterministically
  // compared against a reference that forked but never used the child.
  Rng parent2(29);
  Rng child2 = parent2.fork();
  (void)child2;
  for (int i = 0; i < 16; ++i) (void)child.next();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(parent.next(), parent2.next());
}

TEST(Rng, IndexRequiresPositiveSize) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), ContractViolation);
}

TEST(Rng, Fnv1aStableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("MPI_Send"), fnv1a64("MPI_Recv"));
}

TEST(Rng, Mix64AvalanchesSingleBit) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0), 0u);
}

// ------------------------------------------------------------------ str
TEST(Str, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Str, JoinRoundTripsSplit) {
  EXPECT_EQ(join(split("x;y;z", ';'), ";"), "x;y;z");
}

TEST(Str, TrimBothEnds) { EXPECT_EQ(trim("  hi\t\n"), "hi"); }

TEST(Str, TrimAllWhitespaceYieldsEmpty) { EXPECT_EQ(trim(" \t "), ""); }

TEST(Str, StartsEndsWith) {
  EXPECT_TRUE(starts_with("MPI_Send", "MPI_"));
  EXPECT_FALSE(starts_with("Send", "MPI_"));
  EXPECT_TRUE(ends_with("prog.c", ".c"));
  EXPECT_FALSE(ends_with(".c", "prog.c"));
}

TEST(Str, FmtDoublePrecision) {
  EXPECT_EQ(fmt_double(0.9174, 3), "0.917");
  EXPECT_EQ(fmt_double(1.0, 1), "1.0");
}

TEST(Str, FmtPercent) { EXPECT_EQ(fmt_percent(0.917, 1), "91.7%"); }

TEST(Str, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 3), "abcde");  // never truncates
}

TEST(Str, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
}

// ---------------------------------------------------------------- table
TEST(Table, AlignsAndPrintsAllRows) {
  Table t({"Model", "Acc"});
  t.add_row({"IR2vec", "0.917"});
  t.add_separator();
  t.add_row({"GNN", "0.914"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("IR2vec"), std::string::npos);
  EXPECT_NE(s.find("GNN"), std::string::npos);
  EXPECT_NE(s.find("0.917"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"A", "B", "C"});
  t.add_row({"x"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(Table, OversizedRowRejected) {
  Table t({"A"});
  EXPECT_THROW(t.add_row({"x", "y"}), ContractViolation);
}

TEST(Table, CsvOutput) {
  Table t({"A", "B"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "A,B\n1,2\n");
}

// ---------------------------------------------------------------- stats
TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

TEST(Stats, FiveNumberSummaryOrdering) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);
  const auto s = five_number_summary(xs);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(Stats, HistogramCountsEverySample) {
  const std::vector<double> xs{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto h = histogram(xs, 5);
  std::size_t total = 0;
  for (const auto c : h) total += c;
  EXPECT_EQ(total, xs.size());
}

TEST(Stats, HistogramSingleValueGoesToOneBin) {
  const std::vector<double> xs{3, 3, 3};
  const auto h = histogram(xs, 4);
  EXPECT_EQ(h[0], 3u);
}

TEST(Stats, SparklineNonEmpty) {
  const std::vector<double> xs{1, 2, 2, 3, 3, 3};
  EXPECT_FALSE(sparkline(xs, 8).empty());
}

}  // namespace
}  // namespace mpidetect
