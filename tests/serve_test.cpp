// Serving subsystem tests: every wire frame must round-trip
// bit-exactly, every flavour of byte damage (truncation, corruption,
// future versions, trailing bytes, implausible length prefixes) must be
// rejected with io::FormatError — never a crash — and the Server must
// hold its acceptance contract end to end over real socketpairs:
// concurrent clients served from warm bundles, coalesced batches,
// BUSY backpressure, ERROR replies for bad requests, and a SHUTDOWN
// that drains everything admitted before the BYE.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "core/detector.hpp"
#include "core/eval_engine.hpp"
#include "datasets/spec.hpp"
#include "serve/backoff.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "serve/wire.hpp"
#include "support/check.hpp"

namespace mpidetect {
namespace {

namespace fs = std::filesystem;

/// Named scratch directory, removed on destruction.
struct TempDir {
  fs::path path;

  explicit TempDir(const std::string& name) {
    path = fs::temp_directory_path() / ("mpidetect_serve_" + name);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const char* name) const { return (path / name).string(); }
};

constexpr const char* kSpec = "mbi:0.02@7";

core::DetectorConfig tiny_config() {
  core::DetectorConfig cfg;
  cfg.ir2vec.use_ga = false;
  cfg.gnn.cfg.embed_dim = 8;
  cfg.gnn.cfg.layers = {16, 8};
  cfg.gnn.cfg.fc_hidden = 8;
  cfg.gnn.cfg.epochs = 2;
  return cfg;
}

/// Trained bundles shared by every server test (training once keeps the
/// suite fast; each test still builds its own Server from the files).
struct Bundles {
  TempDir dir{"bundles"};
  std::string gnn = dir.file("gnn.mpib");
  std::string ir2vec = dir.file("ir2vec.mpib");

  Bundles() {
    const auto ds = datasets::make_dataset(kSpec);
    auto& registry = core::DetectorRegistry::global();
    core::EvalEngine engine(2);
    for (const char* key : {"gnn", "ir2vec"}) {
      auto det = registry.create(key, tiny_config());
      engine.fit_full(*det, ds);
      registry.save_bundle(key, *det, dir.file(key) + ".mpib");
    }
  }
};

const Bundles& bundles() {
  static Bundles b;
  return b;
}

serve::ServerOptions server_options() {
  serve::ServerOptions opts;
  opts.model_paths = {bundles().gnn, bundles().ir2vec};
  opts.queue_capacity = 8;
  opts.max_batch = 4;
  opts.threads = 2;
  return opts;
}

/// One in-process connection: a socketpair with serve_connection running
/// on its far end, exactly as the daemon would.
struct Conn {
  std::unique_ptr<serve::Transport> client;
  std::unique_ptr<serve::Transport> server_end;
  std::thread th;

  explicit Conn(serve::Server& s, const std::string& peer = "test-client") {
    auto [a, b] = serve::local_pair();
    client = std::move(a);
    server_end = std::move(b);
    th = std::thread([&s, this, peer] { s.serve_connection(*server_end, peer); });
  }
  ~Conn() { close(); }

  /// Closes the client end and waits for serve_connection to return.
  void close() {
    if (client) client->shutdown();
    if (th.joinable()) th.join();
  }

  serve::Frame read() {
    auto f = serve::read_frame(*client, "server");
    if (!f) throw std::runtime_error("unexpected EOF from server");
    return *f;
  }
};

// ---- wire format ------------------------------------------------------------

std::vector<serve::Frame> every_frame() {
  serve::WireVerdict v;
  v.request_id = 9;
  v.outcome = 1;
  v.predicted_label = 3;
  v.confidence = 0.875;
  v.batch_size = 4;
  serve::WireVerdict bare;
  bare.request_id = 10;
  serve::Caps caps;
  caps.server = "testd";
  caps.queue_capacity = 64;
  caps.max_batch = 8;
  caps.detectors = {"gnn", "ir2vec"};
  serve::Stats stats;
  stats.received = 1;
  stats.served = 2;
  stats.busy_rejected = 3;
  stats.request_errors = 4;
  stats.protocol_errors = 5;
  stats.batches = 6;
  stats.max_coalesced = 7;
  stats.max_queue_depth = 8;
  stats.datasets_materialized = 9;
  stats.cache_disk_hits = 10;
  stats.cache_disk_writes = 11;
  stats.deadline_sheds = 12;
  stats.io_timeouts = 13;
  stats.reaped_connections = 14;
  stats.retries = 15;
  stats.watchdog_trips = 16;
  stats.faults_fired = 17;
  serve::Submit with_deadline{43, "gnn", "mbi:0.05@7", 18};
  with_deadline.deadline_ms = 250;
  return {serve::Hello{"cli"},
          caps,
          serve::Submit{42, "gnn", "mbi:0.05@7", 17},
          with_deadline,
          v,
          bare,
          serve::Busy{7},
          serve::Error{0, "lost framing"},
          serve::StatsReq{},
          stats,
          serve::Shutdown{},
          serve::Bye{},
          serve::Expired{13}};
}

/// Strips the u32 length prefix off a full encoded frame.
std::string payload_of(const serve::Frame& f) {
  const std::string bytes = serve::encode_frame(f);
  EXPECT_GE(bytes.size(), 4u + 9u);
  return bytes.substr(4);
}

TEST(WireTest, EveryFrameRoundTrips) {
  for (const auto& f : every_frame()) {
    const serve::Frame back = serve::decode_payload(payload_of(f), "test");
    ASSERT_EQ(serve::frame_type(back), serve::frame_type(f));
    // Spot-check the payload-bearing frames field by field.
    if (const auto* s = std::get_if<serve::Submit>(&f)) {
      const auto& b = std::get<serve::Submit>(back);
      EXPECT_EQ(b.request_id, s->request_id);
      EXPECT_EQ(b.detector, s->detector);
      EXPECT_EQ(b.dataset, s->dataset);
      EXPECT_EQ(b.index, s->index);
      EXPECT_EQ(b.deadline_ms, s->deadline_ms);
    } else if (const auto* v = std::get_if<serve::WireVerdict>(&f)) {
      const auto& b = std::get<serve::WireVerdict>(back);
      EXPECT_EQ(b.request_id, v->request_id);
      EXPECT_EQ(b.outcome, v->outcome);
      EXPECT_EQ(b.predicted_label, v->predicted_label);
      EXPECT_EQ(b.confidence, v->confidence);
      EXPECT_EQ(b.batch_size, v->batch_size);
    } else if (const auto* c = std::get_if<serve::Caps>(&f)) {
      const auto& b = std::get<serve::Caps>(back);
      EXPECT_EQ(b.server, c->server);
      EXPECT_EQ(b.queue_capacity, c->queue_capacity);
      EXPECT_EQ(b.max_batch, c->max_batch);
      EXPECT_EQ(b.detectors, c->detectors);
    } else if (const auto* s = std::get_if<serve::Stats>(&f)) {
      const auto& b = std::get<serve::Stats>(back);
      EXPECT_EQ(b.received, s->received);
      EXPECT_EQ(b.max_coalesced, s->max_coalesced);
      EXPECT_EQ(b.cache_disk_writes, s->cache_disk_writes);
      EXPECT_EQ(b.deadline_sheds, s->deadline_sheds);
      EXPECT_EQ(b.io_timeouts, s->io_timeouts);
      EXPECT_EQ(b.reaped_connections, s->reaped_connections);
      EXPECT_EQ(b.retries, s->retries);
      EXPECT_EQ(b.watchdog_trips, s->watchdog_trips);
      EXPECT_EQ(b.faults_fired, s->faults_fired);
    } else if (const auto* e = std::get_if<serve::Error>(&f)) {
      EXPECT_EQ(std::get<serve::Error>(back).message, e->message);
    } else if (const auto* x = std::get_if<serve::Expired>(&f)) {
      EXPECT_EQ(std::get<serve::Expired>(back).request_id, x->request_id);
    }
  }
}

// ---- protocol versioning ----------------------------------------------------

/// Builds the exact v1 bytes of a frame by hand (magic, version, type,
/// little-endian fields) — frozen independently of the encoder, so an
/// accidental change to the v1 encoding cannot hide behind a matching
/// change to the decoder.
std::string v1_golden(std::uint8_t type, const std::string& body) {
  std::string p = "MGWP";
  p += std::string("\x01\x00\x00\x00", 4);  // u32 version = 1
  p += static_cast<char>(type);
  p += body;
  return p;
}

std::string le64(std::uint64_t v) {
  std::string s(8, '\0');
  for (int i = 0; i < 8; ++i) s[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  return s;
}

std::string wire_str(const std::string& s) { return le64(s.size()) + s; }

TEST(WireVersionTest, V1EncodingIsByteIdenticalToGolden) {
  // HELLO: str client.
  EXPECT_EQ(serve::encode_frame(serve::Hello{"cli"}, 1).substr(4),
            v1_golden(1, wire_str("cli")));
  // SUBMIT at v1 has NO deadline field.
  EXPECT_EQ(
      serve::encode_frame(serve::Submit{42, "gnn", "mbi", 17}, 1).substr(4),
      v1_golden(3, le64(42) + wire_str("gnn") + wire_str("mbi") + le64(17)));
  // STATS at v1 is exactly the 11 original counters.
  serve::Stats s;
  s.received = 1;
  s.served = 2;
  s.busy_rejected = 3;
  s.request_errors = 4;
  s.protocol_errors = 5;
  s.batches = 6;
  s.max_coalesced = 7;
  s.max_queue_depth = 8;
  s.datasets_materialized = 9;
  s.cache_disk_hits = 10;
  s.cache_disk_writes = 11;
  s.deadline_sheds = 99;  // v2-only: must NOT appear in the v1 bytes
  std::string body;
  for (std::uint64_t v = 1; v <= 11; ++v) body += le64(v);
  EXPECT_EQ(serve::encode_frame(s, 1).substr(4), v1_golden(8, body));
}

TEST(WireVersionTest, V1FramesDecodeAndReportTheirVersion) {
  const std::string payload =
      v1_golden(3, le64(7) + wire_str("") + wire_str("mbi:0.02@7") + le64(3));
  std::uint32_t version = 0;
  const auto f = serve::decode_payload(payload, "test", &version);
  EXPECT_EQ(version, 1u);
  const auto& sub = std::get<serve::Submit>(f);
  EXPECT_EQ(sub.request_id, 7u);
  EXPECT_EQ(sub.deadline_ms, 0u);  // the field does not exist at v1
}

TEST(WireVersionTest, V2OnlyContentRefusesV1Encoding) {
  EXPECT_THROW((void)serve::encode_frame(serve::Expired{1}, 1),
               ContractViolation);
  serve::Submit s{1, "gnn", "mbi", 0};
  s.deadline_ms = 5;
  EXPECT_THROW((void)serve::encode_frame(s, 1), ContractViolation);
}

TEST(WireVersionTest, ExpiredFrameSmuggledIntoV1Rejected) {
  const std::string payload = v1_golden(11, le64(13));
  EXPECT_THROW((void)serve::decode_payload(payload, "test"), io::FormatError);
}

TEST(WireTest, TruncationAtEveryLengthRejected) {
  for (const auto& f : every_frame()) {
    const std::string payload = payload_of(f);
    for (std::size_t len = 0; len < payload.size(); ++len) {
      EXPECT_THROW(serve::decode_payload(payload.substr(0, len), "test"),
                   io::FormatError)
          << serve::frame_type_name(serve::frame_type(f)) << " truncated to "
          << len << " bytes";
    }
  }
}

TEST(WireTest, CorruptionOfEveryByteNeverCrashes) {
  for (const auto& f : every_frame()) {
    const std::string payload = payload_of(f);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      std::string bad = payload;
      bad[i] = static_cast<char>(bad[i] ^ 0xff);
      // Damage to a value byte may still parse (a different string is a
      // valid string); damage must never escape as anything but
      // FormatError, and never crash.
      try {
        (void)serve::decode_payload(bad, "test");
      } catch (const io::FormatError&) {
      }
      // The self-describing header (magic, version, frame type) must
      // always catch its own corruption.
      if (i < 9) {
        EXPECT_THROW(serve::decode_payload(bad, "test"), io::FormatError)
            << serve::frame_type_name(serve::frame_type(f)) << " header byte "
            << i;
      }
    }
  }
}

TEST(WireTest, FutureVersionRejected) {
  std::string payload = payload_of(serve::Submit{1, "gnn", "mbi", 0});
  // The u32 version sits right after the 4-byte magic.
  payload[4] = static_cast<char>(serve::kWireVersion + 1);
  try {
    serve::decode_payload(payload, "test");
    FAIL() << "expected FormatError";
  } catch (const io::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(WireTest, TrailingBytesRejected) {
  for (const auto& f : every_frame()) {
    const std::string payload = payload_of(f) + std::string(1, '\0');
    EXPECT_THROW(serve::decode_payload(payload, "test"), io::FormatError)
        << serve::frame_type_name(serve::frame_type(f));
  }
}

TEST(WireTest, ImplausibleLengthPrefixRejectedBeforeAllocation) {
  for (const std::uint32_t bad_len :
       {std::uint32_t{0}, std::uint32_t{8},
        static_cast<std::uint32_t>(serve::kMaxFrameBytes + 1),
        std::uint32_t{0xffffffff}}) {
    auto [a, b] = serve::local_pair();
    unsigned char prefix[4];
    for (int i = 0; i < 4; ++i) {
      prefix[i] = static_cast<unsigned char>((bad_len >> (8 * i)) & 0xff);
    }
    a->write_all(prefix, 4);
    EXPECT_THROW((void)serve::read_frame(*b, "test"), io::FormatError)
        << "length " << bad_len;
  }
}

TEST(WireTest, CleanEofIsNullopt) {
  auto [a, b] = serve::local_pair();
  a->shutdown();
  EXPECT_EQ(serve::read_frame(*b, "test"), std::nullopt);
}

TEST(WireTest, MidFrameEofIsTransportError) {
  auto [a, b] = serve::local_pair();
  const std::string bytes = serve::encode_frame(serve::Hello{"half"});
  a->write_all(bytes.data(), bytes.size() - 3);
  a->shutdown();
  EXPECT_THROW((void)serve::read_frame(*b, "test"),
               std::runtime_error);  // FormatError or TransportError
}

// ---- server end to end ------------------------------------------------------

TEST(ServerTest, HelloAnswersCapsWithLoadedDetectors) {
  serve::Server server(server_options());
  server.start();
  Conn conn(server);
  serve::write_frame(*conn.client, serve::Hello{"test"});
  const auto caps = std::get<serve::Caps>(conn.read());
  EXPECT_EQ(caps.server, "mpiguardd");
  EXPECT_EQ(caps.queue_capacity, 8u);
  EXPECT_EQ(caps.max_batch, 4u);
  EXPECT_EQ(caps.detectors, (std::vector<std::string>{"gnn", "ir2vec"}));
  conn.close();
  server.stop();
}

TEST(ServerTest, BatchedAdmissionCoalescesAndMatchesReference) {
  core::DetectorConfig cfg;
  cfg.cache = std::make_shared<core::EncodingCache>();
  auto ref = core::DetectorRegistry::global().load_bundle(bundles().gnn, cfg);
  const auto ds = datasets::make_dataset(kSpec);
  ref->prepare(ds, 2);
  const std::vector<std::size_t> idx{0, 3, 5, 9};
  const auto expected = ref->run_indexed(ds, idx);

  // The worker is not started yet, so every submit is admitted into the
  // queue first — coalescing is deterministic, not timing-dependent.
  serve::Server server(server_options());
  Conn conn(server);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    serve::write_frame(*conn.client,
                       serve::Submit{i + 1, "gnn", kSpec, idx[i]});
  }
  // Admission is asynchronous from the test's point of view; the queue
  // fills as the connection thread parses. Give it a moment, then start.
  while (server.snapshot_stats().received < idx.size()) {
    std::this_thread::yield();
  }
  server.start();

  std::map<std::uint64_t, serve::WireVerdict> got;
  while (got.size() < idx.size()) {
    const auto v = std::get<serve::WireVerdict>(conn.read());
    got.emplace(v.request_id, v);
  }
  conn.close();

  for (std::size_t i = 0; i < idx.size(); ++i) {
    const auto& v = got.at(i + 1);
    EXPECT_EQ(static_cast<core::Verdict::Outcome>(v.outcome),
              expected[i].outcome)
        << "case " << idx[i];
    ASSERT_TRUE(v.confidence.has_value());
    EXPECT_EQ(*v.confidence, *expected[i].confidence) << "case " << idx[i];
    // All four fit one window: the whole burst must be one batch.
    EXPECT_EQ(v.batch_size, 4u);
  }
  const auto stats = server.snapshot_stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_coalesced, 4u);
  server.stop();
}

TEST(ServerTest, ConcurrentClientsAllServed) {
  serve::Server server(server_options());
  server.start();
  constexpr int kClients = 4;
  constexpr int kPerClient = 3;
  std::vector<std::unique_ptr<Conn>> conns;
  for (int c = 0; c < kClients; ++c) {
    conns.push_back(std::make_unique<Conn>(server));
  }
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      serve::write_frame(*conns[c]->client,
                         serve::Submit{static_cast<std::uint64_t>(i + 1),
                                       c % 2 == 0 ? "gnn" : "ir2vec", kSpec,
                                       static_cast<std::uint64_t>(c + i)});
    }
  }
  for (int c = 0; c < kClients; ++c) {
    std::map<std::uint64_t, serve::WireVerdict> got;
    while (got.size() < kPerClient) {
      const auto frame = conns[c]->read();
      if (const auto* b = std::get_if<serve::Busy>(&frame)) {
        // Backpressure is legal under a concurrent burst; resubmit.
        const auto it = got.find(b->request_id);
        ASSERT_EQ(it, got.end());
        serve::write_frame(*conns[c]->client,
                           serve::Submit{b->request_id,
                                         c % 2 == 0 ? "gnn" : "ir2vec", kSpec,
                                         b->request_id - 1 + c});
        continue;
      }
      const auto v = std::get<serve::WireVerdict>(frame);
      got.emplace(v.request_id, v);
    }
  }
  for (auto& c : conns) c->close();
  const auto stats = server.snapshot_stats();
  EXPECT_EQ(stats.served,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.request_errors, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  server.stop();
}

TEST(ServerTest, FullQueueAnswersBusy) {
  auto opts = server_options();
  opts.queue_capacity = 2;
  serve::Server server(opts);  // worker not started: the queue stays full
  Conn conn(server);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    serve::write_frame(*conn.client, serve::Submit{i, "gnn", kSpec, i});
  }
  const auto busy = std::get<serve::Busy>(conn.read());
  EXPECT_EQ(busy.request_id, 3u);
  EXPECT_EQ(server.snapshot_stats().busy_rejected, 1u);

  // Draining the queue frees the slots and the rejected request can be
  // resubmitted successfully.
  server.start();
  serve::write_frame(*conn.client, serve::Submit{3, "gnn", kSpec, 3});
  std::map<std::uint64_t, serve::WireVerdict> got;
  while (got.size() < 3) {
    const auto v = std::get<serve::WireVerdict>(conn.read());
    got.emplace(v.request_id, v);
  }
  conn.close();
  server.stop();
}

TEST(ServerTest, BadRequestsGetErrorsAndConnectionSurvives) {
  serve::Server server(server_options());
  server.start();
  Conn conn(server);

  serve::write_frame(*conn.client, serve::Submit{1, "nonesuch", kSpec, 0});
  auto err = std::get<serve::Error>(conn.read());
  EXPECT_EQ(err.request_id, 1u);
  EXPECT_NE(err.message.find("unknown detector"), std::string::npos);

  serve::write_frame(*conn.client, serve::Submit{2, "gnn", "bogus:1", 0});
  err = std::get<serve::Error>(conn.read());
  EXPECT_EQ(err.request_id, 2u);
  EXPECT_NE(err.message.find("unknown dataset"), std::string::npos);

  serve::write_frame(*conn.client, serve::Submit{3, "gnn", "mbi:banana", 0});
  err = std::get<serve::Error>(conn.read());
  EXPECT_NE(err.message.find("not a number"), std::string::npos);

  serve::write_frame(*conn.client, serve::Submit{4, "gnn", "mbi:500", 0});
  err = std::get<serve::Error>(conn.read());
  EXPECT_NE(err.message.find("limit"), std::string::npos);

  serve::write_frame(*conn.client, serve::Submit{5, "gnn", kSpec, 100000});
  err = std::get<serve::Error>(conn.read());
  EXPECT_NE(err.message.find("out of range"), std::string::npos);

  // A server-bound frame type from a client is an error, but framing is
  // intact so the connection keeps working...
  serve::write_frame(*conn.client, serve::Bye{});
  err = std::get<serve::Error>(conn.read());
  EXPECT_EQ(err.request_id, 0u);
  EXPECT_NE(err.message.find("BYE"), std::string::npos);

  // ...and a well-formed request on the same connection still serves.
  serve::write_frame(*conn.client, serve::Submit{6, "ir2vec", kSpec, 0});
  const auto v = std::get<serve::WireVerdict>(conn.read());
  EXPECT_EQ(v.request_id, 6u);
  conn.close();

  const auto stats = server.snapshot_stats();
  EXPECT_EQ(stats.request_errors, 5u);
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.served, 1u);
  server.stop();
}

TEST(ServerTest, MalformedBytesGetErrorFrameAndDaemonSurvives) {
  serve::Server server(server_options());
  server.start();
  {
    Conn conn(server);
    // A plausible length prefix followed by garbage: framing is lost.
    const std::string junk = "XXXXXXXXXXXX";
    unsigned char prefix[4] = {static_cast<unsigned char>(junk.size()), 0, 0,
                               0};
    conn.client->write_all(prefix, 4);
    conn.client->write_all(junk.data(), junk.size());
    const auto err = std::get<serve::Error>(conn.read());
    EXPECT_EQ(err.request_id, 0u);
    // The server dropped the connection after replying.
    EXPECT_EQ(serve::read_frame(*conn.client, "server"), std::nullopt);
    conn.close();
  }
  {
    Conn conn(server);
    // An implausible length prefix is rejected before allocation.
    unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
    conn.client->write_all(prefix, 4);
    const auto err = std::get<serve::Error>(conn.read());
    EXPECT_EQ(err.request_id, 0u);
    conn.close();
  }
  EXPECT_EQ(server.snapshot_stats().protocol_errors, 2u);

  // The damage was contained to those connections: a fresh client is
  // served normally.
  Conn conn(server);
  serve::write_frame(*conn.client, serve::Submit{1, "ir2vec", kSpec, 2});
  const auto v = std::get<serve::WireVerdict>(conn.read());
  EXPECT_EQ(v.request_id, 1u);
  conn.close();
  server.stop();
}

TEST(ServerTest, ShutdownDrainsAdmittedWorkThenByes) {
  serve::Server server(server_options());
  server.start();
  Conn conn(server);
  // Pipeline submits and the SHUTDOWN behind them on one connection:
  // the daemon must answer every admitted request before the BYE.
  for (std::uint64_t i = 1; i <= 3; ++i) {
    serve::write_frame(*conn.client, serve::Submit{i, "gnn", kSpec, i});
  }
  serve::write_frame(*conn.client, serve::Shutdown{});

  std::map<std::uint64_t, serve::WireVerdict> got;
  bool bye = false;
  while (!bye) {
    const auto frame = conn.read();
    if (std::holds_alternative<serve::Bye>(frame)) {
      bye = true;
    } else {
      const auto v = std::get<serve::WireVerdict>(frame);
      got.emplace(v.request_id, v);
    }
  }
  EXPECT_EQ(got.size(), 3u);  // all verdicts arrived BEFORE the BYE
  conn.close();
  EXPECT_TRUE(server.stopped());
  // stop() after a wire shutdown is a no-op, not a deadlock.
  server.stop();
}

TEST(ServerTest, StatsOverTheWire) {
  serve::Server server(server_options());
  server.start();
  Conn conn(server);
  serve::write_frame(*conn.client, serve::Submit{1, "gnn", kSpec, 0});
  (void)std::get<serve::WireVerdict>(conn.read());
  serve::write_frame(*conn.client, serve::StatsReq{});
  const auto stats = std::get<serve::Stats>(conn.read());
  EXPECT_EQ(stats.received, 1u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.datasets_materialized, 1u);
  EXPECT_GE(stats.batches, 1u);
  conn.close();
  server.stop();
}

TEST(ServerTest, RejectsCorruptBundleAtStartup) {
  TempDir dir("corrupt_bundle");
  const std::string path = dir.file("bad.mpib");
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a bundle at all";
  }
  serve::ServerOptions opts;
  opts.model_paths = {path};
  EXPECT_THROW(serve::Server{opts}, io::FormatError);
}

TEST(ServerTest, RejectsDuplicateBundleKeysAtStartup) {
  serve::ServerOptions opts;
  opts.model_paths = {bundles().gnn, bundles().gnn};
  EXPECT_THROW(serve::Server{opts}, ContractViolation);
}

// ---- robustness: versioned conversations ------------------------------------

TEST(ServerTest, V1ClientIsAnsweredInV1Bytes) {
  serve::Server server(server_options());
  server.start();
  Conn conn(server);

  // Every frame this "old" client sends is v1; every reply must come
  // back v1 too (an old binary rejects versions above its own).
  serve::write_frame(*conn.client, serve::Hello{"v1-client"}, 1);
  std::uint32_t version = 0;
  auto f = serve::read_frame(*conn.client, "server", {}, &version);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(version, 1u);
  EXPECT_TRUE(std::holds_alternative<serve::Caps>(*f));

  serve::write_frame(*conn.client, serve::Submit{1, "gnn", kSpec, 0}, 1);
  f = serve::read_frame(*conn.client, "server", {}, &version);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(version, 1u);
  EXPECT_TRUE(std::holds_alternative<serve::WireVerdict>(*f));

  serve::write_frame(*conn.client, serve::StatsReq{}, 1);
  f = serve::read_frame(*conn.client, "server", {}, &version);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(version, 1u);
  const auto& stats = std::get<serve::Stats>(*f);
  EXPECT_EQ(stats.served, 1u);
  // The v1 encoding cannot carry the robustness counters; they decode
  // as their zero defaults.
  EXPECT_EQ(stats.deadline_sheds, 0u);
  conn.close();
  server.stop();
}

// ---- robustness: deadlines, reaping, slot reclamation -----------------------

TEST(ServerTest, ExpiredDeadlineIsShedBeforeRunning) {
  serve::Server server(server_options());  // worker NOT started yet
  Conn conn(server);
  serve::Submit doomed{1, "gnn", kSpec, 0};
  doomed.deadline_ms = 1;
  serve::write_frame(*conn.client, doomed);
  serve::write_frame(*conn.client, serve::Submit{2, "gnn", kSpec, 1});
  while (server.snapshot_stats().received < 2) std::this_thread::yield();
  // Let request 1's deadline pass while both sit in the queue, then
  // start the worker: 1 must be shed, 2 must be served.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.start();

  bool expired = false, served = false;
  while (!expired || !served) {
    const auto frame = conn.read();
    if (const auto* x = std::get_if<serve::Expired>(&frame)) {
      EXPECT_EQ(x->request_id, 1u);
      expired = true;
    } else {
      const auto& v = std::get<serve::WireVerdict>(frame);
      EXPECT_EQ(v.request_id, 2u);
      served = true;
    }
  }
  conn.close();
  const auto stats = server.snapshot_stats();
  EXPECT_EQ(stats.deadline_sheds, 1u);
  EXPECT_EQ(stats.served, 1u);
  server.stop();
}

TEST(ServerTest, GenerousDeadlineIsServedNormally) {
  serve::Server server(server_options());
  server.start();
  Conn conn(server);
  serve::Submit req{1, "gnn", kSpec, 0};
  req.deadline_ms = 60000;
  serve::write_frame(*conn.client, req);
  const auto v = std::get<serve::WireVerdict>(conn.read());
  EXPECT_EQ(v.request_id, 1u);
  conn.close();
  EXPECT_EQ(server.snapshot_stats().deadline_sheds, 0u);
  server.stop();
}

TEST(ServerTest, IdleConnectionIsReaped) {
  auto opts = server_options();
  opts.idle_timeout_ms = 50;
  serve::Server server(opts);
  server.start();
  Conn conn(server);
  serve::write_frame(*conn.client, serve::Hello{"idler"});
  (void)std::get<serve::Caps>(conn.read());
  // Send nothing more: the reaper must close the connection, visible to
  // the client as EOF — a slot/thread cannot be parked forever.
  EXPECT_EQ(serve::read_frame(*conn.client, "server"), std::nullopt);
  conn.close();
  const auto stats = server.snapshot_stats();
  EXPECT_EQ(stats.reaped_connections, 1u);
  EXPECT_GE(stats.io_timeouts, 1u);
  server.stop();
}

TEST(ServerTest, SlowLorisTricklingAFrameIsReaped) {
  auto opts = server_options();
  opts.io_timeout_ms = 50;  // idle stays 0: only mid-frame reads race
  serve::Server server(opts);
  server.start();
  Conn conn(server);
  // Two bytes of a length prefix, then silence: the frame has started,
  // so the io deadline (not the infinite idle one) governs.
  const unsigned char half[2] = {0x20, 0x00};
  conn.client->write_all(half, 2);
  EXPECT_EQ(serve::read_frame(*conn.client, "server"), std::nullopt);
  conn.close();
  EXPECT_EQ(server.snapshot_stats().reaped_connections, 1u);
  server.stop();
}

TEST(ServerTest, HalfFrameCloseReclaimsSlotsAndServesAdmittedWork) {
  auto opts = server_options();
  opts.queue_capacity = 2;
  serve::Server server(opts);  // worker not started: admissions sit
  auto conn = std::make_unique<Conn>(server);
  serve::write_frame(*conn->client, serve::Submit{1, "gnn", kSpec, 0});
  while (server.snapshot_stats().received < 1) std::this_thread::yield();
  // Die mid-frame: a length prefix promising more than ever arrives.
  const unsigned char prefix[4] = {0x40, 0, 0, 0};
  conn->client->write_all(prefix, 4);
  conn->client->shutdown();

  // Starting the worker serves the admitted request into the dead
  // connection (dropped, but counted) and frees its slot.
  server.start();
  conn->close();  // serve_connection returns once in_flight drains

  // Both slots must be reusable by a fresh client.
  Conn fresh(server);
  serve::write_frame(*fresh.client, serve::Submit{1, "gnn", kSpec, 1});
  serve::write_frame(*fresh.client, serve::Submit{2, "gnn", kSpec, 2});
  std::map<std::uint64_t, serve::WireVerdict> got;
  while (got.size() < 2) {
    const auto frame = fresh.read();
    if (const auto* v = std::get_if<serve::WireVerdict>(&frame)) {
      got.emplace(v->request_id, *v);
    } else {
      ASSERT_TRUE(std::holds_alternative<serve::Busy>(frame))
          << "unexpected frame";
      const auto id = std::get<serve::Busy>(frame).request_id;
      serve::write_frame(*fresh.client,
                         serve::Submit{id, "gnn", kSpec, id});
    }
  }
  fresh.close();
  const auto stats = server.snapshot_stats();
  EXPECT_EQ(stats.served, 3u);  // incl. the one sent to the dead peer
  server.stop();
}

TEST(ServerTest, BusyResubmitsAreCountedAsRetries) {
  auto opts = server_options();
  opts.queue_capacity = 1;
  serve::Server server(opts);  // worker not started: the queue stays full
  Conn conn(server);
  serve::write_frame(*conn.client, serve::Submit{1, "gnn", kSpec, 0});
  serve::write_frame(*conn.client, serve::Submit{2, "gnn", kSpec, 1});
  const auto busy = std::get<serve::Busy>(conn.read());
  EXPECT_EQ(busy.request_id, 2u);

  server.start();  // free the slot
  (void)std::get<serve::WireVerdict>(conn.read());  // request 1 served
  serve::write_frame(*conn.client, serve::Submit{2, "gnn", kSpec, 1});
  const auto v = std::get<serve::WireVerdict>(conn.read());
  EXPECT_EQ(v.request_id, 2u);
  conn.close();
  EXPECT_EQ(server.snapshot_stats().retries, 1u);
  server.stop();
}

// ---- robustness: transport deadlines and backoff ----------------------------

TEST(TransportTest, WriteDeadlineFiresWhenPeerStopsDraining) {
  auto [a, b] = serve::local_pair_small_buffers();
  a->set_write_timeout(50);
  // Nobody reads b: the tiny socket buffers fill and the write deadline
  // must fire instead of parking the writer forever.
  const std::string block(1 << 20, 'x');
  EXPECT_THROW(a->write_all(block.data(), block.size()),
               serve::TransportTimeout);
}

TEST(TransportTest, ReadDeadlineFiresOnSilence) {
  auto [a, b] = serve::local_pair();
  b->set_read_timeout(50);
  char byte;
  EXPECT_THROW((void)b->read_some(&byte, 1), serve::TransportTimeout);
  // A deadline is inactivity, not total time: bytes that arrive in time
  // are delivered normally.
  a->write_all("z", 1);
  EXPECT_EQ(b->read_some(&byte, 1), 1u);
  EXPECT_EQ(byte, 'z');
}

TEST(BackoffTest, DeterministicBoundedAndGrowing) {
  serve::Backoff x(5, 500, 42);
  serve::Backoff y(5, 500, 42);
  std::vector<std::uint32_t> xs, ys;
  for (int i = 0; i < 12; ++i) {
    xs.push_back(x.next_delay_ms());
    ys.push_back(y.next_delay_ms());
  }
  EXPECT_EQ(xs, ys);  // same seed, same schedule — replayable campaigns
  for (const auto d : xs) {
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 500u);
  }
  // The cap is reached: late delays sit in the top (jittered) band.
  EXPECT_GE(xs.back(), 250u);
  // A different seed jitters differently.
  serve::Backoff z(5, 500, 43);
  std::vector<std::uint32_t> zs;
  for (int i = 0; i < 12; ++i) zs.push_back(z.next_delay_ms());
  EXPECT_NE(xs, zs);

  x.reset();
  EXPECT_EQ(x.attempts(), 0u);
  EXPECT_EQ(x.next_delay_ms(), xs[0]);  // reset restarts the schedule
}

TEST(BackoffTest, ZeroJitterIsPureExponential) {
  serve::Backoff b(10, 400, 7, /*jitter=*/0.0);
  EXPECT_EQ(b.next_delay_ms(), 10u);
  EXPECT_EQ(b.next_delay_ms(), 20u);
  EXPECT_EQ(b.next_delay_ms(), 40u);
  EXPECT_EQ(b.next_delay_ms(), 80u);
  EXPECT_EQ(b.next_delay_ms(), 160u);
  EXPECT_EQ(b.next_delay_ms(), 320u);
  EXPECT_EQ(b.next_delay_ms(), 400u);  // capped
  EXPECT_EQ(b.next_delay_ms(), 400u);
}

// ---- robustness: stale-socket startup ---------------------------------------

TEST(ListenerTest, ReplacesStaleSocketFileFromACrashedDaemon) {
  TempDir dir("stale_socket");
  const std::string path = dir.file("d.sock");
  // Simulate a crash: bind a socket (creating the file), then close the
  // fd WITHOUT unlinking — exactly what a SIGKILLed daemon leaves.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ::close(fd);
  }
  ASSERT_TRUE(fs::exists(path));
  // The probe finds nothing alive, unlinks, and binds: unattended
  // restart after a crash needs no manual rm.
  serve::Listener listener(path);
  EXPECT_TRUE(fs::exists(path));
}

TEST(ListenerTest, RefusesToDisplaceALiveDaemon) {
  TempDir dir("live_socket");
  const std::string path = dir.file("d.sock");
  serve::Listener alive(path);
  try {
    serve::Listener usurper(path);
    FAIL() << "expected TransportError";
  } catch (const serve::TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("alive"), std::string::npos);
  }
  // The live listener still works after the failed takeover.
  auto client = serve::connect_unix(path);
  auto served = alive.accept(1000);
  ASSERT_NE(served, nullptr);
}

}  // namespace
}  // namespace mpidetect
